"""Setup shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments with older setuptools/pip that
lack PEP 660 editable-wheel support (e.g. offline boxes without the
``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Diagrammatic representations of logical statements and relational "
        "queries: a query-visualization toolkit"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
