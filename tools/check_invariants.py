#!/usr/bin/env python3
"""Repo-specific invariant lint: machine-check the conventions the engine
relies on but no general-purpose linter knows about.

Rules (see tools/README.md for how to add one):

``lock-guarded-cache``
    Shared mutable caches — the serving layer's ``_LRUCache`` data, the
    optimizer's ``StatsCatalog`` profile cache, the kernel layer's
    module-level build-structure LRU, and the query service's materialized-
    view registry (``_views`` / ``_views_by_name``) — may only be mutated
    inside a ``with <their lock>:`` block (class ``__init__`` excepted: the
    object is not shared yet).

``shm-finalizer``
    Any module creating ``multiprocessing.shared_memory`` segments
    (``SharedMemory(create=True)``) must also register a
    ``weakref.finalize`` hook and call ``.unlink()`` somewhere, so segments
    cannot leak past the owning object's lifetime.

``kernel-fallback``
    Every numpy kernel entry point (module-level ``kernel_*`` function in
    ``repro/engine/kernels.py``) must contain a reachable ``return None``
    decline path — the executor treats ``None`` as "use the pure-Python
    fallback", which is what keeps the numpy-absent CI leg green.

``silent-except``
    Engine/serving code must not swallow exceptions silently: an ``except
    Exception:`` / bare ``except:`` handler whose body is only
    ``pass``/``...`` needs an inline ``#`` comment justifying the swallow
    (or should be narrowed / made to re-raise).

``server-nonblocking``
    HTTP handlers in ``src/repro/server`` never call a blocking
    ``ServiceAPI`` method (``query``, ``add_rows``, ``stats_snapshot``, …)
    directly inside an ``async def`` body — every such call must be routed
    through ``loop.run_in_executor`` (reference the method, don't call it)
    or through the write worker, or the event loop stalls every connection
    behind one query.  Synchronous closures defined inside a coroutine are
    exempt: they are the executor-offload idiom.

Usage: ``python tools/check_invariants.py [--root REPO_ROOT]``.
Exits 0 when clean, 1 with one ``path:line: [rule] message`` per violation.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Rule: lock-guarded-cache
# ---------------------------------------------------------------------------

#: Method names that mutate a dict / OrderedDict / list / set in place.
_MUTATING_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "move_to_end",
    "pop", "popitem", "remove", "setdefault", "update", "__setitem__",
})

#: (relative path, scope, protected attribute/global names, lock expression).
#: Scope "class:Name" protects ``self.<attr>`` inside that class (lock
#: ``self.<lock>``); scope "module" protects module globals (lock a global).
CACHE_RULES: tuple[tuple[str, str, frozenset, str], ...] = (
    ("src/repro/core/pipeline.py", "class:_LRUCache",
     frozenset({"_data"}), "_lock"),
    ("src/repro/engine/stats.py", "class:StatsCatalog",
     frozenset({"_cache"}), "_lock"),
    ("src/repro/engine/kernels.py", "module",
     frozenset({"_CACHE", "_CACHE_BYTES", "_CACHE_TOTALS"}), "_CACHE_LOCK"),
    # The view registry: registration, unregistration, and every refresh
    # mutate maintained state that lock-free readers validate by version,
    # so all registry mutations must hold the service write lock.
    ("src/repro/core/service.py", "class:QueryService",
     frozenset({"_views", "_views_by_name"}), "_write_lock"),
)


def _is_self_attr(node: ast.AST, names: frozenset) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self" and node.attr in names)


def _is_lock_expr(node: ast.AST, scope: str, lock: str) -> bool:
    if scope == "module":
        return isinstance(node, ast.Name) and node.id == lock
    return _is_self_attr(node, frozenset({lock}))


class _LockChecker(ast.NodeVisitor):
    """Flags mutations of protected names outside their lock's ``with``."""

    def __init__(self, path: str, scope: str, names: frozenset,
                 lock: str) -> None:
        self.path = path
        self.scope = scope
        self.names = names
        self.lock = lock
        self.locked = 0
        self.function_depth = 0
        self.violations: list[Violation] = []

    def _protected(self, node: ast.AST) -> "str | None":
        """The protected name ``node`` refers to, if any."""
        if self.scope == "module":
            if isinstance(node, ast.Name) and node.id in self.names:
                return node.id
        elif _is_self_attr(node, self.names):
            return node.attr  # type: ignore[union-attr]
        return None

    def _flag(self, node: ast.AST, name: str, what: str) -> None:
        lock = self.lock if self.scope == "module" else f"self.{self.lock}"
        self.violations.append(Violation(
            self.path, getattr(node, "lineno", 0), "lock-guarded-cache",
            f"{what} of shared cache {name!r} outside `with {lock}:`"))

    def _check_target(self, node: ast.AST, target: ast.AST,
                     what: str) -> None:
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        name = self._protected(base)
        if name is not None and not self.locked:
            # Module-level initialization (the original binding) is allowed;
            # rebinding or item mutation inside a function is not.
            if self.scope == "module" and self.function_depth == 0 \
                    and isinstance(target, ast.Name):
                return
            self._flag(node, name, what)

    def visit_With(self, node: ast.With) -> None:
        held = any(_is_lock_expr(item.context_expr, self.scope, self.lock)
                   for item in node.items)
        if held:
            self.locked += 1
        self.generic_visit(node)
        if held:
            self.locked -= 1

    def _visit_function(self, node: ast.AST) -> None:
        if self.scope.startswith("class:") \
                and getattr(node, "name", "") == "__init__":
            return  # construction: the object is not shared yet
        self.function_depth += 1
        self.generic_visit(node)
        self.function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(node, target, "assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node, node.target, "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(node, target, "deletion")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _MUTATING_METHODS:
            name = self._protected(func.value)
            if name is not None and not self.locked:
                self._flag(node, name, f".{func.attr}() call")
        self.generic_visit(node)


def check_lock_guarded_caches(root: str) -> list[Violation]:
    violations: list[Violation] = []
    for rel_path, scope, names, lock in CACHE_RULES:
        path = os.path.join(root, rel_path)
        tree = _parse(path)
        if tree is None:
            continue  # a deleted module fails imports long before this lint
        if scope == "module":
            scopes: Iterable[ast.AST] = (tree,)
        else:
            wanted = scope.split(":", 1)[1]
            scopes = tuple(n for n in ast.walk(tree)
                           if isinstance(n, ast.ClassDef) and n.name == wanted)
            if not scopes:
                violations.append(Violation(
                    rel_path, 0, "lock-guarded-cache",
                    f"configured class {wanted!r} not found"))
        for scope_node in scopes:
            checker = _LockChecker(rel_path, scope, names, lock)
            checker.generic_visit(scope_node)
            violations.extend(checker.violations)
    return violations


# ---------------------------------------------------------------------------
# Rule: shm-finalizer
# ---------------------------------------------------------------------------

def _creates_shared_memory(tree: ast.AST) -> "int | None":
    """Line of the first ``SharedMemory(..., create=True)`` call, if any."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if callee != "SharedMemory":
            continue
        for kw in node.keywords:
            if kw.arg == "create" and not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is False):
                return node.lineno
    return None


def check_shm_finalizers(root: str) -> list[Violation]:
    violations: list[Violation] = []
    for _path, rel_path, tree in _walk_sources(root, ("src/repro",)):
        line = _creates_shared_memory(tree)
        if line is None:
            continue
        has_finalize = any(
            isinstance(n, ast.Attribute) and n.attr == "finalize"
            for n in ast.walk(tree))
        has_unlink = any(
            isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
            and n.func.attr == "unlink" for n in ast.walk(tree))
        if not has_finalize:
            violations.append(Violation(
                rel_path, line, "shm-finalizer",
                "SharedMemory(create=True) without a weakref.finalize "
                "registration in the module (segments would outlive their "
                "owner on abnormal exit)"))
        if not has_unlink:
            violations.append(Violation(
                rel_path, line, "shm-finalizer",
                "SharedMemory(create=True) without any .unlink() call in "
                "the module (no release path for the OS segment)"))
    return violations


# ---------------------------------------------------------------------------
# Rule: kernel-fallback
# ---------------------------------------------------------------------------

_KERNELS_PATH = "src/repro/engine/kernels.py"


def _has_return_none(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Return):
            value = node.value
            if value is None or (isinstance(value, ast.Constant)
                                 and value.value is None):
                return True
    return False


def check_kernel_fallbacks(root: str) -> list[Violation]:
    tree = _parse(os.path.join(root, _KERNELS_PATH))
    if tree is None:
        return []  # a deleted module fails imports long before this lint
    violations = []
    for node in tree.body:  # module-level entry points only
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name.startswith("kernel_") \
                and not _has_return_none(node):
            violations.append(Violation(
                _KERNELS_PATH, node.lineno, "kernel-fallback",
                f"kernel entry point {node.name}() has no `return None` "
                f"decline path (pure-Python fallback unreachable)"))
    return violations


# ---------------------------------------------------------------------------
# Rule: silent-except
# ---------------------------------------------------------------------------

#: Packages where exception swallowing must be justified.
_SERVING_PACKAGES = ("src/repro/engine", "src/repro/core", "src/repro/data",
                     "src/repro/server")


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [e.id for e in handler.type.elts if isinstance(e, ast.Name)]
    elif isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    return any(name in ("Exception", "BaseException") for name in names)


def _is_silent_body(body: list) -> bool:
    return all(isinstance(stmt, ast.Pass)
               or (isinstance(stmt, ast.Expr)
                   and isinstance(stmt.value, ast.Constant)
                   and stmt.value.value is ...)
               for stmt in body)


def check_silent_excepts(root: str) -> list[Violation]:
    violations: list[Violation] = []
    for path, rel_path, tree in _walk_sources(root, _SERVING_PACKAGES):
        try:
            with open(path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            lines = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node) or not _is_silent_body(node.body):
                continue
            # A swallow is acceptable only when some line of the handler
            # carries an inline comment saying why.
            start = node.lineno - 1
            end = max(stmt.end_lineno or stmt.lineno for stmt in node.body)
            commented = any("#" in line for line in lines[start:end])
            if not commented:
                violations.append(Violation(
                    rel_path, node.lineno, "silent-except",
                    "broad except handler swallows exceptions with a bare "
                    "pass and no justifying comment"))
    return violations


# ---------------------------------------------------------------------------
# Rule: server-nonblocking
# ---------------------------------------------------------------------------

_SERVER_PACKAGE = ("src/repro/server",)

#: ServiceAPI methods that block (take service locks, run plans, touch
#: storage).  Calling one on the event loop stalls every connection.
_BLOCKING_SERVICE_METHODS = frozenset({
    "query", "answer", "prepare", "add_row", "add_rows", "writing",
    "register_view", "unregister_view", "view", "views", "stats_snapshot",
    "cache_info", "execution_counts", "table_stats", "close",
})


def _is_service_rooted(node: ast.AST) -> bool:
    """``service.<m>`` / ``self.service.<m>`` / ``<x>.service.<m>`` receivers."""
    return (isinstance(node, ast.Name) and node.id == "service") \
        or (isinstance(node, ast.Attribute) and node.attr == "service")


class _AsyncBlockingCallChecker(ast.NodeVisitor):
    """Flags direct blocking service calls in one async function's body.

    Nested ``def``/``lambda`` scopes are skipped: a synchronous closure
    defined inside a coroutine is the executor-offload idiom (its body runs
    via ``run_in_executor``, not on the loop).  Nested ``async def`` scopes
    are checked on their own by the outer walk.
    """

    def __init__(self, rel_path: str) -> None:
        self.rel_path = rel_path
        self.violations: list[Violation] = []

    def _skip(self, node: ast.AST) -> None:
        del node  # a nested scope: not this coroutine's loop-side body

    visit_FunctionDef = _skip
    visit_AsyncFunctionDef = _skip
    visit_Lambda = _skip

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _BLOCKING_SERVICE_METHODS \
                and _is_service_rooted(func.value):
            self.violations.append(Violation(
                self.rel_path, node.lineno, "server-nonblocking",
                f"blocking service call .{func.attr}() on the event loop; "
                "route it through run_in_executor or the write worker"))
        self.generic_visit(node)


def check_server_nonblocking(root: str) -> list[Violation]:
    violations: list[Violation] = []
    for _path, rel_path, tree in _walk_sources(root, _SERVER_PACKAGE):
        for node in ast.walk(tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            checker = _AsyncBlockingCallChecker(rel_path)
            for stmt in node.body:
                checker.visit(stmt)
            violations.extend(checker.violations)
    return violations


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

ALL_RULES = (
    check_lock_guarded_caches,
    check_shm_finalizers,
    check_kernel_fallbacks,
    check_silent_excepts,
    check_server_nonblocking,
)


def _parse(path: str) -> "ast.AST | None":
    try:
        with open(path, encoding="utf-8") as fh:
            return ast.parse(fh.read(), filename=path)
    except (OSError, SyntaxError):
        return None


def _walk_sources(root: str, packages: tuple
                  ) -> Iterator[tuple[str, str, ast.AST]]:
    for package in packages:
        base = os.path.join(root, package)
        for dirpath, _dirnames, filenames in os.walk(base):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                tree = _parse(path)
                if tree is not None:
                    yield path, os.path.relpath(path, root), tree


def run_checks(root: str) -> list[Violation]:
    """All violations across every rule, sorted by location."""
    violations: list[Violation] = []
    for rule in ALL_RULES:
        violations.extend(rule(root))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: this script's parent's parent)")
    args = parser.parse_args(argv)
    violations = run_checks(args.root)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    print("invariant lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
