"""Shared machinery for TRC-based diagram builders (QueryVis, Relational Diagrams).

Both formalisms draw the same ingredients — one table box per tuple variable,
selection predicates inside the box, join predicates as lines between
attribute rows, and nested boxes for quantification/negation scopes — and
differ in how scopes and reading order are drawn.  This module extracts the
shared "query graph" structure from a (normalised) TRC query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.patterns import normalize_trc
from repro.data.types import format_value
from repro.trc.ast import (
    AttrRef,
    ConstTerm,
    RelAtom,
    TRCAnd,
    TRCCompare,
    TRCExists,
    TRCFormula,
    TRCNot,
    TRCOr,
    TRCQuery,
    TRCTrue,
)


class CannotRepresent(Exception):
    """Raised when a formalism has no visual element for a query construct."""


@dataclass
class ScopeInfo:
    """One quantification/negation scope of the normalised query."""

    id: int
    parent: int | None
    negated: bool
    depth: int


@dataclass
class TableBox:
    """One tuple variable with everything drawn inside its box."""

    var: str
    relation: str
    scope: int
    local_predicates: list[str] = field(default_factory=list)
    attributes: list[str] = field(default_factory=list)
    output_attributes: list[str] = field(default_factory=list)

    def ensure_attribute(self, name: str) -> None:
        if name not in self.attributes:
            self.attributes.append(name)


@dataclass
class JoinEdge:
    """A predicate connecting attributes of two different tuple variables."""

    left_var: str
    left_attr: str
    op: str
    right_var: str
    right_attr: str


@dataclass
class QueryGraph:
    """The shared structure both TRC-based formalisms draw."""

    scopes: dict[int, ScopeInfo] = field(default_factory=dict)
    tables: dict[str, TableBox] = field(default_factory=dict)
    joins: list[JoinEdge] = field(default_factory=list)
    head: list[tuple[str, str]] = field(default_factory=list)

    def tables_in_scope(self, scope_id: int) -> list[TableBox]:
        return [t for t in self.tables.values() if t.scope == scope_id]

    def child_scopes(self, scope_id: int | None) -> list[ScopeInfo]:
        return [s for s in self.scopes.values() if s.parent == scope_id]


def _term_text(term) -> str:
    if isinstance(term, ConstTerm):
        return format_value(term.value)
    if isinstance(term, AttrRef):
        return f"{term.var.name}.{term.attr}"
    return str(term)


def build_query_graph(query: TRCQuery, *, allow_local_disjunction: bool = True) -> QueryGraph:
    """Extract the query graph of a TRC query (after normalisation).

    Disjunctions that only constrain a single tuple variable are folded into
    that variable's local predicates (``color = 'red' OR color = 'green'``);
    any other disjunction raises :class:`CannotRepresent`, which is the
    behaviour the tutorial describes for QueryVis-style diagrams.
    """
    graph = QueryGraph()
    body = normalize_trc(query.body)
    graph.scopes[0] = ScopeInfo(0, None, False, 0)
    counter = [0]

    def table_for(var: str, relation: str | None, scope: int) -> TableBox:
        box = graph.tables.get(var)
        if box is None:
            box = TableBox(var, relation or "?", scope)
            graph.tables[var] = box
        elif relation is not None and box.relation == "?":
            box.relation = relation
        return box

    def handle_compare(node: TRCCompare, scope: int) -> None:
        left, right = node.left, node.right
        if isinstance(left, AttrRef) and isinstance(right, AttrRef):
            if left.var.name == right.var.name:
                box = table_for(left.var.name, None, scope)
                box.ensure_attribute(left.attr)
                box.local_predicates.append(f"{left.attr} {node.op} {right.attr}")
                return
            graph.joins.append(JoinEdge(left.var.name, left.attr, node.op,
                                        right.var.name, right.attr))
            table_for(left.var.name, None, scope).ensure_attribute(left.attr)
            table_for(right.var.name, None, scope).ensure_attribute(right.attr)
            return
        if isinstance(left, AttrRef):
            box = table_for(left.var.name, None, scope)
            box.ensure_attribute(left.attr)
            box.local_predicates.append(f"{left.attr} {node.op} {_term_text(right)}")
            return
        if isinstance(right, AttrRef):
            flip = {"=": "=", "<>": "<>", "<": ">", ">": "<", "<=": ">=", ">=": "<="}
            box = table_for(right.var.name, None, scope)
            box.ensure_attribute(right.attr)
            box.local_predicates.append(
                f"{right.attr} {flip[node.op]} {_term_text(left)}"
            )
            return
        raise CannotRepresent("comparisons between two constants have no table box to live in")

    def handle_or(node: TRCOr, scope: int) -> None:
        # A disjunction is drawable inside one box iff all its disjuncts are
        # local predicates of the same single tuple variable.
        variables: set[str] = set()
        texts: list[str] = []
        for operand in node.operands:
            if isinstance(operand, TRCCompare):
                refs = [t for t in (operand.left, operand.right) if isinstance(t, AttrRef)]
                if len(refs) != 1:
                    raise CannotRepresent("general disjunction")
                variables.add(refs[0].var.name)
                const = operand.right if isinstance(operand.left, AttrRef) else operand.left
                texts.append(f"{refs[0].attr} {operand.op} {_term_text(const)}")
            else:
                raise CannotRepresent("general disjunction")
        if len(variables) != 1 or not allow_local_disjunction:
            raise CannotRepresent("disjunction across tuple variables")
        var = variables.pop()
        box = table_for(var, None, scope)
        box.local_predicates.append(" OR ".join(texts))

    def visit(node: TRCFormula, scope: int) -> None:
        if isinstance(node, TRCTrue):
            return
        if isinstance(node, RelAtom):
            table_for(node.var.name, node.relation, scope)
            return
        if isinstance(node, TRCCompare):
            handle_compare(node, scope)
            return
        if isinstance(node, TRCAnd):
            for operand in node.operands:
                visit(operand, scope)
            return
        if isinstance(node, TRCOr):
            handle_or(node, scope)
            return
        if isinstance(node, TRCNot):
            counter[0] += 1
            new_id = counter[0]
            graph.scopes[new_id] = ScopeInfo(new_id, scope, True,
                                             graph.scopes[scope].depth + 1)
            inner = node.operand
            if isinstance(inner, TRCExists):
                visit(inner.body, new_id)
            else:
                visit(inner, new_id)
            return
        if isinstance(node, TRCExists):
            visit(node.body, scope)
            return
        raise CannotRepresent(f"TRC construct {type(node).__name__}")

    visit(body, 0)

    for item in query.head:
        if isinstance(item.term, AttrRef):
            var, attr = item.term.var.name, item.term.attr
            graph.head.append((var, attr))
            if var in graph.tables:
                box = graph.tables[var]
                box.ensure_attribute(attr)
                if attr not in box.output_attributes:
                    box.output_attributes.append(attr)
    return graph


def to_trc(query, schema) -> TRCQuery:
    """Accept SQL text, a SQL AST, or a TRC query and return a TRC query."""
    from repro.sql.ast import SelectQuery, SetOpQuery
    from repro.translate.sql_to_trc import sql_to_trc

    if isinstance(query, TRCQuery):
        return query
    if isinstance(query, str) and query.strip().startswith("{"):
        from repro.trc.parser import parse_trc

        return parse_trc(query)
    if isinstance(query, (str, SelectQuery, SetOpQuery)):
        return sql_to_trc(query, schema)
    raise CannotRepresent(f"cannot obtain a TRC query from {type(query).__name__}")
