"""Venn diagrams and Venn–Peirce diagrams.

Venn (1880) fixed Euler's main weakness — that one drawing cannot always show
*partial* knowledge — by always drawing every intersection of the terms and
then annotating regions: *shading* a region asserts it is empty.  Peirce
extended the notation ("Venn–Peirce diagrams") with ``x`` marks for occupied
regions and, crucially, *x-sequences* (marks connected by lines) to express
disjunctive information: at least one of the linked regions is occupied.
That extension is the earliest answer to the disjunction problem the tutorial
keeps returning to.

The :class:`VennDiagram` here is a faithful symbolic model: a set of terms,
shaded regions, and occupancy constraints that are either single regions
(x marks) or sets of regions (x-sequences).  It supports the usual reasoning
question — does a diagram entail a proposition? — and renders to the generic
:class:`~repro.core.diagram.Diagram` model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.diagram import Diagram, DiagramEdge, DiagramGroup, DiagramNode
from repro.diagrams.syllogism import (
    CategoricalProposition,
    Region,
    proposition_constraints,
    regions_for,
)


class VennError(Exception):
    """Raised for inconsistent or malformed Venn diagrams."""


@dataclass
class VennDiagram:
    """A symbolic Venn / Venn–Peirce diagram."""

    terms: tuple[str, ...]
    shaded: set[Region] = field(default_factory=set)
    #: Each entry is a set of regions, at least one of which is occupied.
    #: Singletons are plain x marks; larger sets are Peirce's x-sequences.
    x_sequences: list[frozenset] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.terms = tuple(dict.fromkeys(self.terms))

    # -- construction --------------------------------------------------------
    @classmethod
    def from_propositions(cls, propositions: list[CategoricalProposition],
                          *, peirce: bool = True) -> "VennDiagram":
        """Build the diagram asserting all the given propositions.

        With ``peirce=False`` (plain Venn), occupied-region constraints that
        span more than one region cannot be drawn and raise
        :class:`VennError` — which is exactly Venn's historical limitation.
        """
        terms: list[str] = []
        for proposition in propositions:
            for term in proposition.terms():
                if term not in terms:
                    terms.append(term)
        diagram = cls(tuple(terms))
        for proposition in propositions:
            diagram.assert_proposition(proposition, peirce=peirce)
        return diagram

    def assert_proposition(self, proposition: CategoricalProposition,
                           *, peirce: bool = True) -> None:
        empties, occupied = proposition_constraints(proposition, self.terms)
        for region in empties:
            self.shaded.add(region)
        if occupied:
            live = [r for r in occupied if r not in self.shaded]
            if not live:
                raise VennError(
                    f"proposition {proposition.text()!r} is inconsistent with the shading"
                )
            if len(live) > 1 and not peirce:
                raise VennError(
                    "plain Venn diagrams cannot express disjunctive occupancy; "
                    "use a Venn–Peirce x-sequence"
                )
            self.x_sequences.append(frozenset(live))

    # -- reasoning ------------------------------------------------------------
    def regions(self) -> list[Region]:
        return regions_for(self.terms)

    def is_consistent(self) -> bool:
        return all(any(r not in self.shaded for r in sequence)
                   for sequence in self.x_sequences)

    def entails(self, proposition: CategoricalProposition) -> bool:
        """Does the information in the diagram entail the proposition?"""
        empties, occupied = proposition_constraints(proposition, self.terms)
        for bits in itertools.product([False, True], repeat=len(self.regions())):
            occupancy = dict(zip(self.regions(), bits))
            if any(occupancy[r] for r in self.shaded):
                continue
            if any(not any(occupancy[r] for r in seq) for seq in self.x_sequences):
                continue
            # This occupancy is consistent with the diagram; check the proposition.
            if any(occupancy[r] for r in empties):
                return False
            if occupied and not any(occupancy[r] for r in occupied):
                return False
        return True

    def merge(self, other: "VennDiagram") -> "VennDiagram":
        """Combine the information of two diagrams over the union of their terms."""
        terms = tuple(dict.fromkeys(self.terms + other.terms))
        merged = VennDiagram(terms)
        for source in (self, other):
            for region in source.shaded:
                # A shaded region over fewer terms means: every refinement is empty.
                for refinement in regions_for(terms):
                    if refinement & set(source.terms) == set(region):
                        merged.shaded.add(refinement)
            for sequence in source.x_sequences:
                expanded = frozenset(
                    refinement for refinement in regions_for(terms)
                    if any(refinement & set(source.terms) == set(r) for r in sequence)
                )
                merged.x_sequences.append(expanded)
        return merged

    # -- rendering ------------------------------------------------------------
    def region_label(self, region: Region) -> str:
        inside = [t for t in self.terms if t in region]
        outside = [f"¬{t}" for t in self.terms if t not in region]
        return " ∩ ".join(inside + outside) if (inside or outside) else "universe"

    def to_diagram(self, *, name: str = "Venn diagram") -> Diagram:
        diagram = Diagram(name, formalism="venn")
        frame = diagram.add_group(DiagramGroup("frame", " ∪ ".join(self.terms), None, "solid"))
        node_ids: dict[Region, str] = {}
        for region in self.regions():
            if not region:
                continue  # the outer region is the background
            shaded = region in self.shaded
            style_suffix = " (shaded)" if shaded else ""
            node = diagram.add_node(DiagramNode(
                f"region_{'_'.join(sorted(region)) or 'outside'}",
                "region",
                self.region_label(region) + style_suffix,
                (),
                frame.id,
                "ellipse",
            ))
            node_ids[region] = node.id
        for index, sequence in enumerate(self.x_sequences):
            members = [r for r in sequence if r in node_ids]
            if len(members) == 1:
                mark = diagram.add_node(DiagramNode(
                    f"x_{index}", "mark", "x", (), frame.id, "point"))
                diagram.add_edge(DiagramEdge(mark.id, node_ids[members[0]],
                                             kind="membership"))
            else:
                previous = None
                for j, region in enumerate(members):
                    mark = diagram.add_node(DiagramNode(
                        f"x_{index}_{j}", "mark", "x", (), frame.id, "point"))
                    diagram.add_edge(DiagramEdge(mark.id, node_ids[region],
                                                 kind="membership"))
                    if previous is not None:
                        diagram.add_edge(DiagramEdge(previous, mark.id, style="bold",
                                                     kind="membership",
                                                     label="or"))
                    previous = mark.id
        return diagram


def venn_syllogism_test(major: CategoricalProposition, minor: CategoricalProposition,
                        conclusion: CategoricalProposition) -> bool:
    """Decide a syllogism the way one reads it off a Venn diagram."""
    diagram = VennDiagram.from_propositions([major, minor])
    return diagram.entails(conclusion)
