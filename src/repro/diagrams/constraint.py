"""Constraint diagrams (Kent 1997; Gil, Howse & Kent 1999).

Constraint diagrams extend Euler/Venn notation with *spiders* (existential
elements: trees of dots placed in regions), *shading* (emptiness apart from
spiders), and *arrows* (universally quantified navigation along binary
relations).  They were proposed "a step beyond UML" for expressing invariants
over object models; the tutorial covers them as the bridge between the
monadic Euler/Venn world and quantification over relations.

The implementation models the monadic core faithfully (sets, spiders,
shading — with the same region semantics as the Venn module) and renders
arrows as annotated edges; reasoning is again by region enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.diagram import Diagram, DiagramEdge, DiagramGroup, DiagramNode
from repro.diagrams.syllogism import Region, regions_of_intersection


class ConstraintError(Exception):
    """Raised for malformed constraint diagrams."""


@dataclass(frozen=True)
class Spider:
    """An existential element: it lives in exactly one of its habitat regions."""

    name: str
    habitat: tuple[Region, ...]


@dataclass(frozen=True)
class Arrow:
    """A universally quantified navigation: every ``source`` element maps into ``target``."""

    label: str
    source: str
    target: str


@dataclass
class ConstraintDiagram:
    """A constraint diagram: contours, shading, spiders, arrows."""

    contours: tuple[str, ...]
    shaded: set[Region] = field(default_factory=set)
    spiders: list[Spider] = field(default_factory=list)
    arrows: list[Arrow] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.contours = tuple(dict.fromkeys(self.contours))

    # -- construction helpers ------------------------------------------------
    def shade(self, inside: list[str], outside: list[str] | None = None) -> None:
        for region in regions_of_intersection(self.contours, inside, outside or []):
            self.shaded.add(region)

    def add_spider(self, name: str, inside: list[str],
                   outside: list[str] | None = None) -> Spider:
        habitat = tuple(regions_of_intersection(self.contours, inside, outside or []))
        if not habitat:
            raise ConstraintError(f"spider {name!r} has an empty habitat")
        spider = Spider(name, habitat)
        self.spiders.append(spider)
        return spider

    def add_arrow(self, label: str, source: str, target: str) -> Arrow:
        arrow = Arrow(label, source, target)
        self.arrows.append(arrow)
        return arrow

    # -- semantics -------------------------------------------------------------
    def is_satisfiable(self) -> bool:
        """Some placement of spiders avoids all shaded regions."""
        return all(any(region not in self.shaded for region in spider.habitat)
                   for spider in self.spiders)

    def asserts_empty(self, inside: list[str], outside: list[str] | None = None) -> bool:
        """Does the shading entail that the described region is empty of non-spider elements?"""
        target = regions_of_intersection(self.contours, inside, outside or [])
        return all(region in self.shaded for region in target)

    # -- rendering --------------------------------------------------------------
    def to_diagram(self, *, name: str = "constraint diagram") -> Diagram:
        diagram = Diagram(name, formalism="constraint")
        frame = diagram.add_group(DiagramGroup("frame", "", None, "solid"))
        contour_groups: dict[str, str] = {}
        for contour in self.contours:
            group = diagram.add_group(DiagramGroup(f"contour_{contour}", contour,
                                                   frame.id, "solid"))
            contour_groups[contour] = group.id
            diagram.add_node(DiagramNode(f"anchor_{contour}", "region", "", (),
                                         group.id, "point"))
        for index, region in enumerate(sorted(self.shaded, key=sorted)):
            label = " ∩ ".join(sorted(region)) or "outside"
            diagram.add_node(DiagramNode(f"shade{index}", "shading", f"{label}: shaded",
                                         (), frame.id, "plaintext"))
        spider_nodes: dict[str, str] = {}
        for spider in self.spiders:
            habitat_text = " | ".join(" ∩ ".join(sorted(r)) or "outside"
                                      for r in spider.habitat)
            node = diagram.add_node(DiagramNode(
                f"spider_{spider.name}", "spider", f"• {spider.name} ∈ {habitat_text}",
                (), frame.id, "plaintext",
            ))
            spider_nodes[spider.name] = node.id
        for arrow in self.arrows:
            source = spider_nodes.get(arrow.source) or f"anchor_{arrow.source}"
            target = spider_nodes.get(arrow.target) or f"anchor_{arrow.target}"
            if source in diagram.nodes and target in diagram.nodes:
                diagram.add_edge(DiagramEdge(source, target, arrow.label,
                                             directed=True, kind="flow"))
        return diagram
