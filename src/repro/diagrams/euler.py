"""Euler circles.

Euler's letters to a German princess (1768) introduced the idea of drawing
terms as circles whose *spatial relationship* carries the logical content:
containment for "All A are B", disjointness for "No A are B", and overlap
(with the relevant part understood to be occupied) for the particular forms.
Euler diagrams therefore show only the situations that are possible — unlike
Venn diagrams, which draw all intersections and annotate them.

The builder derives, for each pair of terms, the strongest spatial relation
entailed by the given propositions (using the region semantics of
:mod:`repro.diagrams.syllogism`) and renders containment with nested groups
and disjointness/overlap with labelled edges.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramEdge, DiagramGroup, DiagramNode
from repro.diagrams.syllogism import (
    CategoricalProposition,
    entails,
)


def spatial_relation(propositions: list[CategoricalProposition], a: str, b: str) -> str:
    """The strongest Euler relation between terms ``a`` and ``b`` entailed by the premises.

    One of ``"inside"`` (a ⊆ b), ``"contains"`` (b ⊆ a), ``"disjoint"``,
    ``"overlap"`` (entailed to share an element), or ``"unknown"``.
    """
    if entails(propositions, CategoricalProposition("A", a, b)):
        return "inside"
    if entails(propositions, CategoricalProposition("A", b, a)):
        return "contains"
    if entails(propositions, CategoricalProposition("E", a, b)):
        return "disjoint"
    if entails(propositions, CategoricalProposition("I", a, b)):
        return "overlap"
    return "unknown"


def euler_diagram(propositions: list[CategoricalProposition],
                  *, name: str = "Euler diagram") -> Diagram:
    """Draw the terms of the propositions as Euler circles."""
    diagram = Diagram(name, formalism="euler")
    terms: list[str] = []
    for proposition in propositions:
        for term in proposition.terms():
            if term not in terms:
                terms.append(term)

    # Containment: compute a parent for each term (innermost container).
    containers: dict[str, str | None] = {term: None for term in terms}
    for term in terms:
        candidates = [other for other in terms if other != term
                      and spatial_relation(propositions, term, other) == "inside"]
        # The immediate parent is a container that is itself contained in all others.
        immediate = None
        for candidate in candidates:
            if all(candidate == other
                   or spatial_relation(propositions, candidate, other) == "inside"
                   for other in candidates):
                immediate = candidate
        containers[term] = immediate

    group_ids: dict[str, str] = {}

    def ensure_group(term: str) -> str:
        if term in group_ids:
            return group_ids[term]
        parent = containers[term]
        parent_id = ensure_group(parent) if parent else None
        group = diagram.add_group(DiagramGroup(f"circle_{term}", term, parent_id, "solid"))
        group_ids[term] = group.id
        return group.id

    for term in terms:
        ensure_group(term)
    # A representative (invisible) node inside each circle so layout gives it area,
    # and so relation edges have endpoints.
    node_ids: dict[str, str] = {}
    for term in terms:
        node = diagram.add_node(DiagramNode(f"dot_{term}", "region", term, (),
                                            group_ids[term], "point"))
        node_ids[term] = node.id

    seen_pairs: set[frozenset] = set()
    for i, a in enumerate(terms):
        for b in terms[i + 1:]:
            pair = frozenset((a, b))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            relation = spatial_relation(propositions, a, b)
            if relation in ("inside", "contains"):
                continue  # already shown through nesting
            if relation == "disjoint":
                diagram.add_edge(DiagramEdge(node_ids[a], node_ids[b], "disjoint",
                                             style="dashed", kind="membership"))
            elif relation == "overlap":
                diagram.add_edge(DiagramEdge(node_ids[a], node_ids[b], "some shared",
                                             kind="membership"))
    return diagram


def euler_syllogism_figure(major: CategoricalProposition, minor: CategoricalProposition,
                           conclusion: CategoricalProposition) -> Diagram:
    """The classic three-circle Euler figure for a syllogism, annotated with validity."""
    valid = entails([major, minor], conclusion)
    diagram = euler_diagram([major, minor],
                            name=f"{major.text()}; {minor.text()} ⊢ {conclusion.text()}")
    verdict = diagram.add_node(DiagramNode(
        "verdict", "annotation",
        f"conclusion {'follows' if valid else 'does NOT follow'}: {conclusion.text()}",
        (), None, "plaintext",
    ))
    del verdict
    return diagram
