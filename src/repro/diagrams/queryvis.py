"""QueryVis diagrams.

QueryVis (Danaparamita & Gatterbauer 2011; Leventidis et al. 2020) draws one
box per tuple variable with the attributes it uses, selection predicates
written inside the box, join predicates as lines between attribute rows, and
one *grouping box per nesting level* labelled with its quantifier.  Its
signature element — borrowed from the diagrammatic-reasoning community's
"default reading order" — is the arrow between nesting levels that tells the
reader in which order to traverse the existential quantifiers; without the
arrows the diagram would be ambiguous.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramEdge, DiagramGroup, DiagramNode
from repro.diagrams.common import CannotRepresent, QueryGraph, build_query_graph, to_trc


def queryvis_from_graph(graph: QueryGraph, *, name: str = "query") -> Diagram:
    """Build a QueryVis diagram from a query graph."""
    diagram = Diagram(name, formalism="queryvis")

    # One group per scope.  The root scope shows the output schema in its label.
    head_text = ", ".join(f"{var}.{attr}" for var, attr in graph.head)
    group_ids: dict[int, str] = {}
    for scope in sorted(graph.scopes.values(), key=lambda s: s.depth):
        if scope.id == 0:
            label = f"SELECT {head_text}" if head_text else "SELECT"
            style = "solid"
        else:
            label = "NOT EXISTS" if scope.negated else "EXISTS"
            style = "negation" if scope.negated else "dashed"
        parent = group_ids.get(scope.parent) if scope.parent is not None else None
        group = diagram.add_group(DiagramGroup(f"scope{scope.id}", label, parent, style))
        group_ids[scope.id] = group.id

    # One table node per tuple variable.
    node_ids: dict[str, str] = {}
    for box in graph.tables.values():
        rows = []
        for attr in box.attributes:
            marker = "→ " if attr in box.output_attributes else ""
            rows.append(f"{marker}{attr}")
        rows.extend(box.local_predicates)
        node = diagram.add_node(DiagramNode(
            f"t_{box.var}", "table", f"{box.relation} {box.var}", tuple(rows),
            group_ids[box.scope], "table",
        ))
        node_ids[box.var] = node.id

    # Join predicates: lines between attribute rows, labelled unless equality.
    for join in graph.joins:
        source_rows = diagram.nodes[node_ids[join.left_var]].rows
        target_rows = diagram.nodes[node_ids[join.right_var]].rows
        source_port = _row_for(source_rows, join.left_attr)
        target_port = _row_for(target_rows, join.right_attr)
        diagram.add_edge(DiagramEdge(
            node_ids[join.left_var], node_ids[join.right_var],
            label="" if join.op == "=" else join.op,
            source_port=source_port, target_port=target_port, kind="join",
        ))

    # Reading-order arrows: from one representative table of a scope to a
    # representative table of each child scope.
    for scope in graph.scopes.values():
        children = graph.child_scopes(scope.id)
        source_tables = graph.tables_in_scope(scope.id)
        if not source_tables:
            continue
        source = node_ids[source_tables[0].var]
        for child in children:
            child_tables = graph.tables_in_scope(child.id)
            if not child_tables:
                continue
            target = node_ids[child_tables[0].var]
            diagram.add_edge(DiagramEdge(source, target, style="dashed", directed=True,
                                         kind="reading-order"))
    return diagram


def _row_for(rows: tuple[str, ...], attribute: str) -> str | None:
    for row in rows:
        stripped = row.removeprefix("→ ")
        if stripped == attribute or stripped.startswith(f"{attribute} "):
            return row
    return None


def queryvis_diagram(query, schema, *, name: str | None = None) -> Diagram:
    """Build a QueryVis diagram from SQL text, a SQL AST, or a TRC query."""
    trc = to_trc(query, schema)
    graph = build_query_graph(trc)
    return queryvis_from_graph(graph, name=name or "QueryVis diagram")


def can_represent(query, schema) -> bool:
    """True iff QueryVis has a direct representation for this query."""
    from repro.translate.sql_to_trc import UnsupportedSQL

    try:
        queryvis_diagram(query, schema)
        return True
    except (CannotRepresent, UnsupportedSQL):
        return False
