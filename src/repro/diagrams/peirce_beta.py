"""Peirce's beta existential graphs (first-order logic).

Beta graphs extend alpha graphs with the *Line of Identity* (LI): a heavy
line that simultaneously asserts the existence of an individual and the
identity of its endpoints.  Predicates ("spots") are written with hooks to
which lines attach; cuts negate.  The quantification of a line is decided by
its *outermost point*: a line whose outermost part lies on the sheet is an
existential at the top level, a line entirely inside one cut is an
existential under that negation, and so on.

The tutorial devotes attention to the *imperfect mapping* between beta graphs
and the Boolean fragment of Domain Relational Calculus: beta graphs have no
free variables (every LI is quantified), so only *sentences* are
representable, and reading a graph back requires choosing where each line is
quantified.  Both directions are implemented here: DRC sentence → beta graph
(:func:`beta_graph_of`), and beta graph → DRC sentence (:func:`drc_of_beta`),
with the round trip preserving semantics.  For *queries* (formulas with free
variables) the builder follows the convention also used by string diagrams:
free variables become lines that reach the diagram boundary, which is exactly
the extension the tutorial attributes to later work — flagged in the result's
``formalism`` metadata so the caveat is not lost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.diagram import Diagram, DiagramEdge, DiagramGroup, DiagramNode
from repro.data.schema import DatabaseSchema
from repro.data.types import format_value
from repro.drc.ast import DRCQuery
from repro.logic.formula import (
    And,
    Atom,
    Compare,
    Exists,
    Formula,
    Not,
    Truth,
    conjunction,
    free_variables,
)
from repro.logic.terms import Const, Term, Var
from repro.logic.transform import simplify, to_exists_and_not


class BetaError(Exception):
    """Raised for inputs outside the beta-graph fragment."""


@dataclass
class Spot:
    """A predicate occurrence with its argument terms."""

    id: int
    predicate: str
    terms: tuple[Term, ...]
    cut_path: tuple[int, ...]  # ids of enclosing cuts, outermost first


@dataclass
class LineOfIdentity:
    """One line of identity: a variable with every hook it attaches to."""

    variable: str
    #: (spot id, argument position) pairs the line connects.
    hooks: list[tuple[int, int]] = field(default_factory=list)
    #: The cut path of the outermost point of the line (decides quantification).
    outermost: tuple[int, ...] = ()
    free: bool = False


@dataclass
class BetaGraph:
    """A structured beta graph: cuts, spots, lines of identity."""

    cuts: dict[int, tuple[int, ...]] = field(default_factory=dict)  # cut id -> parent path
    spots: list[Spot] = field(default_factory=list)
    lines: list[LineOfIdentity] = field(default_factory=list)
    comparisons: list[tuple[str, str, str, tuple[int, ...]]] = field(default_factory=list)

    def cut_depth(self) -> int:
        return max((len(path) + 1 for path in self.cuts.values()), default=0)

    def line_for(self, variable: str) -> LineOfIdentity:
        for line in self.lines:
            if line.variable == variable:
                return line
        raise KeyError(variable)


def beta_graph_of(formula: Formula) -> BetaGraph:
    """Translate a DRC formula (a sentence, or a query body) into a beta graph.

    The formula is first normalised to the ∃/∧/¬ fragment.  Free variables
    become free lines (see module docstring).
    """
    # Normalise to ∃/∧/¬ and drop the double negations the rewrite introduces,
    # so e.g. ∀x (A → B) gets its canonical two-cut rendering ¬∃x (A ∧ ¬B).
    normalized = simplify(to_exists_and_not(formula))
    graph = BetaGraph()
    cut_counter = itertools.count(1)
    spot_counter = itertools.count(1)
    free = {v.name for v in free_variables(formula)}
    line_scope: dict[str, tuple[int, ...]] = {name: () for name in free}

    def visit(node: Formula, path: tuple[int, ...]) -> None:
        if isinstance(node, Truth):
            if not node.value:
                # FALSE is an empty cut.
                cut_id = next(cut_counter)
                graph.cuts[cut_id] = path
            return
        if isinstance(node, Atom):
            spot_id = next(spot_counter)
            graph.spots.append(Spot(spot_id, node.predicate, node.terms, path))
            for position, term in enumerate(node.terms):
                if isinstance(term, Var):
                    line_scope.setdefault(term.name, path)
                    line = _ensure_line(graph, term.name)
                    line.hooks.append((spot_id, position))
            return
        if isinstance(node, Compare):
            left = _term_text(node.left)
            right = _term_text(node.right)
            graph.comparisons.append((left, node.op, right, path))
            for term in (node.left, node.right):
                if isinstance(term, Var):
                    line_scope.setdefault(term.name, path)
                    _ensure_line(graph, term.name)
            return
        if isinstance(node, And):
            for operand in node.operands:
                visit(operand, path)
            return
        if isinstance(node, Not):
            cut_id = next(cut_counter)
            graph.cuts[cut_id] = path
            visit(node.operand, path + (cut_id,))
            return
        if isinstance(node, Exists):
            for var in node.variables:
                line_scope.setdefault(var.name, path)
                _ensure_line(graph, var.name)
            visit(node.body, path)
            return
        raise BetaError(f"beta graphs cannot express {type(node).__name__} directly")

    visit(normalized, ())
    for line in graph.lines:
        line.outermost = line_scope.get(line.variable, ())
        line.free = line.variable in free
    return graph


def _ensure_line(graph: BetaGraph, variable: str) -> LineOfIdentity:
    for line in graph.lines:
        if line.variable == variable:
            return line
    line = LineOfIdentity(variable)
    graph.lines.append(line)
    return line


def _term_text(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return format_value(term.value)
    return str(term)


def drc_of_beta(graph: BetaGraph) -> Formula:
    """Read a beta graph back as a DRC formula (the imperfect inverse).

    Every line is existentially quantified at its outermost point; free lines
    (the query extension) stay free.  Constants on spot hooks are preserved.
    """
    def formula_at(path: tuple[int, ...]) -> Formula:
        parts: list[Formula] = []
        for spot in graph.spots:
            if spot.cut_path == path:
                parts.append(Atom(spot.predicate, spot.terms))
        for left, op, right, compare_path in graph.comparisons:
            if compare_path == path:
                parts.append(Compare(_parse_term(left), op, _parse_term(right)))
        for cut_id, parent in graph.cuts.items():
            if parent == path:
                parts.append(Not(formula_at(path + (cut_id,))))
        body = conjunction(parts)
        bound_here = [line.variable for line in graph.lines
                      if line.outermost == path and not line.free]
        if bound_here:
            return Exists(tuple(Var(name) for name in bound_here), body)
        return body

    return formula_at(())


def _parse_term(text: str) -> Term:
    if text.startswith("'") and text.endswith("'"):
        return Const(text[1:-1].replace("''", "'"))
    try:
        return Const(int(text))
    except ValueError:
        pass
    try:
        return Const(float(text))
    except ValueError:
        pass
    if text in ("TRUE", "FALSE"):
        return Const(text == "TRUE")
    return Var(text)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def beta_diagram(graph: BetaGraph, *, name: str = "beta graph") -> Diagram:
    """Render a beta graph: cuts as nested boxes, spots as predicates, LIs as bold edges."""
    diagram = Diagram(name, formalism="peirce_beta")
    sheet = diagram.add_group(DiagramGroup("sheet", "sheet of assertion", None, "dashed"))

    cut_groups: dict[tuple[int, ...], str] = {(): sheet.id}
    for cut_id, parent_path in sorted(graph.cuts.items(), key=lambda kv: len(kv[1])):
        parent = cut_groups[parent_path]
        group = diagram.add_group(DiagramGroup(f"cut{cut_id}", "", parent, "cut"))
        cut_groups[parent_path + (cut_id,)] = group.id

    spot_nodes: dict[int, str] = {}
    for spot in graph.spots:
        rows = []
        for position, term in enumerate(spot.terms):
            rows.append(f"#{position + 1}: {_term_text(term)}")
        node = diagram.add_node(DiagramNode(
            f"spot{spot.id}", "predicate", spot.predicate, tuple(rows),
            cut_groups[spot.cut_path], "table",
        ))
        spot_nodes[spot.id] = node.id

    for index, (left, op, right, path) in enumerate(graph.comparisons):
        diagram.add_node(DiagramNode(
            f"cmp{index}", "predicate", f"{left} {op} {right}", (),
            cut_groups[path], "plaintext",
        ))

    for line in graph.lines:
        junction = diagram.add_node(DiagramNode(
            f"li_{line.variable}", "line-of-identity",
            line.variable if line.free else "",
            (), cut_groups.get(line.outermost, sheet.id), "point",
        ))
        for spot_id, position in line.hooks:
            target = spot_nodes[spot_id]
            port = diagram.nodes[target].rows[position]
            diagram.add_edge(DiagramEdge(junction.id, target, style="bold",
                                         target_port=port, kind="identity"))
    return diagram


def beta_diagram_for_query(query, schema: DatabaseSchema, *, name: str | None = None) -> Diagram:
    """Build a beta-graph diagram for a relational query (SQL text, SQL AST, TRC, or DRC)."""
    from repro.diagrams.common import to_trc
    from repro.translate.trc_to_drc import trc_to_drc

    if isinstance(query, DRCQuery):
        drc = query
    else:
        trc = to_trc(query, schema)
        drc = trc_to_drc(trc, schema)
    graph = beta_graph_of(drc.body)
    diagram = beta_diagram(graph, name=name or "Peirce beta graph")
    if drc.head_variables():
        diagram.formalism = "peirce_beta (with free lines — beyond Peirce's sentences)"
    return diagram
