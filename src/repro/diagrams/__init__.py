"""Diagram builders for the formalisms surveyed in the tutorial.

Use :func:`build_diagram` to obtain a diagram for a query in any implemented
formalism::

    from repro.diagrams import build_diagram
    diagram = build_diagram("queryvis", "SELECT ...", schema)
    print(diagram.to_ascii())
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.diagram import Diagram
from repro.diagrams.common import CannotRepresent


def _queryvis(query, schema) -> Diagram:
    from repro.diagrams.queryvis import queryvis_diagram

    return queryvis_diagram(query, schema)


def _relational(query, schema) -> Diagram:
    from repro.diagrams.relational_diagrams import relational_diagram

    return relational_diagram(query, schema)


def _peirce_beta(query, schema) -> Diagram:
    from repro.diagrams.peirce_beta import beta_diagram_for_query

    return beta_diagram_for_query(query, schema)


def _string(query, schema) -> Diagram:
    from repro.diagrams.string_diagrams import string_diagram_for_query

    return string_diagram_for_query(query, schema)


def _qbe(query, schema) -> Diagram:
    from repro.diagrams.qbe import qbe_diagram

    return qbe_diagram(query, schema)


def _dfql(query, schema) -> Diagram:
    from repro.diagrams.dfql import dfql_diagram

    return dfql_diagram(query, schema)


def _sqlvis(query, schema) -> Diagram:
    from repro.diagrams.sqlvis import sqlvis_diagram

    return sqlvis_diagram(query, schema)


def _visual_sql(query, schema) -> Diagram:
    from repro.diagrams.visual_sql import visual_sql_diagram

    return visual_sql_diagram(query, schema)


def _conceptual(query, schema) -> Diagram:
    from repro.diagrams.conceptual import conceptual_graph_diagram

    return conceptual_graph_diagram(query, schema)


_BUILDERS: dict[str, Callable[[Any, Any], Diagram]] = {
    "queryvis": _queryvis,
    "relational_diagrams": _relational,
    "peirce_beta": _peirce_beta,
    "string_diagrams": _string,
    "qbe": _qbe,
    "dfql": _dfql,
    "sqlvis": _sqlvis,
    "visual_sql": _visual_sql,
    "conceptual": _conceptual,
}


def available_builders() -> list[str]:
    """Keys accepted by :func:`build_diagram` for relational queries."""
    return sorted(_BUILDERS)


def build_diagram(formalism: str, query, schema) -> Diagram:
    """Build the diagram of ``query`` in the given formalism.

    ``query`` may be SQL text, a parsed SQL AST, or (for the TRC-based
    formalisms) a TRC query.  Formalisms that only handle logical statements
    (Euler, Venn, Peirce alpha, constraint diagrams) have their own dedicated
    APIs in their modules and are not reachable through this dispatcher.
    """
    key = formalism.lower()
    if key not in _BUILDERS:
        raise CannotRepresent(
            f"no diagram builder registered for formalism {formalism!r}; "
            f"available: {', '.join(available_builders())}"
        )
    return _BUILDERS[key](query, schema)


__all__ = ["available_builders", "build_diagram", "CannotRepresent"]
