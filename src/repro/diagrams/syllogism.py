"""Categorical propositions, syllogisms, and region semantics.

The early diagrammatic systems the tutorial surveys (Euler circles, Venn
diagrams, Venn–Peirce diagrams) were invented to reason about *categorical
propositions* — "All A are B", "Some A are not B" — and syllogisms built from
them.  Their shared semantic core is the *region model*: with ``n`` terms
there are ``2^n`` minimal regions, a proposition constrains which regions are
empty or occupied, and an argument is valid iff every region assignment
consistent with the premises satisfies the conclusion.

This module is that semantic core; :mod:`repro.diagrams.euler` and
:mod:`repro.diagrams.venn` draw it.  The classic numbers fall out as
theorems: of the 256 syllogistic forms, 15 are valid under modern semantics
and 24 under existential import (experiment T4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

#: The four traditional proposition forms.
FORMS = ("A", "E", "I", "O")

_FORM_TEXT = {
    "A": "All {s} are {p}",
    "E": "No {s} are {p}",
    "I": "Some {s} are {p}",
    "O": "Some {s} are not {p}",
}


@dataclass(frozen=True)
class CategoricalProposition:
    """A categorical proposition: form (A/E/I/O), subject term, predicate term."""

    form: str
    subject: str
    predicate: str

    def __post_init__(self) -> None:
        form = self.form.upper()
        object.__setattr__(self, "form", form)
        if form not in FORMS:
            raise ValueError(f"unknown proposition form {self.form!r}")

    def text(self) -> str:
        return _FORM_TEXT[self.form].format(s=self.subject, p=self.predicate)

    def terms(self) -> tuple[str, str]:
        return (self.subject, self.predicate)

    def __str__(self) -> str:
        return self.text()


#: A region is identified by the set of terms it lies inside.
Region = frozenset


def regions_for(terms: Iterable[str]) -> list[Region]:
    """All 2^n minimal regions over the given terms."""
    terms = list(dict.fromkeys(terms))
    out = []
    for size in range(len(terms) + 1):
        for subset in itertools.combinations(terms, size):
            out.append(frozenset(subset))
    return out


def regions_of_intersection(terms: Iterable[str], inside: Iterable[str],
                            outside: Iterable[str] = ()) -> list[Region]:
    """Regions lying inside all of ``inside`` and outside all of ``outside``."""
    inside = set(inside)
    outside = set(outside)
    return [region for region in regions_for(terms)
            if inside <= region and not (outside & region)]


def proposition_constraints(proposition: CategoricalProposition,
                            terms: Iterable[str]) -> tuple[list[Region], list[Region]]:
    """Return (must-be-empty regions, at-least-one-occupied regions)."""
    s, p = proposition.subject, proposition.predicate
    if proposition.form == "A":      # All S are P: S ∩ ¬P is empty
        return regions_of_intersection(terms, [s], [p]), []
    if proposition.form == "E":      # No S are P: S ∩ P is empty
        return regions_of_intersection(terms, [s, p]), []
    if proposition.form == "I":      # Some S are P: S ∩ P is occupied
        return [], regions_of_intersection(terms, [s, p])
    # O: Some S are not P: S ∩ ¬P is occupied
    return [], regions_of_intersection(terms, [s], [p])


def _models(terms: list[str], propositions: Iterable[CategoricalProposition],
            *, existential_import: bool) -> Iterator[dict[Region, bool]]:
    """All region-occupancy assignments consistent with the propositions."""
    all_regions = regions_for(terms)
    constraints = [proposition_constraints(p, terms) for p in propositions]
    for bits in itertools.product([False, True], repeat=len(all_regions)):
        occupancy = dict(zip(all_regions, bits))
        ok = True
        for empties, occupied in constraints:
            if any(occupancy[r] for r in empties):
                ok = False
                break
            if occupied and not any(occupancy[r] for r in occupied):
                ok = False
                break
        if ok and existential_import:
            for term in terms:
                if not any(occupancy[r] for r in all_regions if term in r):
                    ok = False
                    break
        if ok:
            yield occupancy


def satisfies(occupancy: dict[Region, bool], proposition: CategoricalProposition,
              terms: list[str]) -> bool:
    """Does a region assignment satisfy a proposition?"""
    empties, occupied = proposition_constraints(proposition, terms)
    if any(occupancy[r] for r in empties):
        return False
    if occupied and not any(occupancy[r] for r in occupied):
        return False
    return True


def entails(premises: list[CategoricalProposition], conclusion: CategoricalProposition,
            *, existential_import: bool = False) -> bool:
    """Semantic entailment over the region model (brute force, ≤ 3 terms ⇒ 256 models)."""
    terms = []
    for proposition in [*premises, conclusion]:
        for term in proposition.terms():
            if term not in terms:
                terms.append(term)
    for occupancy in _models(terms, premises, existential_import=existential_import):
        if not satisfies(occupancy, conclusion, terms):
            return False
    return True


# ---------------------------------------------------------------------------
# Syllogisms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Syllogism:
    """A categorical syllogism: major premise, minor premise, conclusion.

    Terms follow the tradition: S (minor), P (major), M (middle).  ``figure``
    (1–4) determines where M sits in the premises; the ``mood`` is the triple
    of forms, e.g. ``"AAA"`` in figure 1 is Barbara.
    """

    mood: str
    figure: int

    def __post_init__(self) -> None:
        mood = self.mood.upper()
        object.__setattr__(self, "mood", mood)
        if len(mood) != 3 or any(ch not in FORMS for ch in mood):
            raise ValueError(f"bad mood {self.mood!r}")
        if self.figure not in (1, 2, 3, 4):
            raise ValueError(f"bad figure {self.figure!r}")

    def propositions(self, s: str = "S", p: str = "P", m: str = "M") \
            -> tuple[CategoricalProposition, CategoricalProposition, CategoricalProposition]:
        major_form, minor_form, conclusion_form = self.mood
        if self.figure == 1:
            major = CategoricalProposition(major_form, m, p)
            minor = CategoricalProposition(minor_form, s, m)
        elif self.figure == 2:
            major = CategoricalProposition(major_form, p, m)
            minor = CategoricalProposition(minor_form, s, m)
        elif self.figure == 3:
            major = CategoricalProposition(major_form, m, p)
            minor = CategoricalProposition(minor_form, m, s)
        else:
            major = CategoricalProposition(major_form, p, m)
            minor = CategoricalProposition(minor_form, m, s)
        conclusion = CategoricalProposition(conclusion_form, s, p)
        return major, minor, conclusion

    def is_valid(self, *, existential_import: bool = False) -> bool:
        major, minor, conclusion = self.propositions()
        return entails([major, minor], conclusion, existential_import=existential_import)

    def name(self) -> str:
        return f"{self.mood}-{self.figure}"


#: Traditional mnemonic names for the 15 unconditionally valid forms.
NAMED_SYLLOGISMS = {
    ("AAA", 1): "Barbara", ("EAE", 1): "Celarent", ("AII", 1): "Darii",
    ("EIO", 1): "Ferio",
    ("EAE", 2): "Cesare", ("AEE", 2): "Camestres", ("EIO", 2): "Festino",
    ("AOO", 2): "Baroco",
    ("IAI", 3): "Disamis", ("AII", 3): "Datisi", ("OAO", 3): "Bocardo",
    ("EIO", 3): "Ferison",
    ("AEE", 4): "Camenes", ("IAI", 4): "Dimaris", ("EIO", 4): "Fresison",
}


def all_syllogisms() -> list[Syllogism]:
    """All 256 syllogistic forms (64 moods × 4 figures)."""
    out = []
    for mood in ("".join(m) for m in itertools.product(FORMS, repeat=3)):
        for figure in (1, 2, 3, 4):
            out.append(Syllogism(mood, figure))
    return out


def valid_syllogisms(*, existential_import: bool = False) -> list[Syllogism]:
    """The forms valid under the chosen semantics (15 modern / 24 with import)."""
    return [s for s in all_syllogisms() if s.is_valid(existential_import=existential_import)]
