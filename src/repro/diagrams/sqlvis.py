"""SQLVis-style syntax visualizations (Miedema & Fletcher 2021).

SQLVis helps SQL *learners* by visualizing the syntactic structure of the
query: one box per table reference of each query block, edges for join
conditions within a block, and one nested box per subquery, labelled with the
keyword that introduces it (``IN``, ``NOT EXISTS``, ...).  Because the
drawing follows the syntax, semantically equivalent spellings (``NOT IN`` vs
``NOT EXISTS``) produce *different* pictures — which is exactly the property
the invariance principle penalises and the tutorial uses this family to
illustrate.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramEdge, DiagramGroup, DiagramNode
from repro.data.schema import DatabaseSchema
from repro.expr import ast as e
from repro.expr.format import format_expr
from repro.sql.ast import Join, Query, SelectQuery, SetOpQuery, TableRef
from repro.sql.format import format_query
from repro.sql.parser import parse_sql


def sqlvis_diagram(query, schema: DatabaseSchema, *, name: str | None = None) -> Diagram:
    """Visualize the syntactic structure of a SQL query."""
    if isinstance(query, str):
        query = parse_sql(query)
    diagram = Diagram(name or "SQLVis", formalism="sqlvis")
    _emit_query(diagram, query, None, "query")
    return diagram


def _emit_query(diagram: Diagram, query: Query, parent_group: str | None,
                label: str) -> None:
    if isinstance(query, SetOpQuery):
        group = diagram.add_group(DiagramGroup(diagram.fresh_id("g"),
                                               f"{label}: {query.op.upper()}",
                                               parent_group, "solid"))
        _emit_query(diagram, query.left, group.id, "left")
        _emit_query(diagram, query.right, group.id, "right")
        return
    if not isinstance(query, SelectQuery):
        raise TypeError(f"unexpected query node {type(query).__name__}")

    select_text = ", ".join(
        format_expr(item.expr, subquery_formatter=format_query)
        for item in query.select_items
    ) or "*"
    group = diagram.add_group(DiagramGroup(
        diagram.fresh_id("g"), f"{label}: SELECT {select_text}", parent_group, "solid",
    ))

    table_nodes: dict[str, str] = {}

    def add_table(ref: TableRef) -> None:
        rows = []
        node = diagram.add_node(DiagramNode(
            diagram.fresh_id("t"), "table",
            f"{ref.name} {ref.alias}" if ref.alias else ref.name, tuple(rows),
            group.id, "table",
        ))
        table_nodes[(ref.alias or ref.name).lower()] = node.id

    def add_from_item(item) -> None:
        if isinstance(item, TableRef):
            add_table(item)
        elif isinstance(item, Join):
            add_from_item(item.left)
            add_from_item(item.right)
            if item.condition is not None:
                _emit_condition_edges(diagram, item.condition, table_nodes, group.id)
        else:  # DerivedTable
            _emit_query(diagram, item.query, group.id, f"FROM {item.alias}")

    for item in query.from_items:
        add_from_item(item)

    if query.where is not None:
        _emit_where(diagram, query.where, table_nodes, group.id)
    for expr in query.group_by:
        diagram.add_node(DiagramNode(diagram.fresh_id("c"), "clause",
                                     f"GROUP BY {format_expr(expr)}", (), group.id,
                                     "plaintext"))
    if query.having is not None:
        diagram.add_node(DiagramNode(
            diagram.fresh_id("c"), "clause",
            "HAVING " + format_expr(query.having, subquery_formatter=format_query),
            (), group.id, "plaintext",
        ))


def _emit_where(diagram: Diagram, expr: e.Expr, table_nodes: dict[str, str],
                group_id: str) -> None:
    for conjunct in e.conjuncts(expr):
        if isinstance(conjunct, e.Exists):
            label = "NOT EXISTS" if conjunct.negated else "EXISTS"
            _emit_query(diagram, conjunct.query, group_id, label)
        elif isinstance(conjunct, e.InSubquery):
            label = f"{format_expr(conjunct.operand)} {'NOT IN' if conjunct.negated else 'IN'}"
            _emit_query(diagram, conjunct.query, group_id, label)
        elif isinstance(conjunct, e.QuantifiedComparison):
            label = f"{format_expr(conjunct.left)} {conjunct.op} {conjunct.quantifier.upper()}"
            _emit_query(diagram, conjunct.query, group_id, label)
        elif isinstance(conjunct, e.Not) and e.contains_subquery(conjunct):
            _emit_where(diagram, conjunct.operand, table_nodes, group_id)
        else:
            _emit_condition_edges(diagram, conjunct, table_nodes, group_id)


def _emit_condition_edges(diagram: Diagram, condition: e.Expr,
                          table_nodes: dict[str, str], group_id: str) -> None:
    """Join conditions become edges; everything else becomes a predicate note."""
    if isinstance(condition, e.Comparison):
        qualifiers = [c.qualifier.lower() for c in condition.columns() if c.qualifier]
        if len(set(qualifiers)) == 2 and all(q in table_nodes for q in qualifiers):
            diagram.add_edge(DiagramEdge(
                table_nodes[qualifiers[0]], table_nodes[qualifiers[1]],
                format_expr(condition), kind="join",
            ))
            return
    diagram.add_node(DiagramNode(
        diagram.fresh_id("p"), "predicate",
        format_expr(condition, subquery_formatter=format_query), (), group_id, "plaintext",
    ))
