"""Relational Diagrams (Gatterbauer & Dunne, SIGMOD 2024).

Relational Diagrams are the most recent TRC-based formalism the tutorial
covers.  Like QueryVis they draw one box per tuple variable with predicates
inside and join lines between attribute rows, but the nesting structure is
shown with *nested negated bounding boxes* — directly inspired by Peirce's
cuts — instead of reading-order arrows.  Because they build on TRC (not DRC),
attribute rows replace Lines of Identity, which sidesteps the interpretation
problems of beta graphs.  Disjunctions are handled by drawing the *union of
diagrams*: one diagram per disjunct, displayed side by side.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramEdge, DiagramGroup, DiagramNode, merge_side_by_side
from repro.diagrams.common import CannotRepresent, QueryGraph, build_query_graph, to_trc
from repro.trc.ast import (
    TRCAnd,
    TRCExists,
    TRCOr,
    TRCQuery,
    conjunction,
)
from repro.core.patterns import normalize_trc


def relational_diagram_from_graph(graph: QueryGraph, *, name: str = "query") -> Diagram:
    """Build a single Relational Diagram (no disjunction) from a query graph."""
    diagram = Diagram(name, formalism="relational_diagrams")

    head_text = ", ".join(f"{var}.{attr}" for var, attr in graph.head)
    group_ids: dict[int, str] = {}
    for scope in sorted(graph.scopes.values(), key=lambda s: s.depth):
        if scope.id == 0:
            label = head_text
            style = "dashed"
        else:
            label = ""
            style = "negation"
        parent = group_ids.get(scope.parent) if scope.parent is not None else None
        group = diagram.add_group(DiagramGroup(f"scope{scope.id}", label, parent, style))
        group_ids[scope.id] = group.id

    node_ids: dict[str, str] = {}
    for box in graph.tables.values():
        rows = []
        for attr in box.attributes:
            marker = "→ " if attr in box.output_attributes else ""
            rows.append(f"{marker}{attr}")
        rows.extend(box.local_predicates)
        node = diagram.add_node(DiagramNode(
            f"t_{box.var}", "table", box.relation, tuple(rows),
            group_ids[box.scope], "table",
        ))
        node_ids[box.var] = node.id

    for join in graph.joins:
        source_rows = diagram.nodes[node_ids[join.left_var]].rows
        target_rows = diagram.nodes[node_ids[join.right_var]].rows
        diagram.add_edge(DiagramEdge(
            node_ids[join.left_var], node_ids[join.right_var],
            label="" if join.op == "=" else join.op,
            source_port=_row_for(source_rows, join.left_attr),
            target_port=_row_for(target_rows, join.right_attr),
            kind="join",
        ))
    return diagram


def _row_for(rows: tuple[str, ...], attribute: str) -> str | None:
    for row in rows:
        stripped = row.removeprefix("→ ")
        if stripped == attribute or stripped.startswith(f"{attribute} "):
            return row
    return None


def _split_top_level_disjunction(trc: TRCQuery) -> list[TRCQuery]:
    """Split a query whose body is a top-level disjunction into one query per disjunct."""
    body = normalize_trc(trc.body)

    def split(formula) -> list:
        if isinstance(formula, TRCOr):
            out = []
            for operand in formula.operands:
                out.extend(split(operand))
            return out
        if isinstance(formula, TRCExists):
            return [TRCExists(formula.variables, branch) for branch in split(formula.body)]
        if isinstance(formula, TRCAnd):
            # Only split when exactly one conjunct is a disjunction; distribute it.
            disjunctions = [o for o in formula.operands if isinstance(o, TRCOr)]
            if len(disjunctions) == 1:
                others = [o for o in formula.operands if o is not disjunctions[0]]
                return [conjunction(others + [branch]) for branch in split(disjunctions[0])]
            return [formula]
        return [formula]

    branches = split(body)
    if len(branches) == 1:
        return [trc]
    return [TRCQuery(trc.head, branch) for branch in branches]


def relational_diagram(query, schema, *, name: str | None = None) -> Diagram:
    """Build a Relational Diagram from SQL text, SQL AST, or a TRC query.

    Queries whose pattern requires disjunction are rendered as the union of
    one diagram per disjunct (side by side, labelled "OR"), which is exactly
    the treatment the Relational Diagrams paper proposes.
    """
    trc = to_trc(query, schema)
    title = name or "Relational Diagram"
    try:
        graph = build_query_graph(trc, allow_local_disjunction=False)
        return relational_diagram_from_graph(graph, name=title)
    except CannotRepresent:
        branches = _split_top_level_disjunction(trc)
        if len(branches) <= 1:
            raise
        parts = []
        for index, branch in enumerate(branches):
            graph = build_query_graph(branch, allow_local_disjunction=False)
            parts.append(relational_diagram_from_graph(graph, name=f"branch {index + 1}"))
        combined = merge_side_by_side(parts, title,
                                      labels=[("" if i == 0 else "OR ") + f"alternative {i+1}"
                                              for i in range(len(parts))])
        combined.formalism = "relational_diagrams"
        return combined


def can_represent(query, schema) -> bool:
    """True iff the query (or its union-of-diagrams form) is representable."""
    from repro.translate.sql_to_trc import UnsupportedSQL

    try:
        relational_diagram(query, schema)
        return True
    except (CannotRepresent, UnsupportedSQL):
        return False
