"""String diagrams for first-order logic (Haydon & Sobocinski; Bonchi et al.).

String diagrams are, as the tutorial puts it, "essentially a variant of
Peirce's beta graphs that allow free variables in addition to bound
variables": predicates are boxes, variables are wires, and *bound* wires end
in a dot while *free* wires run to the boundary of the diagram, where they
form the interface of the query.  Negation is a shaded frame around a
sub-diagram.

The builder reuses the beta-graph extraction and changes the presentation:
free variables get boundary ports instead of being an afterthought.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramEdge, DiagramGroup, DiagramNode
from repro.data.schema import DatabaseSchema
from repro.diagrams.peirce_beta import BetaGraph, beta_graph_of, _term_text
from repro.drc.ast import DRCQuery


def string_diagram(graph: BetaGraph, free_order: list[str] | None = None,
                   *, name: str = "string diagram") -> Diagram:
    """Render a beta-graph structure in string-diagram style."""
    diagram = Diagram(name, formalism="string_diagrams")
    frame = diagram.add_group(DiagramGroup("frame", "", None, "solid"))
    boundary = diagram.add_group(DiagramGroup("boundary", "interface", None, "dashed"))

    cut_groups: dict[tuple[int, ...], str] = {(): frame.id}
    for cut_id, parent_path in sorted(graph.cuts.items(), key=lambda kv: len(kv[1])):
        parent = cut_groups[parent_path]
        group = diagram.add_group(DiagramGroup(f"neg{cut_id}", "¬", parent, "shaded"))
        cut_groups[parent_path + (cut_id,)] = group.id

    spot_nodes: dict[int, str] = {}
    for spot in graph.spots:
        rows = tuple(f"#{i + 1}: {_term_text(t)}" for i, t in enumerate(spot.terms))
        node = diagram.add_node(DiagramNode(
            f"box{spot.id}", "predicate", spot.predicate, rows,
            cut_groups[spot.cut_path], "table",
        ))
        spot_nodes[spot.id] = node.id

    for index, (left, op, right, path) in enumerate(graph.comparisons):
        diagram.add_node(DiagramNode(
            f"cmp{index}", "predicate", f"{left} {op} {right}", (),
            cut_groups[path], "plaintext",
        ))

    free_order = free_order or []
    for line in graph.lines:
        if line.free:
            position = free_order.index(line.variable) + 1 if line.variable in free_order else 0
            anchor = diagram.add_node(DiagramNode(
                f"port_{line.variable}", "port",
                f"⟨{position}⟩ {line.variable}" if position else line.variable,
                (), boundary.id, "plaintext",
            ))
        else:
            anchor = diagram.add_node(DiagramNode(
                f"dot_{line.variable}", "bound-wire", "", (),
                cut_groups.get(line.outermost, frame.id), "point",
            ))
        for spot_id, hook_position in line.hooks:
            target = spot_nodes[spot_id]
            port = diagram.nodes[target].rows[hook_position]
            diagram.add_edge(DiagramEdge(anchor.id, target, target_port=port,
                                         style="bold", kind="identity"))
    return diagram


def string_diagram_for_query(query, schema: DatabaseSchema,
                             *, name: str | None = None) -> Diagram:
    """Build a string diagram for a relational query (SQL, TRC, or DRC input)."""
    from repro.diagrams.common import to_trc
    from repro.translate.trc_to_drc import trc_to_drc

    if isinstance(query, DRCQuery):
        drc = query
    else:
        drc = trc_to_drc(to_trc(query, schema), schema)
    graph = beta_graph_of(drc.body)
    order = [v.name for v in drc.head_variables()]
    return string_diagram(graph, order, name=name or "string diagram")
