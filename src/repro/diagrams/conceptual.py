"""Sowa's conceptual graphs (1976), specialised to relational queries.

Conceptual graphs draw *concepts* as rectangles (``[Sailor: *s]``) and
*conceptual relations* as ovals connecting them; negation is a context box
containing a subgraph.  Sowa designed them explicitly as a database
interface, so the mapping from our query graph is direct: every tuple
variable becomes a concept, every join predicate becomes a relation oval
between two concepts, local selections become attribute concepts attached by
relation ovals, and negation scopes become negated contexts — structurally
the same skeleton as the TRC-based formalisms, drawn with the bipartite
concept/relation vocabulary.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramEdge, DiagramGroup, DiagramNode
from repro.diagrams.common import build_query_graph, to_trc


def conceptual_graph_diagram(query, schema, *, name: str | None = None) -> Diagram:
    """Build a conceptual-graph diagram from SQL text, SQL AST, or TRC."""
    trc = to_trc(query, schema)
    graph = build_query_graph(trc)
    diagram = Diagram(name or "conceptual graph", formalism="conceptual")

    group_ids: dict[int, str] = {}
    for scope in sorted(graph.scopes.values(), key=lambda s: s.depth):
        if scope.id == 0:
            group = diagram.add_group(DiagramGroup("outer", "", None, "dashed"))
        else:
            parent = group_ids[scope.parent] if scope.parent is not None else None
            group = diagram.add_group(DiagramGroup(f"ctx{scope.id}", "¬ context",
                                                   parent, "negation"))
        group_ids[scope.id] = group.id

    concept_ids: dict[str, str] = {}
    for box in graph.tables.values():
        marker = "*" if not box.output_attributes else "?"
        node = diagram.add_node(DiagramNode(
            f"c_{box.var}", "concept", f"[{box.relation}: {marker}{box.var}]",
            tuple(box.local_predicates), group_ids[box.scope], "box",
        ))
        concept_ids[box.var] = node.id

    for index, join in enumerate(graph.joins):
        relation_label = f"({join.left_attr} {join.op} {join.right_attr})"
        scope = graph.tables[join.left_var].scope
        inner_scope = graph.tables[join.right_var].scope
        # Place the relation oval in the deeper of the two scopes.
        deeper = scope if graph.scopes[scope].depth >= graph.scopes[inner_scope].depth \
            else inner_scope
        oval = diagram.add_node(DiagramNode(
            f"rel{index}", "relation", relation_label, (), group_ids[deeper], "ellipse",
        ))
        diagram.add_edge(DiagramEdge(concept_ids[join.left_var], oval.id, kind="argument"))
        diagram.add_edge(DiagramEdge(oval.id, concept_ids[join.right_var],
                                     directed=True, kind="argument"))
    return diagram
