"""Peirce's alpha existential graphs (propositional logic).

Alpha graphs have exactly three syntactic devices: writing a proposition on
the *sheet of assertion* asserts it; writing several side by side asserts
their conjunction; and enclosing a subgraph in a *cut* (a closed curve)
negates it.  Disjunction and implication are therefore drawn with nested
cuts: ``A ∨ B`` is ``¬(¬A ∧ ¬B)`` and ``A → B`` is ``¬(A ∧ ¬B)``.

The module gives the graphs a faithful recursive data structure
(:class:`AlphaGraph`), translation to and from propositional formulas,
Peirce's inference rules (double cut, erasure, insertion, iteration,
de-iteration where they are decidable locally), and rendering to the shared
diagram model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.diagram import Diagram, DiagramGroup, DiagramNode
from repro.logic.formula import (
    And,
    Atom,
    Formula,
    Implies,
    Iff,
    Not,
    Or,
    Truth,
)
from repro.logic.propositional import is_propositional, propositionally_equivalent


class AlphaError(Exception):
    """Raised for non-propositional inputs or malformed graphs."""


@dataclass(frozen=True)
class AlphaGraph:
    """A (sub)graph: a multiset of propositional letters and a list of cuts.

    The empty graph is the always-true sheet; a cut around the empty graph is
    falsity.
    """

    letters: tuple[str, ...] = ()
    cuts: tuple["AlphaGraph", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "letters", tuple(self.letters))
        object.__setattr__(self, "cuts", tuple(self.cuts))

    def is_empty(self) -> bool:
        return not self.letters and not self.cuts

    def depth(self) -> int:
        return 1 + max((c.depth() for c in self.cuts), default=0) if self.cuts else 0

    def letter_count(self) -> int:
        return len(self.letters) + sum(c.letter_count() for c in self.cuts)

    def cut_count(self) -> int:
        return len(self.cuts) + sum(c.cut_count() for c in self.cuts)


# ---------------------------------------------------------------------------
# Formula <-> graph
# ---------------------------------------------------------------------------

def graph_of(formula: Formula) -> AlphaGraph:
    """Translate a propositional formula into an alpha graph."""
    if not is_propositional(formula):
        raise AlphaError("alpha graphs only represent propositional formulas")

    def juxtapose(parts: list[AlphaGraph]) -> AlphaGraph:
        letters: list[str] = []
        cuts: list[AlphaGraph] = []
        for part in parts:
            letters.extend(part.letters)
            cuts.extend(part.cuts)
        return AlphaGraph(tuple(letters), tuple(cuts))

    def negate(graph: AlphaGraph) -> AlphaGraph:
        return AlphaGraph((), (graph,))

    def go(node: Formula) -> AlphaGraph:
        if isinstance(node, Truth):
            return AlphaGraph() if node.value else negate(AlphaGraph())
        if isinstance(node, Atom):
            return AlphaGraph((node.predicate,), ())
        if isinstance(node, And):
            return juxtapose([go(o) for o in node.operands])
        if isinstance(node, Not):
            return negate(go(node.operand))
        if isinstance(node, Or):
            return negate(juxtapose([negate(go(o)) for o in node.operands]))
        if isinstance(node, Implies):
            return negate(juxtapose([go(node.antecedent), negate(go(node.consequent))]))
        if isinstance(node, Iff):
            return juxtapose([go(Implies(node.left, node.right)),
                              go(Implies(node.right, node.left))])
        raise AlphaError(f"unhandled propositional node {type(node).__name__}")

    return go(formula)


def formula_of(graph: AlphaGraph) -> Formula:
    """Read an alpha graph back as a propositional formula."""
    parts: list[Formula] = [Atom(letter, ()) for letter in graph.letters]
    parts.extend(Not(formula_of(cut)) for cut in graph.cuts)
    if not parts:
        return Truth(True)
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def graphs_equivalent(left: AlphaGraph, right: AlphaGraph) -> bool:
    """Semantic equivalence of two alpha graphs (via truth tables)."""
    return propositionally_equivalent(formula_of(left), formula_of(right))


# ---------------------------------------------------------------------------
# Inference rules
# ---------------------------------------------------------------------------

def double_cut_insert(graph: AlphaGraph) -> AlphaGraph:
    """Wrap the whole graph in two nested cuts (always sound, both directions)."""
    return AlphaGraph((), (AlphaGraph((), (graph,)),))


def double_cut_remove(graph: AlphaGraph) -> AlphaGraph:
    """Remove an outermost double cut if one wraps the entire graph."""
    if not graph.letters and len(graph.cuts) == 1:
        inner = graph.cuts[0]
        if not inner.letters and len(inner.cuts) == 1:
            return inner.cuts[0]
    return graph


def erase_letter(graph: AlphaGraph, letter: str) -> AlphaGraph:
    """Erasure: delete one occurrence of a letter at the sheet level (even area).

    Erasure is only sound in evenly enclosed areas; the sheet (depth 0) is even.
    """
    if letter in graph.letters:
        letters = list(graph.letters)
        letters.remove(letter)
        return AlphaGraph(tuple(letters), graph.cuts)
    return graph


def insert_letter(graph: AlphaGraph, letter: str) -> AlphaGraph:
    """Insertion: add any subgraph in an oddly enclosed area (here: inside the first cut)."""
    if not graph.cuts:
        raise AlphaError("insertion requires an oddly enclosed area (a cut)")
    first = graph.cuts[0]
    new_first = AlphaGraph(first.letters + (letter,), first.cuts)
    return AlphaGraph(graph.letters, (new_first,) + graph.cuts[1:])


def iterate_letter(graph: AlphaGraph, letter: str) -> AlphaGraph:
    """Iteration: copy a sheet-level letter into the first cut (if any)."""
    if letter not in graph.letters or not graph.cuts:
        return graph
    first = graph.cuts[0]
    new_first = AlphaGraph(first.letters + (letter,), first.cuts)
    return AlphaGraph(graph.letters, (new_first,) + graph.cuts[1:])


def deiterate_letter(graph: AlphaGraph, letter: str) -> AlphaGraph:
    """De-iteration: remove a copy from the first cut when the letter exists outside."""
    if letter not in graph.letters or not graph.cuts:
        return graph
    first = graph.cuts[0]
    if letter in first.letters:
        letters = list(first.letters)
        letters.remove(letter)
        new_first = AlphaGraph(tuple(letters), first.cuts)
        return AlphaGraph(graph.letters, (new_first,) + graph.cuts[1:])
    return graph


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def alpha_diagram(source: "Formula | AlphaGraph", *, name: str = "alpha graph") -> Diagram:
    """Render a propositional formula (or alpha graph) as nested cuts."""
    graph = source if isinstance(source, AlphaGraph) else graph_of(source)
    diagram = Diagram(name, formalism="peirce_alpha")
    sheet = diagram.add_group(DiagramGroup("sheet", "sheet of assertion", None, "dashed"))

    def emit(node: AlphaGraph, parent: str) -> None:
        for letter in node.letters:
            diagram.add_node(DiagramNode(diagram.fresh_id("p"), "proposition", letter,
                                         (), parent, "plaintext"))
        for cut in node.cuts:
            group = diagram.add_group(DiagramGroup(diagram.fresh_id("cut"), "", parent, "cut"))
            emit(cut, group.id)

    emit(graph, sheet.id)
    return diagram
