"""Visual SQL-style clause trees (Jaakkola & Thalheim 2003).

Visual SQL keeps a strict one-to-one correspondence with the SQL text: the
diagram is essentially the parse tree of the statement, one node per clause,
nested for subqueries.  That makes it excellent as a *specification* aid and
weak as a *pattern* visualization — two spellings of the same query produce
two different trees, the property experiment T3 measures.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramEdge, DiagramNode
from repro.data.schema import DatabaseSchema
from repro.expr.format import format_expr
from repro.sql.ast import DerivedTable, Join, Query, SelectQuery, SetOpQuery, TableRef
from repro.sql.format import format_query
from repro.sql.parser import parse_sql


def visual_sql_diagram(query, schema: DatabaseSchema, *, name: str | None = None) -> Diagram:
    """Draw the clause tree of a SQL query."""
    if isinstance(query, str):
        query = parse_sql(query)
    diagram = Diagram(name or "Visual SQL", formalism="visual_sql")
    _emit(diagram, query, None)
    return diagram


def _add(diagram: Diagram, label: str, parent: str | None, *, kind: str = "clause") -> str:
    node = diagram.add_node(DiagramNode(diagram.fresh_id("n"), kind, label, (), None, "box"))
    if parent is not None:
        diagram.add_edge(DiagramEdge(parent, node.id, directed=True, kind="flow"))
    return node.id


def _emit(diagram: Diagram, query: Query, parent: str | None) -> str:
    if isinstance(query, SetOpQuery):
        root = _add(diagram, query.op.upper() + (" ALL" if query.all else ""), parent)
        _emit(diagram, query.left, root)
        _emit(diagram, query.right, root)
        return root
    if not isinstance(query, SelectQuery):
        raise TypeError(f"unexpected query node {type(query).__name__}")

    root = _add(diagram, "SELECT" + (" DISTINCT" if query.distinct else ""), parent)
    for item in query.select_items:
        text = format_expr(item.expr, subquery_formatter=format_query)
        if item.alias:
            text += f" AS {item.alias}"
        _add(diagram, text, root, kind="column")
    if query.select_star:
        _add(diagram, "*", root, kind="column")

    if query.from_items:
        from_node = _add(diagram, "FROM", root)
        for item in query.from_items:
            _emit_from(diagram, item, from_node)
    if query.where is not None:
        where_node = _add(diagram, "WHERE", root)
        _emit_expression(diagram, query.where, where_node)
    if query.group_by:
        group_node = _add(diagram, "GROUP BY", root)
        for expr in query.group_by:
            _add(diagram, format_expr(expr), group_node, kind="column")
    if query.having is not None:
        having_node = _add(diagram, "HAVING", root)
        _emit_expression(diagram, query.having, having_node)
    if query.order_by:
        order_node = _add(diagram, "ORDER BY", root)
        for item in query.order_by:
            _add(diagram, format_expr(item.expr) + ("" if item.ascending else " DESC"),
                 order_node, kind="column")
    if query.limit is not None:
        _add(diagram, f"LIMIT {query.limit}", root)
    return root


def _emit_from(diagram: Diagram, item, parent: str) -> None:
    if isinstance(item, TableRef):
        _add(diagram, f"{item.name} {item.alias}" if item.alias else item.name,
             parent, kind="table")
    elif isinstance(item, Join):
        join_label = ("NATURAL " if item.natural else "") + item.kind.upper() + " JOIN"
        join_node = _add(diagram, join_label, parent)
        _emit_from(diagram, item.left, join_node)
        _emit_from(diagram, item.right, join_node)
        if item.condition is not None:
            _add(diagram, "ON " + format_expr(item.condition, subquery_formatter=format_query),
                 join_node, kind="predicate")
    elif isinstance(item, DerivedTable):
        derived = _add(diagram, f"({item.alias})", parent, kind="table")
        _emit(diagram, item.query, derived)


def _emit_expression(diagram: Diagram, expr, parent: str) -> None:
    from repro.expr import ast as e

    if isinstance(expr, e.And):
        node = _add(diagram, "AND", parent, kind="connective")
        for operand in expr.operands:
            _emit_expression(diagram, operand, node)
        return
    if isinstance(expr, e.Or):
        node = _add(diagram, "OR", parent, kind="connective")
        for operand in expr.operands:
            _emit_expression(diagram, operand, node)
        return
    if isinstance(expr, e.Not):
        node = _add(diagram, "NOT", parent, kind="connective")
        _emit_expression(diagram, expr.operand, node)
        return
    if isinstance(expr, (e.Exists, e.InSubquery, e.QuantifiedComparison)) and expr.query is not None:
        if isinstance(expr, e.Exists):
            label = "NOT EXISTS" if expr.negated else "EXISTS"
        elif isinstance(expr, e.InSubquery):
            label = f"{format_expr(expr.operand)} {'NOT IN' if expr.negated else 'IN'}"
        else:
            label = f"{format_expr(expr.left)} {expr.op} {expr.quantifier.upper()}"
        node = _add(diagram, label, parent, kind="predicate")
        _emit(diagram, expr.query, node)
        return
    _add(diagram, format_expr(expr, subquery_formatter=format_query), parent, kind="predicate")
