"""Query-By-Example (Zloof 1977).

QBE presents one *skeleton table* per relation occurrence; the user fills
cells with example elements (``_SID``), constants, print markers (``P.``) and
negation markers on rows.  Complex conditions go to a separate *condition
box*.  Universal quantification (relational division) is not expressible in
one screen: the textbook recipe — the one the tutorial contrasts with
Datalog — breaks the query into two logical steps that materialise a
temporary relation.

The builder turns a conjunctive query (with simple negated subqueries) into
skeleton tables, and :func:`qbe_division_steps` produces the two-step plan
for "all red boats"-style queries, mirroring the Datalog division pattern of
:func:`repro.translate.ra_datalog.ra_to_datalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.diagram import Diagram, DiagramNode
from repro.data.schema import DatabaseSchema
from repro.diagrams.common import CannotRepresent, build_query_graph, to_trc


@dataclass
class SkeletonTable:
    """One QBE skeleton table: relation name + one example row."""

    relation: str
    entries: dict[str, str] = field(default_factory=dict)
    negated: bool = False

    def row_text(self, schema: DatabaseSchema) -> list[str]:
        try:
            attributes = [a.name for a in schema.relation(self.relation).attributes]
        except Exception:
            # Temporary relations (e.g. the division helper) are not in the schema.
            attributes = list(self.entries)
        return [f"{name}: {self.entries.get(name, '')}".rstrip() for name in attributes]


@dataclass
class QBEQuery:
    """A QBE screen: skeleton tables plus a condition box."""

    tables: list[SkeletonTable] = field(default_factory=list)
    conditions: list[str] = field(default_factory=list)
    result_name: str | None = None

    def to_diagram(self, schema: DatabaseSchema, *, name: str = "QBE") -> Diagram:
        diagram = Diagram(name, formalism="qbe")
        for index, table in enumerate(self.tables):
            label = table.relation + ("  (¬)" if table.negated else "")
            diagram.add_node(DiagramNode(
                f"tbl{index}", "table", label, tuple(table.row_text(schema)), None, "table",
            ))
        if self.conditions:
            diagram.add_node(DiagramNode(
                "conditions", "condition-box", "CONDITIONS", tuple(self.conditions),
                None, "table",
            ))
        if self.result_name:
            diagram.add_node(DiagramNode(
                "result", "table", f"{self.result_name} (result)", (), None, "table",
            ))
        return diagram


def qbe_from_query(query, schema: DatabaseSchema) -> QBEQuery:
    """Build the QBE screen of a query (conjunctive core + one level of negation)."""
    trc = to_trc(query, schema)
    graph = build_query_graph(trc)
    if any(scope.depth > 1 for scope in graph.scopes.values()):
        raise CannotRepresent(
            "QBE needs multiple screens (temporary relations) for nested negation; "
            "use qbe_division_steps for universal quantification"
        )

    qbe = QBEQuery()
    # Shared example element per (variable, attribute) that participates in joins/head.
    example_names: dict[tuple[str, str], str] = {}

    def example_for(var: str, attr: str) -> str:
        key = (var, attr)
        if key not in example_names:
            example_names[key] = f"_{attr.upper()}{'' if len(example_names) < 1 else len(example_names)}"
        return example_names[key]

    # Join predicates force the same example element in both cells.
    for join in graph.joins:
        if join.op != "=":
            qbe.conditions.append(
                f"{example_for(join.left_var, join.left_attr)} {join.op} "
                f"{example_for(join.right_var, join.right_attr)}"
            )
            continue
        shared = example_for(join.left_var, join.left_attr)
        example_names[(join.right_var, join.right_attr)] = shared

    for box in graph.tables.values():
        table = SkeletonTable(box.relation, negated=graph.scopes[box.scope].negated)
        for (var, attr), example in example_names.items():
            if var == box.var:
                table.entries[attr] = example
        for predicate in box.local_predicates:
            if " = " in predicate and " OR " not in predicate:
                attr, value = predicate.split(" = ", 1)
                table.entries[attr.strip()] = value.strip()
            else:
                attr = predicate.split(" ", 1)[0]
                placeholder = example_for(box.var, attr)
                table.entries.setdefault(attr, placeholder)
                qbe.conditions.append(predicate.replace(attr, placeholder, 1))
        for var, attr in graph.head:
            if var == box.var:
                existing = table.entries.get(attr, "")
                table.entries[attr] = f"P.{existing}" if existing else f"P._{attr.upper()}"
        qbe.tables.append(table)
    return qbe


def qbe_diagram(query, schema: DatabaseSchema, *, name: str | None = None) -> Diagram:
    """The QBE screen as a diagram (single-screen queries only)."""
    return qbe_from_query(query, schema).to_diagram(schema, name=name or "QBE skeleton")


def qbe_division_steps(schema: DatabaseSchema, *, dividend: str = "Reserves",
                       divisor_relation: str = "Boats",
                       divisor_condition: str = "color = 'red'",
                       quotient_attr: str = "sid",
                       divisor_attr: str = "bid") -> list[QBEQuery]:
    """The textbook two-step QBE plan for relational division.

    Step 1 materialises a temporary relation ``BadSid`` of candidates that
    *miss* some divisor tuple (using a negated skeleton row); step 2 prints
    the candidates not in ``BadSid``.  This is exactly the dataflow-style,
    multi-occurrence pattern that Datalog uses, which is why the tutorial
    asks whether QBE is really more "visual" than Datalog.
    """
    attr_cond, value = divisor_condition.split("=")
    step1 = QBEQuery(result_name="BadSid")
    step1.tables.append(SkeletonTable(dividend, {quotient_attr: f"_{quotient_attr.upper()}"}))
    step1.tables.append(SkeletonTable(
        divisor_relation,
        {divisor_attr: f"_{divisor_attr.upper()}", attr_cond.strip(): value.strip()},
    ))
    step1.tables.append(SkeletonTable(
        dividend,
        {quotient_attr: f"_{quotient_attr.upper()}", divisor_attr: f"_{divisor_attr.upper()}"},
        negated=True,
    ))
    step1.conditions.append(f"BadSid({quotient_attr}) ← _{quotient_attr.upper()}")

    step2 = QBEQuery()
    step2.tables.append(SkeletonTable(dividend, {quotient_attr: f"P._{quotient_attr.upper()}"}))
    step2.tables.append(SkeletonTable(
        "BadSid", {quotient_attr: f"_{quotient_attr.upper()}"}, negated=True,
    ))
    return [step1, step2]
