"""DFQL — Dataflow Query Language diagrams (Clark & Wu 1994).

DFQL is the canonical example of a *relationally complete* visual language
obtained by the simplest possible recipe: draw the Relational Algebra
operator tree as a dataflow diagram, relations at the top, one bubble per
operator, data flowing downwards to the result.  Its completeness is
inherited from RA; its weakness — which the tutorial points out for the whole
family — is that the user is reading a query plan, not a query pattern.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramEdge, DiagramNode
from repro.data.schema import DatabaseSchema
from repro.ra.ast import RAExpr, RelationRef
from repro.ra.pretty import operator_label


def dfql_from_ra(expr: RAExpr, *, name: str = "DFQL dataflow") -> Diagram:
    """Draw an RA expression as a DFQL dataflow diagram."""
    diagram = Diagram(name, formalism="dfql")

    def visit(node: RAExpr) -> str:
        kind = "source" if isinstance(node, RelationRef) else "operator"
        shape = "box" if isinstance(node, RelationRef) else "ellipse"
        drawn = diagram.add_node(DiagramNode(
            diagram.fresh_id("op"), kind, operator_label(node, unicode=True), (), None, shape,
        ))
        for child in node.children():
            child_id = visit(child)
            diagram.add_edge(DiagramEdge(child_id, drawn.id, directed=True, kind="dataflow"))
        return drawn.id

    result_source = visit(expr)
    result = diagram.add_node(DiagramNode("result", "sink", "display", (), None, "box"))
    diagram.add_edge(DiagramEdge(result_source, result.id, directed=True, kind="dataflow"))
    return diagram


def dfql_diagram(query, schema: DatabaseSchema, *, name: str | None = None) -> Diagram:
    """Build a DFQL diagram from SQL text, a SQL AST, RA text, or an RA expression."""
    expr = _to_ra(query, schema)
    return dfql_from_ra(expr, name=name or "DFQL dataflow")


def _to_ra(query, schema: DatabaseSchema) -> RAExpr:
    from repro.ra.parser import parse_ra
    from repro.sql.ast import SelectQuery, SetOpQuery
    from repro.translate.sql_to_ra import sql_to_ra

    if isinstance(query, RAExpr):
        return query
    if isinstance(query, (SelectQuery, SetOpQuery)):
        return sql_to_ra(query, schema)
    if isinstance(query, str):
        stripped = query.strip()
        if stripped.lower().startswith("select") or stripped.startswith("("):
            return sql_to_ra(query, schema)
        return parse_ra(query)
    raise TypeError(f"cannot obtain an RA expression from {type(query).__name__}")
