"""Safety (range restriction) analysis for TRC queries.

Unrestricted relational calculus can express *unsafe* queries whose answers
depend on the (infinite) underlying domain rather than on the database, e.g.
``{ t | ¬Sailors(t) }``.  The tutorial's Part 3 reviews the safety conditions
that make RC equivalent to RA; this module implements a conservative,
syntactic check in that spirit:

* every head variable must be bound by a positive relation atom;
* every quantified variable must be *guarded*: an existential variable needs
  a positive relation atom conjoined within its scope, a universal variable
  needs its body to be an implication (or disjunction with a negated atom)
  whose antecedent contains the guarding relation atom;
* a variable may range over only one relation.

The check is sound but not complete: it may reject exotic but safe queries.
Every query produced by our SQL→TRC translator passes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trc.ast import (
    RelAtom,
    TRCAnd,
    TRCCompare,
    TRCError,
    TRCExists,
    TRCForAll,
    TRCFormula,
    TRCImplies,
    TRCNot,
    TRCOr,
    TRCQuery,
    TRCTrue,
    TupleVar,
    free_tuple_variables,
    variable_ranges,
)


@dataclass
class SafetyReport:
    """Outcome of the safety analysis."""

    safe: bool
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.safe


def _positive_atoms_for(var: TupleVar, formula: TRCFormula) -> bool:
    """True iff ``formula`` contains a guarding relation atom for ``var``.

    A guard is a relation atom on ``var`` reachable through conjunctions,
    through the antecedent of an implication, or through the body of a
    nested quantifier over *other* variables.
    """
    if isinstance(formula, RelAtom):
        return formula.var.name == var.name
    if isinstance(formula, TRCAnd):
        return any(_positive_atoms_for(var, o) for o in formula.operands)
    if isinstance(formula, TRCImplies):
        return _positive_atoms_for(var, formula.antecedent)
    if isinstance(formula, TRCOr):
        return all(_positive_atoms_for(var, o) for o in formula.operands)
    if isinstance(formula, (TRCExists, TRCForAll)):
        if any(v.name == var.name for v in formula.variables):
            return False
        return _positive_atoms_for(var, formula.body)
    return False


def has_positive_guard(var: TupleVar, formula: TRCFormula) -> bool:
    """Public wrapper: is ``var`` guarded by a positive relation atom in ``formula``?"""
    return _positive_atoms_for(var, formula)


def _universal_guard(var: TupleVar, body: TRCFormula) -> bool:
    """Guards for ∀x: body must restrict x, typically R(x) → φ or ¬R(x) ∨ φ."""
    if isinstance(body, TRCImplies):
        return _positive_atoms_for(var, body.antecedent)
    if isinstance(body, TRCOr):
        for operand in body.operands:
            if isinstance(operand, TRCNot) and _positive_atoms_for(var, operand.operand):
                return True
        return False
    if isinstance(body, TRCNot):
        return _positive_atoms_for(var, body.operand)
    return False


def check_safety(query: TRCQuery) -> SafetyReport:
    """Run the syntactic safety analysis on a TRC query."""
    violations: list[str] = []

    try:
        ranges = variable_ranges(query.body)
    except TRCError as exc:
        return SafetyReport(False, [str(exc)])

    free_names = {v.name for v in free_tuple_variables(query.body)}
    for var in query.head_variables():
        if var.name not in free_names:
            violations.append(f"head variable {var.name} is not free in the body")
        if var.name not in ranges:
            violations.append(f"head variable {var.name} has no relation atom (unsafe)")
        elif not _positive_atoms_for(var, query.body):
            violations.append(
                f"head variable {var.name} is not guarded by a positive relation atom"
            )

    def visit(formula: TRCFormula) -> None:
        if isinstance(formula, TRCExists):
            for var in formula.variables:
                if not _positive_atoms_for(var, formula.body):
                    violations.append(
                        f"existential variable {var.name} is not guarded inside its scope"
                    )
            visit(formula.body)
        elif isinstance(formula, TRCForAll):
            for var in formula.variables:
                if not (_universal_guard(var, formula.body)
                        or _positive_atoms_for(var, formula.body)):
                    violations.append(
                        f"universal variable {var.name} is not guarded inside its scope"
                    )
            visit(formula.body)
        elif isinstance(formula, (TRCAnd, TRCOr)):
            for operand in formula.operands:
                visit(operand)
        elif isinstance(formula, TRCNot):
            visit(formula.operand)
        elif isinstance(formula, TRCImplies):
            visit(formula.antecedent)
            visit(formula.consequent)
        elif isinstance(formula, (RelAtom, TRCCompare, TRCTrue)):
            pass
        else:  # pragma: no cover - exhaustive
            violations.append(f"unknown node {type(formula).__name__}")

    visit(query.body)
    return SafetyReport(not violations, violations)


def is_safe(query: TRCQuery) -> bool:
    """Convenience wrapper around :func:`check_safety`."""
    return check_safety(query).safe
