"""Parser for the textual TRC syntax used in the tutorial.

Example queries (ASCII and Unicode forms are both accepted)::

    { s.sname | Sailors(s) and exists r (Reserves(r) and r.sid = s.sid and r.bid = 102) }
    { s.sname | Sailors(s) ∧ ∀b (Boats(b) ∧ b.color = 'red' →
                 ∃r (Reserves(r) ∧ r.sid = s.sid ∧ r.bid = b.bid)) }

Grammar::

    query    := '{' head '|' formula '}'
    head     := headitem (',' headitem)*
    headitem := var '.' attr ['as' name] | constant
    formula  := implies
    implies  := or ( ('->' | 'implies' | '→') or )*
    or       := and ( ('or' | '∨') and )*
    and      := unary ( ('and' | '∧') unary )*
    unary    := ('not' | '¬') unary
              | ('exists' | '∃') varlist ('(' formula ')' | ':' unary)
              | ('forall' | '∀') varlist ('(' formula ')' | ':' unary)
              | atom | '(' formula ')'
    atom     := NAME '(' var ')' | term op term
"""

from __future__ import annotations

import re

from repro.trc.ast import (
    AttrRef,
    ConstTerm,
    HeadItem,
    RelAtom,
    TRCAnd,
    TRCCompare,
    TRCError,
    TRCExists,
    TRCForAll,
    TRCFormula,
    TRCImplies,
    TRCNot,
    TRCOr,
    TRCQuery,
    TupleVar,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<arrow>->|→|⇒)
  | (?P<op><>|!=|<=|>=|=|<|>|\(|\)|\{|\}|\||,|\.|:)
  | (?P<symbol>∃|∀|∧|∨|¬)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "exists", "forall", "implies", "as", "in", "true", "false"}


class _Token:
    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise TRCError(f"unexpected character {text[pos]!r} at position {pos}")
        pos = match.end()
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "ws":
            continue
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", value.lower()))
        elif kind == "symbol":
            mapping = {"∃": "exists", "∀": "forall", "∧": "and", "∨": "or", "¬": "not"}
            tokens.append(_Token("keyword", mapping[value]))
        elif kind == "arrow":
            tokens.append(_Token("keyword", "implies"))
        else:
            tokens.append(_Token(kind, value))
    tokens.append(_Token("eof", ""))
    return tokens


class _TRCParser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            raise TRCError(f"expected {text or kind}, found {self.peek().text!r}")
        return token

    # -- query -------------------------------------------------------------
    def parse_query(self) -> TRCQuery:
        self.expect("op", "{")
        head = [self.parse_head_item()]
        while self.accept("op", ","):
            head.append(self.parse_head_item())
        self.expect("op", "|")
        body = self.parse_formula()
        self.expect("op", "}")
        if self.peek().kind != "eof":
            raise TRCError(f"unexpected trailing input {self.peek().text!r}")
        return TRCQuery(tuple(head), body)

    def parse_head_item(self) -> HeadItem:
        term = self.parse_term()
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("name").text
        return HeadItem(term, alias)

    # -- formulas ----------------------------------------------------------
    def parse_formula(self) -> TRCFormula:
        return self.parse_implies()

    def parse_implies(self) -> TRCFormula:
        left = self.parse_or()
        if self.accept("keyword", "implies"):
            right = self.parse_implies()
            return TRCImplies(left, right)
        return left

    def parse_or(self) -> TRCFormula:
        parts = [self.parse_and()]
        while self.accept("keyword", "or"):
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else TRCOr(tuple(parts))

    def parse_and(self) -> TRCFormula:
        parts = [self.parse_unary()]
        while self.accept("keyword", "and"):
            parts.append(self.parse_unary())
        return parts[0] if len(parts) == 1 else TRCAnd(tuple(parts))

    def parse_unary(self) -> TRCFormula:
        if self.accept("keyword", "not"):
            return TRCNot(self.parse_unary())
        if self.peek().kind == "keyword" and self.peek().text in ("exists", "forall"):
            kind = self.advance().text
            variables = [TupleVar(self.expect("name").text)]
            while self.accept("op", ","):
                variables.append(TupleVar(self.expect("name").text))
            if self.accept("op", ":"):
                body = self.parse_unary()
            else:
                self.expect("op", "(")
                body = self.parse_formula()
                self.expect("op", ")")
            cls = TRCExists if kind == "exists" else TRCForAll
            return cls(tuple(variables), body)
        return self.parse_atom()

    def parse_atom(self) -> TRCFormula:
        token = self.peek()
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.parse_formula()
            self.expect("op", ")")
            return inner
        # Relation atom: Name '(' var ')'
        if token.kind == "name" and self.peek(1).kind == "op" and self.peek(1).text == "(":
            relation = self.advance().text
            self.advance()  # '('
            var = TupleVar(self.expect("name").text)
            self.expect("op", ")")
            return RelAtom(relation, var)
        # Otherwise a comparison between two terms.
        left = self.parse_term()
        op_token = self.peek()
        if op_token.kind != "op" or op_token.text not in ("=", "<>", "!=", "<", "<=", ">", ">="):
            raise TRCError(f"expected a comparison operator, found {op_token.text!r}")
        self.advance()
        right = self.parse_term()
        return TRCCompare(left, op_token.text, right)

    def parse_term(self):
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return ConstTerm(float(token.text) if "." in token.text else int(token.text))
        if token.kind == "string":
            self.advance()
            return ConstTerm(token.text[1:-1].replace("''", "'"))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return ConstTerm(token.text == "true")
        if token.kind == "name":
            self.advance()
            if self.accept("op", "."):
                attr = self.expect("name").text
                return AttrRef(TupleVar(token.text), attr)
            raise TRCError(
                f"bare variable {token.text!r} cannot be used as a term; "
                "use var.attribute"
            )
        raise TRCError(f"expected a term, found {token.text!r}")


def parse_trc(text: str) -> TRCQuery:
    """Parse a TRC query of the form ``{ head | formula }``."""
    return _TRCParser(_tokenize(text)).parse_query()


def parse_trc_formula(text: str) -> TRCFormula:
    """Parse a bare TRC formula (no head); used for Boolean queries."""
    parser = _TRCParser(_tokenize(text))
    formula = parser.parse_formula()
    if parser.peek().kind != "eof":
        raise TRCError(f"unexpected trailing input {parser.peek().text!r}")
    return formula
