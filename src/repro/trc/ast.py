"""Tuple Relational Calculus (TRC) abstract syntax.

A TRC query has the shape ``{ s.sname, s.age | Sailors(s) ∧ φ(s) }``: the
head lists attribute references of free tuple variables (or constants), and
the body is a first-order formula whose atoms are *relation atoms*
``R(t)`` — "tuple variable t ranges over relation R" — and comparisons
between attribute references and constants.

TRC is the language closest to QueryVis and Relational Diagrams: each table
box in those diagrams is precisely one tuple variable, which is why the
tutorial contrasts TRC-based diagrams with DRC-based Peirce graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


class TRCError(Exception):
    """Raised for malformed or unsafe TRC queries."""


@dataclass(frozen=True)
class TupleVar:
    """A tuple variable (ranges over the tuples of one relation)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AttrRef:
    """An attribute of a tuple variable: ``s.sname``."""

    var: TupleVar
    attr: str

    def __str__(self) -> str:
        return f"{self.var.name}.{self.attr}"


@dataclass(frozen=True)
class ConstTerm:
    """A constant in a comparison or in the head."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


#: Terms usable in comparisons and in query heads.
TRCTerm = AttrRef | ConstTerm


class TRCFormula:
    """Base class of TRC formulas."""

    def children(self) -> tuple["TRCFormula", ...]:
        return ()

    def walk(self) -> Iterator["TRCFormula"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class TRCTrue(TRCFormula):
    """The constant TRUE (used as an empty body)."""

    value: bool = True


@dataclass(frozen=True)
class RelAtom(TRCFormula):
    """``R(t)``: tuple variable ``t`` is a tuple of relation ``R``."""

    relation: str
    var: TupleVar

    def __str__(self) -> str:
        return f"{self.relation}({self.var})"


@dataclass(frozen=True)
class TRCCompare(TRCFormula):
    """A comparison between two terms."""

    left: TRCTerm
    op: str
    right: TRCTerm

    def __post_init__(self) -> None:
        op = {"!=": "<>", "==": "="}.get(self.op, self.op)
        object.__setattr__(self, "op", op)
        if op not in ("=", "<>", "<", "<=", ">", ">="):
            raise TRCError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class TRCAnd(TRCFormula):
    operands: tuple[TRCFormula, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def children(self) -> tuple[TRCFormula, ...]:
        return self.operands


@dataclass(frozen=True)
class TRCOr(TRCFormula):
    operands: tuple[TRCFormula, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def children(self) -> tuple[TRCFormula, ...]:
        return self.operands


@dataclass(frozen=True)
class TRCNot(TRCFormula):
    operand: TRCFormula = TRCTrue()

    def children(self) -> tuple[TRCFormula, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class TRCImplies(TRCFormula):
    antecedent: TRCFormula = TRCTrue()
    consequent: TRCFormula = TRCTrue()

    def children(self) -> tuple[TRCFormula, ...]:
        return (self.antecedent, self.consequent)


@dataclass(frozen=True)
class TRCExists(TRCFormula):
    """∃ t1, ..., tn : body."""

    variables: tuple[TupleVar, ...]
    body: TRCFormula = TRCTrue()

    def __post_init__(self) -> None:
        variables = self.variables
        if isinstance(variables, TupleVar):
            variables = (variables,)
        object.__setattr__(self, "variables", tuple(variables))

    def children(self) -> tuple[TRCFormula, ...]:
        return (self.body,)


@dataclass(frozen=True)
class TRCForAll(TRCFormula):
    """∀ t1, ..., tn : body."""

    variables: tuple[TupleVar, ...]
    body: TRCFormula = TRCTrue()

    def __post_init__(self) -> None:
        variables = self.variables
        if isinstance(variables, TupleVar):
            variables = (variables,)
        object.__setattr__(self, "variables", tuple(variables))

    def children(self) -> tuple[TRCFormula, ...]:
        return (self.body,)


@dataclass(frozen=True)
class HeadItem:
    """One output column of a TRC query."""

    term: TRCTerm
    alias: str | None = None

    def output_name(self, position: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.term, AttrRef):
            return self.term.attr
        return f"col{position + 1}"


@dataclass(frozen=True)
class TRCQuery:
    """``{ head | body }``: a full TRC query."""

    head: tuple[HeadItem, ...]
    body: TRCFormula

    def __post_init__(self) -> None:
        object.__setattr__(self, "head", tuple(self.head))
        if not self.head:
            raise TRCError("a TRC query needs at least one head item")

    def head_variables(self) -> list[TupleVar]:
        """The tuple variables used in the head, in order, without duplicates."""
        out: list[TupleVar] = []
        for item in self.head:
            if isinstance(item.term, AttrRef) and item.term.var not in out:
                out.append(item.term.var)
        return out

    def to_text(self) -> str:
        from repro.trc.format import format_trc_query

        return format_trc_query(self)


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------

def free_tuple_variables(formula: TRCFormula) -> list[TupleVar]:
    """Free tuple variables of a formula, in first-occurrence order."""
    out: list[TupleVar] = []
    seen: set[str] = set()

    def visit(node: TRCFormula, bound: frozenset[str]) -> None:
        if isinstance(node, RelAtom):
            if node.var.name not in bound and node.var.name not in seen:
                seen.add(node.var.name)
                out.append(node.var)
        elif isinstance(node, TRCCompare):
            for term in (node.left, node.right):
                if isinstance(term, AttrRef) and term.var.name not in bound \
                        and term.var.name not in seen:
                    seen.add(term.var.name)
                    out.append(term.var)
        elif isinstance(node, (TRCExists, TRCForAll)):
            visit(node.body, bound | {v.name for v in node.variables})
        else:
            for child in node.children():
                visit(child, bound)

    visit(formula, frozenset())
    return out


def all_tuple_variables(formula: TRCFormula) -> list[TupleVar]:
    """Every tuple variable mentioned anywhere."""
    out: list[TupleVar] = []
    seen: set[str] = set()
    for node in formula.walk():
        candidates: list[TupleVar] = []
        if isinstance(node, RelAtom):
            candidates.append(node.var)
        elif isinstance(node, TRCCompare):
            candidates.extend(t.var for t in (node.left, node.right) if isinstance(t, AttrRef))
        elif isinstance(node, (TRCExists, TRCForAll)):
            candidates.extend(node.variables)
        for var in candidates:
            if var.name not in seen:
                seen.add(var.name)
                out.append(var)
    return out


def relation_atoms(formula: TRCFormula) -> list[RelAtom]:
    """All relation atoms in the formula."""
    return [node for node in formula.walk() if isinstance(node, RelAtom)]


def variable_ranges(formula: TRCFormula) -> dict[str, str]:
    """Map each tuple variable to the relation of its (first) relation atom.

    Safe TRC in the style used by the tutorial requires every tuple variable
    to range over exactly one relation; this function recovers that range.
    A variable used with two different relations raises :class:`TRCError`.
    """
    ranges: dict[str, str] = {}
    for atom in relation_atoms(formula):
        existing = ranges.get(atom.var.name)
        if existing is not None and existing.lower() != atom.relation.lower():
            raise TRCError(
                f"tuple variable {atom.var.name!r} ranges over both "
                f"{existing!r} and {atom.relation!r}"
            )
        ranges.setdefault(atom.var.name, atom.relation)
    return ranges


def conjunction(parts: list[TRCFormula]) -> TRCFormula:
    """AND together formulas, flattening nested conjunctions."""
    flat: list[TRCFormula] = []
    for part in parts:
        if isinstance(part, TRCAnd):
            flat.extend(part.operands)
        elif isinstance(part, TRCTrue) and part.value:
            continue
        else:
            flat.append(part)
    if not flat:
        return TRCTrue()
    if len(flat) == 1:
        return flat[0]
    return TRCAnd(tuple(flat))


def disjunction(parts: list[TRCFormula]) -> TRCFormula:
    """OR together formulas, flattening nested disjunctions."""
    flat: list[TRCFormula] = []
    for part in parts:
        if isinstance(part, TRCOr):
            flat.extend(part.operands)
        else:
            flat.append(part)
    if not flat:
        return TRCTrue(False)
    if len(flat) == 1:
        return flat[0]
    return TRCOr(tuple(flat))
