"""Formatting of TRC queries back to text (ASCII or Unicode logic symbols)."""

from __future__ import annotations

from repro.trc.ast import (
    AttrRef,
    ConstTerm,
    HeadItem,
    RelAtom,
    TRCAnd,
    TRCCompare,
    TRCError,
    TRCExists,
    TRCForAll,
    TRCFormula,
    TRCImplies,
    TRCNot,
    TRCOr,
    TRCQuery,
    TRCTerm,
    TRCTrue,
)

_UNICODE = {"and": " ∧ ", "or": " ∨ ", "not": "¬", "exists": "∃", "forall": "∀",
            "implies": " → "}
_ASCII = {"and": " and ", "or": " or ", "not": "not ", "exists": "exists ",
          "forall": "forall ", "implies": " -> "}


def format_term(term: TRCTerm) -> str:
    if isinstance(term, AttrRef):
        return f"{term.var.name}.{term.attr}"
    if isinstance(term, ConstTerm):
        if isinstance(term.value, str):
            escaped = term.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(term.value, bool):
            return "true" if term.value else "false"
        return str(term.value)
    raise TRCError(f"not a term: {term!r}")


def format_trc_formula(formula: TRCFormula, *, unicode: bool = False) -> str:
    symbols = _UNICODE if unicode else _ASCII

    def go(node: TRCFormula, parent: int = 0) -> str:
        if isinstance(node, TRCTrue):
            return "true" if node.value else "false"
        if isinstance(node, RelAtom):
            return f"{node.relation}({node.var.name})"
        if isinstance(node, TRCCompare):
            return f"{format_term(node.left)} {node.op} {format_term(node.right)}"
        if isinstance(node, TRCAnd):
            text = symbols["and"].join(go(o, 20) for o in node.operands)
            return f"({text})" if parent > 20 else text
        if isinstance(node, TRCOr):
            text = symbols["or"].join(go(o, 10) for o in node.operands)
            return f"({text})" if parent > 10 else text
        if isinstance(node, TRCNot):
            return f"{symbols['not']}({go(node.operand)})"
        if isinstance(node, TRCImplies):
            text = f"{go(node.antecedent, 5)}{symbols['implies']}{go(node.consequent, 5)}"
            return f"({text})" if parent > 5 else text
        if isinstance(node, (TRCExists, TRCForAll)):
            keyword = symbols["exists" if isinstance(node, TRCExists) else "forall"]
            names = ", ".join(v.name for v in node.variables)
            return f"{keyword}{names} ({go(node.body)})"
        raise TRCError(f"format: unhandled node {type(node).__name__}")

    return go(formula)


def format_head_item(item: HeadItem) -> str:
    text = format_term(item.term)
    if item.alias:
        text += f" as {item.alias}"
    return text


def format_trc_query(query: TRCQuery, *, unicode: bool = False) -> str:
    head = ", ".join(format_head_item(item) for item in query.head)
    body = format_trc_formula(query.body, unicode=unicode)
    return f"{{ {head} | {body} }}"
