"""Evaluation of safe TRC queries over a database.

Semantics: every tuple variable ranges over the tuples of exactly one
relation, determined by its relation atom (``Sailors(s)`` means "s ranges
over Sailors").  Quantifiers enumerate the rows of the quantified variable's
relation; the head enumerates the rows of the free variables' relations.
This is the classical *safe* evaluation and is what makes TRC equivalent to
RA — unrestricted TRC can express unsafe queries such as ``{ t | ¬R(t) }``,
which :mod:`repro.trc.safety` rejects.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Mapping

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema
from repro.data.types import DataType, infer_type
from repro.trc.ast import (
    AttrRef,
    ConstTerm,
    RelAtom,
    TRCAnd,
    TRCCompare,
    TRCError,
    TRCExists,
    TRCForAll,
    TRCFormula,
    TRCImplies,
    TRCNot,
    TRCOr,
    TRCQuery,
    TRCTerm,
    TRCTrue,
    TupleVar,
    free_tuple_variables,
    variable_ranges,
)

#: An environment maps tuple-variable names to (relation name, row dict).
Env = dict[str, tuple[str, dict[str, Any]]]


def _term_value(term: TRCTerm, env: Env) -> Any:
    if isinstance(term, ConstTerm):
        return term.value
    if isinstance(term, AttrRef):
        if term.var.name not in env:
            raise TRCError(f"unbound tuple variable {term.var.name!r}")
        _rel, row = env[term.var.name]
        key = term.attr.lower()
        for name, value in row.items():
            if name.lower() == key:
                return value
        # The variable is bound to a tuple of a relation that lacks this
        # attribute.  In a range-restricted formula this can only happen in a
        # branch that is already falsified by the relation atom, so the value
        # is irrelevant; returning a sentinel keeps comparisons False.
        return _UNDEFINED
    raise TRCError(f"not a TRC term: {term!r}")


class _Undefined:
    """Sentinel for attribute lookups on mistyped tuples; never equal to anything."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<undefined>"


_UNDEFINED = _Undefined()


def _compare(left: Any, op: str, right: Any) -> bool:
    if isinstance(left, _Undefined) or isinstance(right, _Undefined):
        return False
    if left is None or right is None:
        return False
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise TRCError(f"unknown comparison {op!r}")  # pragma: no cover


def _rows_of(db: Database, relation: str) -> list[dict[str, Any]]:
    rel = db.relation(relation)
    names = rel.attribute_names
    return [dict(zip(names, row)) for row in rel.distinct_rows()]


def eval_formula(formula: TRCFormula, db: Database, env: Env,
                 ranges: Mapping[str, str]) -> bool:
    """Evaluate a TRC formula under ``env``; quantified variables use ``ranges``."""
    if isinstance(formula, TRCTrue):
        return formula.value
    if isinstance(formula, RelAtom):
        binding = env.get(formula.var.name)
        if binding is None:
            raise TRCError(f"unbound tuple variable {formula.var.name!r}")
        bound_relation, _row = binding
        return bound_relation.lower() == formula.relation.lower()
    if isinstance(formula, TRCCompare):
        return _compare(_term_value(formula.left, env), formula.op,
                        _term_value(formula.right, env))
    if isinstance(formula, TRCAnd):
        return all(eval_formula(o, db, env, ranges) for o in formula.operands)
    if isinstance(formula, TRCOr):
        return any(eval_formula(o, db, env, ranges) for o in formula.operands)
    if isinstance(formula, TRCNot):
        return not eval_formula(formula.operand, db, env, ranges)
    if isinstance(formula, TRCImplies):
        return (not eval_formula(formula.antecedent, db, env, ranges)) or eval_formula(
            formula.consequent, db, env, ranges
        )
    if isinstance(formula, (TRCExists, TRCForAll)):
        return _eval_quantifier(formula, db, env, ranges)
    raise TRCError(f"eval_formula: unhandled node {type(formula).__name__}")


def _candidate_bindings(var: TupleVar, db: Database,
                        ranges: Mapping[str, str]) -> list[tuple[str, dict[str, Any]]]:
    relation = ranges.get(var.name)
    if relation is not None:
        return [(relation, row) for row in _rows_of(db, relation)]
    # No relation atom constrains this variable anywhere: it ranges over the
    # tuples of every relation (the "tuple-active domain").
    out: list[tuple[str, dict[str, Any]]] = []
    for rel in db:
        out.extend((rel.schema.name, row) for row in _rows_of(db, rel.schema.name))
    return out


def _eval_quantifier(formula: "TRCExists | TRCForAll", db: Database, env: Env,
                     ranges: Mapping[str, str]) -> bool:
    is_exists = isinstance(formula, TRCExists)
    variables = list(formula.variables)

    def recurse(index: int) -> bool:
        if index == len(variables):
            return eval_formula(formula.body, db, env, ranges)
        var = variables[index]
        for binding in _candidate_bindings(var, db, ranges):
            env[var.name] = binding
            result = recurse(index + 1)
            if is_exists and result:
                del env[var.name]
                return True
            if not is_exists and not result:
                del env[var.name]
                return False
        env.pop(var.name, None)
        return not is_exists

    return recurse(0)


def evaluate_trc(query: "TRCQuery | str", db: Database) -> Relation:
    """Evaluate a TRC query (AST or text) and return the result relation."""
    if isinstance(query, str):
        from repro.trc.parser import parse_trc

        query = parse_trc(query)

    from repro.trc.safety import has_positive_guard

    ranges = variable_ranges(query.body)
    free_vars = free_tuple_variables(query.body)
    head_vars = query.head_variables()
    for var in head_vars:
        if var.name not in ranges or not has_positive_guard(var, query.body):
            raise TRCError(
                f"head variable {var.name!r} is not bound by a positive relation atom "
                "(the query is unsafe)"
            )
    # Head variables must be free in the body.
    free_names = {v.name for v in free_vars}
    for var in head_vars:
        if var.name not in free_names:
            raise TRCError(f"head variable {var.name!r} is not free in the body")

    output_names = [item.output_name(i) for i, item in enumerate(query.head)]

    rows: list[tuple] = []
    iteration_vars = [v for v in free_vars if v.name in ranges]
    candidate_lists = [
        [(ranges[v.name], row) for row in _rows_of(db, ranges[v.name])]
        for v in iteration_vars
    ]
    for combination in product(*candidate_lists):
        env: Env = {v.name: binding for v, binding in zip(iteration_vars, combination)}
        if eval_formula(query.body, db, env, ranges):
            rows.append(tuple(_term_value(item.term, env) for item in query.head))

    rows = _dedupe(rows)
    return _build_relation(output_names, rows)


def evaluate_trc_boolean(formula: "TRCFormula | str", db: Database) -> bool:
    """Evaluate a closed TRC formula (a logical statement) to TRUE/FALSE."""
    if isinstance(formula, str):
        from repro.trc.parser import parse_trc_formula

        formula = parse_trc_formula(formula)
    free = free_tuple_variables(formula)
    if free:
        raise TRCError(
            f"boolean evaluation requires a sentence; free variables: "
            f"{', '.join(v.name for v in free)}"
        )
    ranges = variable_ranges(formula)
    return eval_formula(formula, db, {}, ranges)


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _build_relation(names: list[str], rows: list[tuple]) -> Relation:
    unique: list[str] = []
    counts: dict[str, int] = {}
    for name in names:
        if name in counts:
            counts[name] += 1
            unique.append(f"{name}_{counts[name]}")
        else:
            counts[name] = 1
            unique.append(name)
    attributes = []
    for i, name in enumerate(unique):
        dtype = DataType.STRING
        for row in rows:
            if row[i] is not None:
                try:
                    dtype = infer_type(row[i])
                except ValueError:
                    dtype = DataType.STRING
                break
        attributes.append(Attribute(name, dtype))
    return Relation(RelationSchema("result", tuple(attributes)), rows, validate=False)
