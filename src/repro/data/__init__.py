"""Relational data substrate: types, schemas, relations, databases.

Public API::

    from repro.data import (
        DataType, Attribute, RelationSchema, DatabaseSchema,
        Relation, Database, sailors_database,
    )
"""

from repro.data.database import Database, merge_databases
from repro.data.generate import database_family, random_database, random_relation
from repro.data.relation import (
    ColumnStore,
    Relation,
    RelationError,
    relation_from_rows,
    require_union_compatible,
    union_compatible,
)
from repro.data.sailors import (
    BOATS_SCHEMA,
    RESERVES_SCHEMA,
    SAILORS_DATABASE_SCHEMA,
    SAILORS_SCHEMA,
    empty_sailors_database,
    random_sailors_database,
    sailors_database,
)
from repro.data.sharded import DEFAULT_N_SHARDS, ShardedDatabase, reshard
from repro.data.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    SchemaError,
    make_schema,
)
from repro.data.types import (
    DataType,
    check_value,
    coerce_value,
    comparable,
    format_value,
    infer_type,
    is_null,
    parse_type,
)

__all__ = [
    "Attribute",
    "BOATS_SCHEMA",
    "ColumnStore",
    "DEFAULT_N_SHARDS",
    "Database",
    "DatabaseSchema",
    "DataType",
    "Relation",
    "RelationError",
    "RelationSchema",
    "RESERVES_SCHEMA",
    "SAILORS_DATABASE_SCHEMA",
    "SAILORS_SCHEMA",
    "SchemaError",
    "ShardedDatabase",
    "check_value",
    "coerce_value",
    "comparable",
    "database_family",
    "empty_sailors_database",
    "format_value",
    "infer_type",
    "is_null",
    "make_schema",
    "merge_databases",
    "parse_type",
    "random_database",
    "random_relation",
    "random_sailors_database",
    "relation_from_rows",
    "require_union_compatible",
    "reshard",
    "sailors_database",
    "union_compatible",
]
