"""Hash-partitioned storage: one logical database spread over N shards.

A :class:`ShardedDatabase` is the storage half of the scatter-gather
execution subsystem (:mod:`repro.engine.sharded` is the engine half).  Every
relation is hash-partitioned across ``n_shards`` shard
:class:`~repro.data.database.Database` instances on a chosen *shard key*
(a subset of its attributes, the first attribute by default), reusing
:meth:`~repro.data.relation.Relation.partition_by` — so the placement
discipline is exactly the one the partitioned parallel backend already
relies on: rows with equal key values always land in the same shard, and
each shard preserves the relative bag order of its rows.

The class subclasses :class:`~repro.data.database.Database` and exposes the
same read API (``relation``/``schema``/``__iter__``/``active_domain``/...),
so every consumer of a plain database — the five reference interpreters,
the lowering and optimizer layers, :class:`~repro.engine.stats.StatsCatalog`
— works unchanged: reads see a lazily *merged* view of each relation
(shard bags concatenated in shard order).  Merged relations are **frozen**;
mutating one raises, which is deliberate: row writes must go through the
routing write API (:meth:`add_row` / :meth:`add_rows`) so each row reaches
the shard that owns it.

Versioning: :attr:`version` stays a single monotonic counter (structure +
sum of shard versions) for compatibility, while :meth:`shard_versions`
exposes the per-shard vector the sharded serving layer keys its result
cache on — a write to one shard changes exactly one component.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
import threading
import weakref
from typing import Any, Iterable, Iterator, Mapping, NamedTuple, Sequence

from repro.data.database import Database
from repro.data.relation import ColumnStore, Relation, Row
from repro.data.schema import DatabaseSchema, SchemaError

#: Shard count used when none is given (matches the default benchmark grid).
DEFAULT_N_SHARDS = 4

#: Suffix under which shard-execution databases expose the *full* (merged)
#: copy of a broadcast relation, so a plan can read one relation both
#: shard-locally and replicated (e.g. a self-join with one scattered and
#: one broadcast occurrence) without a name clash.
BROADCAST_SUFFIX = "@broadcast"

ShardKeySpec = Mapping[str, "str | Sequence[str]"]


class ShardedDatabase(Database):
    """A database hash-partitioned across ``n_shards`` shard databases.

    Parameters
    ----------
    relations:
        Relations to partition in, exactly like :class:`Database`.
    n_shards:
        How many shards to spread each relation over (``>= 1``).
    shard_keys:
        Optional mapping ``relation name -> attribute or attribute list``
        naming the partition key per relation.  Relations not named fall
        back to their **first attribute** — for key-led schemas (``sid``,
        ``bid``, ...) that makes equi-joins on the leading key
        co-partitioned out of the box.  See the README's shard-key
        guidance for how to choose.
    """

    def __init__(self, relations: Iterable[Relation] = (), *,
                 n_shards: int = DEFAULT_N_SHARDS,
                 shard_keys: ShardKeySpec | None = None) -> None:
        if n_shards <= 0:
            raise ValueError(f"shard count must be positive, got {n_shards}")
        self.n_shards = n_shards
        self._shards: list[Database] = [Database() for _ in range(n_shards)]
        self._shard_keys: dict[str, tuple[str, ...]] = {}
        self._requested_keys: dict[str, tuple[str, ...]] = {}
        for name, attrs in (shard_keys or {}).items():
            key = (attrs,) if isinstance(attrs, str) else tuple(attrs)
            if not key:
                raise ValueError(f"empty shard key for relation {name!r}")
            self._requested_keys[name.lower()] = key
        #: name -> (shard-version vector at build time, frozen merged view).
        self._merged: dict[str, tuple[tuple[int, ...], Relation]] = {}
        #: name -> (merged view it aliases, frozen broadcast-named copy).
        self._broadcast: dict[str, tuple[Relation, Relation]] = {}
        #: Lazily created shared-memory page publisher (process backend).
        self._publisher: SharedPagePublisher | None = None
        super().__init__(relations)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_database(cls, db: Database, n_shards: int = DEFAULT_N_SHARDS,
                      shard_keys: ShardKeySpec | None = None
                      ) -> "ShardedDatabase":
        """Partition an existing database's relations across ``n_shards``."""
        return cls(iter(db), n_shards=n_shards, shard_keys=shard_keys)

    def add_relation(self, relation: Relation) -> None:
        """Partition a relation across the shards (add or replace).

        The shard key is the one requested at construction for this
        relation name, else the relation's first attribute.  Raises
        :class:`~repro.data.schema.SchemaError` if a requested key names an
        attribute the relation does not have.
        """
        key = relation.schema.name.lower()
        attrs = self._requested_keys.get(key)
        if attrs is None:
            # Default: the first attribute.  A zero-arity relation (the
            # calculi's TRUE/FALSE tables) has no attributes to hash on;
            # the empty key sends every row to one shard, which is exact.
            attrs = (relation.schema.attribute_names[:1])
        for attr in attrs:  # surfaces unknown attributes as SchemaError
            relation.schema.index_of(attr)
        parts = relation.partition_by(attrs, self.n_shards)
        for shard, part in zip(self._shards, parts):
            shard.add_relation(part)
        self._shard_keys[key] = tuple(attrs)
        self._merged.pop(key, None)
        self._broadcast.pop(key, None)
        self._structure_version += 1

    def drop_relation(self, name: str) -> None:
        key = name.lower()
        if key not in self._shard_keys:
            raise SchemaError(f"database has no relation {name!r}")
        for shard in self._shards:
            shard.drop_relation(name)
        del self._shard_keys[key]
        self._merged.pop(key, None)
        self._broadcast.pop(key, None)
        self._relations.pop(key, None)
        self._structure_version += 1

    # -- versions ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic database version over all shards (see ``Database``)."""
        return self._structure_version + sum(s.version for s in self._shards)

    def shard_versions(self) -> tuple[int, ...]:
        """The per-shard version vector (one component per shard).

        A routed write bumps exactly one component, which is what lets the
        sharded serving layer key its result cache on the vector instead of
        a global counter (same invalidation, finer diagnostics).
        """
        return tuple(shard.version for shard in self._shards)

    # -- shared-memory page lifecycle --------------------------------------

    def page_publisher(self) -> "SharedPagePublisher":
        """The database's shared-memory page publisher (created lazily).

        The ``"process"`` backend publishes each shard's relations through
        this object; owning it here ties segment lifetime to the database,
        so :meth:`close` (or garbage collection of the database) unlinks
        every segment it ever published.
        """
        if self._publisher is None:
            self._publisher = SharedPagePublisher()
        return self._publisher

    def close(self) -> None:
        """Release OS resources: unlink all published page segments.

        Idempotent; the database remains readable afterwards (a later
        process-backend execution simply republishes).
        """
        if self._publisher is not None:
            self._publisher.close()
            self._publisher = None

    # -- sharding topology -------------------------------------------------

    def shard(self, index: int) -> Database:
        """Shard ``index`` as a plain database (shard-local relations)."""
        return self._shards[index]

    def shard_key(self, relation: str) -> tuple[str, ...]:
        """The attributes a relation is hash-partitioned on."""
        key = relation.lower()
        if key not in self._shard_keys:
            raise SchemaError(f"database has no relation {relation!r}")
        return self._shard_keys[key]

    def shard_of_value(self, key_value: Any) -> int:
        """The shard owning one shard-key value (raw scalar or tuple).

        Single-attribute keys hash the raw value, multi-attribute keys the
        value tuple — the same convention as
        :meth:`Relation.partition_by` and the executors' hash tables.
        """
        return hash(key_value) % self.n_shards

    def shard_of_row(self, relation: str,
                     row: Sequence[Any] | Mapping[str, Any]) -> int:
        """The shard a row of ``relation`` belongs on (by its key values)."""
        rel = relation.lower()
        schema = self._shards[0].relation(rel).schema
        if isinstance(row, Mapping):
            values = tuple(row[name] for name in schema.attribute_names)
        else:
            values = tuple(row)
        positions = [schema.index_of(a) for a in self.shard_key(rel)]
        if len(positions) == 1:
            return self.shard_of_value(values[positions[0]])
        return self.shard_of_value(tuple(values[p] for p in positions))

    # -- routed writes -----------------------------------------------------

    def add_row(self, relation: str, row: Sequence[Any] | Mapping[str, Any],
                *, validate: bool = True) -> int:
        """Append one row to the shard that owns it; returns that shard."""
        index = self.shard_of_row(relation, row)
        self._shards[index].relation(relation).add(row, validate=validate)
        return index

    def add_rows(self, relation: str,
                 rows: Iterable[Sequence[Any] | Mapping[str, Any]], *,
                 validate: bool = True) -> dict[int, int]:
        """Append a batch, routing each row to its owning shard.

        The batch is all-or-nothing across shards, like
        :meth:`Relation.add_rows` is within one relation: every row is
        routed and normalized/validated *before* any shard is touched, so
        a mid-batch failure leaves no shard with a partial write.  Returns
        ``{shard index: rows appended}``.  Each touched shard absorbs its
        sub-batch as **one** version bump, so the shard-version vector
        moves by at most one per shard per batch.
        """
        staged: dict[int, list[Row]] = {}
        for row in rows:
            index = self.shard_of_row(relation, row)
            target = self._shards[index].relation(relation)
            staged.setdefault(index, []).append(
                target._normalize_row(row, validate=validate))
        for index, bucket in staged.items():
            # Already normalized and validated: append without re-checking.
            self._shards[index].relation(relation).add_rows(
                bucket, validate=False)
        return {index: len(bucket) for index, bucket in staged.items()}

    # -- merged read view --------------------------------------------------

    def _merged_relation(self, key: str) -> Relation:
        """The frozen merged view of one relation (cached per shard state)."""
        versions = tuple(s.relation(key).version for s in self._shards)
        cached = self._merged.get(key)
        if cached is not None and cached[0] == versions:
            return cached[1]
        parts = [shard.relation(key) for shard in self._shards]
        rows: list[Row] = []
        for part in parts:
            rows.extend(part.rows())
        merged = Relation(parts[0].schema, rows, validate=False)
        # Version-tagged consumers (table statistics, plan-node key indexes)
        # compare the relation's version, not its identity: stamp the merged
        # view with the monotonic sum of shard versions so a rebuilt view
        # never masquerades as the state an earlier profile described.
        merged._version = sum(versions)
        merged.freeze()
        self._merged[key] = (versions, merged)
        self._relations[key] = merged
        return merged

    def broadcast_relation(self, name: str) -> Relation:
        """The merged view under its ``name@broadcast`` alias (cached).

        Shard-execution databases register this alias for relations a plan
        reads replicated, so the same relation can also appear shard-local
        under its plain name.  The alias is frozen and version-stamped like
        the merged view, and cached against the merged view's identity so
        its lazily built executor caches (column store, key indexes)
        survive across executions until a write rebuilds the merged view.
        """
        key = name.lower()
        merged = self.relation(key)
        cached = self._broadcast.get(key)
        if cached is not None and cached[0] is merged:
            return cached[1]
        alias = Relation(
            merged.schema.renamed(merged.schema.name + BROADCAST_SUFFIX),
            merged.rows(), validate=False)
        alias._version = merged.version
        alias.freeze()
        self._broadcast[key] = (merged, alias)
        return alias

    def _refresh_all(self) -> None:
        for key in self._shard_keys:
            self._merged_relation(key)

    def relation(self, name: str) -> Relation:
        """The merged (frozen) view of one relation, all shards combined.

        Mutating the returned relation raises
        :class:`~repro.data.relation.RelationError`; writes go through the
        routing API (:meth:`add_row` / :meth:`add_rows`) instead so each
        row reaches its owning shard.
        """
        key = name.lower()
        if key not in self._shard_keys:
            raise SchemaError(f"database has no relation {name!r}")
        return self._merged_relation(key)

    def relation_version(self, name: str) -> int:
        """The merged view's version without building the merged view.

        The merged relation is stamped with the sum of per-shard versions
        (see :meth:`_merged_relation`), so version-tagged consumers — view
        anchors, cache stamps — can probe staleness in O(shards) instead
        of paying a full row copy per check.
        """
        key = name.lower()
        if key not in self._shard_keys:
            raise SchemaError(f"database has no relation {name!r}")
        return sum(s.relation(key).version for s in self._shards)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._shard_keys

    def __iter__(self) -> Iterator[Relation]:
        self._refresh_all()
        return iter(self._relations[key] for key in self._shard_keys)

    @property
    def schema(self) -> DatabaseSchema:
        return DatabaseSchema(tuple(
            self._shards[0].relation(key).schema for key in self._shard_keys))

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._shards[0].relation(key).schema.name
                     for key in self._shard_keys)

    def active_domain(self) -> set[Any]:
        self._refresh_all()
        return super().active_domain()

    def total_rows(self) -> int:
        return sum(len(shard.relation(key))
                   for key in self._shard_keys for shard in self._shards)

    def summary(self) -> str:
        self._refresh_all()
        return super().summary()

    def copy(self) -> "ShardedDatabase":
        """A sharded copy: same topology, new relation objects per shard."""
        self._refresh_all()
        return ShardedDatabase(
            (Relation(rel.schema, rel.rows(), validate=False)
             for rel in self),
            n_shards=self.n_shards,
            shard_keys={name: key for name, key in self._shard_keys.items()},
        )

    def shard_summary(self) -> str:
        """One line per relation: shard key and per-shard cardinalities."""
        lines = []
        for key, attrs in self._shard_keys.items():
            name = self._shards[0].relation(key).schema.name
            counts = [len(shard.relation(key)) for shard in self._shards]
            lines.append(f"{name} by ({', '.join(attrs)}): {counts}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ShardedDatabase({', '.join(self.relation_names)}; "
                f"{self.n_shards} shards)")


# ---------------------------------------------------------------------------
# Shared-memory column-page publication (the "process" backend's transport)
# ---------------------------------------------------------------------------

#: Page-segment names are ``repro-pg-{publisher pid}-{sequence}``: the pid
#: embeds ownership so :func:`reap_stale_segments` can audit ``/dev/shm``
#: for segments whose publisher died without unlinking them.
SEGMENT_PREFIX = "repro-pg"

#: Segment layout: ``u64 header length | pickled (schema, version) | pages``
#: where ``pages`` is :meth:`ColumnStore.encode_pages` output.
_SEGMENT_HEADER = struct.Struct("<Q")


class PageSegment(NamedTuple):
    """One published relation: the manifest entry workers attach by."""

    name: str    #: shared-memory segment name
    nbytes: int  #: payload length (the OS may round the mapping up)
    version: int #: relation version the payload snapshots


#: Process-wide segment sequence: names must be unique across *all*
#: publishers in this process (several databases can publish concurrently).
_segment_seq = itertools.count()


def _release_segments(slots: dict) -> None:
    """Close and unlink every published segment (finalizer-safe)."""
    for entry in list(slots.values()):
        shm = entry[3]
        try:
            shm.close()
            shm.unlink()
        except OSError:
            pass
    slots.clear()


class SharedPagePublisher:
    """Publishes relations as shared-memory column-page segments.

    One *slot* (a caller-chosen string such as ``"2/part"`` for shard 2's
    ``part`` partition) holds at most one live segment.  :meth:`publish`
    re-encodes only when the slot's relation object or version changed —
    the republish-on-write discipline the process backend's shard-version
    vector check relies on — and unlinks the superseded segment (attached
    workers keep their mapping; only the name goes away).

    Every segment is unlinked when :meth:`close` runs, when the publisher
    is garbage collected, or at interpreter exit (``weakref.finalize``
    registers an exit hook), so a cleanly exiting process leaves
    ``/dev/shm`` empty.  :func:`reap_stale_segments` covers crashes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: slot -> (id(relation), weakref, version, SharedMemory, PageSegment)
        self._slots: dict[str, tuple] = {}
        self._finalizer = weakref.finalize(
            self, _release_segments, self._slots)

    def publish(self, slot: str, relation: Relation) -> PageSegment:
        """Publish (or reuse) the segment for ``slot``'s current relation."""
        from multiprocessing import shared_memory

        with self._lock:
            if not self._finalizer.alive:
                raise RuntimeError("page publisher is closed")
            entry = self._slots.get(slot)
            if entry is not None and entry[0] == id(relation) \
                    and entry[1]() is relation \
                    and entry[2] == relation.version:
                return entry[4]
            # Snapshot, encode, recheck: a concurrent writer bumping the
            # version mid-encode could tear the column arrays, so retry
            # until the version sits still across the whole encoding.
            while True:
                version = relation.version
                header = pickle.dumps((relation.schema, version),
                                      protocol=pickle.HIGHEST_PROTOCOL)
                pages = relation.column_store().encode_pages()
                if relation.version == version:
                    break
            payload = b"".join((_SEGMENT_HEADER.pack(len(header)), header,
                                pages))
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_segment_seq)}"
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=len(payload))
            shm.buf[:len(payload)] = payload
            segment = PageSegment(shm.name, len(payload), version)
            if entry is not None:
                old = entry[3]
                try:
                    old.close()
                    old.unlink()
                except OSError:
                    pass
            self._slots[slot] = (id(relation), weakref.ref(relation),
                                 version, shm, segment)
            return segment

    def active_segments(self) -> list[str]:
        """Names of the currently linked segments (diagnostics/tests)."""
        with self._lock:
            return [entry[4].name for entry in self._slots.values()]

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Unlink every published segment.  Idempotent."""
        with self._lock:
            self._finalizer()  # runs _release_segments at most once


def attach_segment(segment: PageSegment) -> "tuple[Relation, Any]":
    """Attach a published segment and rebuild its relation (worker side).

    Returns ``(relation, shm)``; the caller must keep ``shm`` mapped for
    the relation's lifetime (the rebuilt column store carries zero-copy
    views into the mapping) and call :func:`detach_segment` when done.
    """
    from multiprocessing import shared_memory

    # No attach-side resource-tracker fiddling: worker processes (fork or
    # spawn) share the publisher's tracker, where re-registering an already
    # tracked name is a no-op — the publisher's own unlink stays the single
    # authoritative unregistration.  (An *unrelated* process attaching here
    # would register with its own tracker and unlink the segment at its
    # exit; only publisher-descendant processes may attach.)
    shm = shared_memory.SharedMemory(name=segment.name)
    view = memoryview(shm.buf)[:segment.nbytes]
    (header_len,) = _SEGMENT_HEADER.unpack_from(view, 0)
    body = _SEGMENT_HEADER.size
    schema, version = pickle.loads(bytes(view[body:body + header_len]))
    store = ColumnStore.decode_pages(view[body + header_len:])
    return Relation.from_column_store(schema, store, version=version), shm


def detach_segment(shm: Any) -> None:
    """Close an attached mapping, tolerating still-exported page views."""
    try:
        shm.close()
    except BufferError:
        # Zero-copy page views still reference the mapping; it is released
        # when they are collected (or with the process).
        pass


def reap_stale_segments() -> list[str]:
    """Unlink page segments whose publishing process is dead.

    Audits ``/dev/shm`` for ``repro-pg-{pid}-*`` names and unlinks those
    whose pid no longer exists — segments leaked by a publisher that
    crashed before its exit hook could run.  The process backend calls
    this at pool startup.  Returns the reaped segment names.
    """
    reaped: list[str] = []
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return reaped
    prefix = SEGMENT_PREFIX + "-"
    for fname in names:
        if not fname.startswith(prefix):
            continue
        try:
            pid = int(fname[len(prefix):].split("-", 1)[0])
        except ValueError:
            continue
        if pid == os.getpid():
            continue  # our own live segments
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            try:
                os.unlink(os.path.join("/dev/shm", fname))
                reaped.append(fname)
            except OSError:
                continue
        except OSError:
            continue  # alive (or not ours to signal): leave it
    return reaped


def reshard(db: Database, n_shards: int,
            shard_keys: ShardKeySpec | None = None) -> ShardedDatabase:
    """Re-partition any database (sharded or not) into ``n_shards`` shards.

    The one-call entry point for rebalancing experiments: reads the merged
    view of ``db`` and hash-partitions it afresh.  Carried shard keys from
    an existing :class:`ShardedDatabase` are preserved unless overridden —
    including keys *requested* for relations not currently present, so a
    relation re-added after the reshard keeps its intended key.

    This function only builds data; a serving tier resharding under live
    traffic should go through
    :meth:`~repro.core.sharded_service.ShardedQueryService.reshard`, which
    wraps this in the write lock, bumps the cache generation epoch, and
    rematerializes registered views against the new layout.
    """
    keys: dict[str, str | Sequence[str]] = {}
    if isinstance(db, ShardedDatabase):
        keys.update(db._requested_keys)
        keys.update(db._shard_keys)
    if shard_keys:
        keys.update({name.lower(): attrs for name, attrs in shard_keys.items()})
    return ShardedDatabase(
        (Relation(rel.schema, rel.rows(), validate=False) for rel in db),
        n_shards=n_shards, shard_keys=keys)


__all__ = [
    "BROADCAST_SUFFIX",
    "DEFAULT_N_SHARDS",
    "PageSegment",
    "SEGMENT_PREFIX",
    "SharedPagePublisher",
    "ShardedDatabase",
    "attach_segment",
    "detach_segment",
    "reap_stale_segments",
    "reshard",
]
