"""Value types used by the relational substrate.

The engine supports four scalar types (integers, floats, strings, booleans)
plus SQL-style NULL, which is represented by Python ``None``.  Three-valued
logic for NULL comparisons lives in :mod:`repro.expr.eval`; this module only
deals with declaring, validating, and coercing values.
"""

from __future__ import annotations

import enum
from typing import Any


class DataType(enum.Enum):
    """Scalar data types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Mapping from human-friendly aliases to :class:`DataType`.
_TYPE_ALIASES = {
    "int": DataType.INT,
    "integer": DataType.INT,
    "float": DataType.FLOAT,
    "real": DataType.FLOAT,
    "double": DataType.FLOAT,
    "str": DataType.STRING,
    "string": DataType.STRING,
    "text": DataType.STRING,
    "varchar": DataType.STRING,
    "bool": DataType.BOOL,
    "boolean": DataType.BOOL,
}


def parse_type(name: "str | DataType") -> DataType:
    """Return the :class:`DataType` for ``name``.

    Accepts a :class:`DataType` (returned unchanged) or any of the usual
    SQL-ish aliases (``"integer"``, ``"varchar"``, ...).

    >>> parse_type("varchar")
    <DataType.STRING: 'string'>
    """
    if isinstance(name, DataType):
        return name
    key = str(name).strip().lower()
    if key not in _TYPE_ALIASES:
        raise ValueError(f"unknown data type: {name!r}")
    return _TYPE_ALIASES[key]


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    ``bool`` is checked before ``int`` because ``bool`` is a subclass of
    ``int`` in Python.
    """
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    raise ValueError(f"cannot infer data type of {value!r}")


def is_null(value: Any) -> bool:
    """Return True iff ``value`` is the SQL NULL marker."""
    return value is None


def check_value(value: Any, dtype: DataType, *, allow_null: bool = True) -> bool:
    """Return True iff ``value`` is a legal instance of ``dtype``.

    NULL (``None``) is legal for every type unless ``allow_null`` is False.
    Integers are accepted where floats are expected (SQL numeric widening).
    """
    if value is None:
        return allow_null
    if dtype is DataType.BOOL:
        return isinstance(value, bool)
    if dtype is DataType.INT:
        return isinstance(value, int) and not isinstance(value, bool)
    if dtype is DataType.FLOAT:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if dtype is DataType.STRING:
        return isinstance(value, str)
    raise AssertionError(f"unhandled dtype {dtype}")  # pragma: no cover


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` to ``dtype``, raising ``ValueError`` if impossible.

    This is a *lenient* coercion used when loading external data: numeric
    strings become numbers, numbers become strings, 0/1 become booleans.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.BOOL:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)) and value in (0, 1):
                return bool(value)
            if isinstance(value, str) and value.lower() in ("true", "false"):
                return value.lower() == "true"
            raise ValueError
        if dtype is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            return int(value)
        if dtype is DataType.FLOAT:
            return float(value)
        if dtype is DataType.STRING:
            return str(value)
    except (TypeError, ValueError):
        pass
    raise ValueError(f"cannot coerce {value!r} to {dtype}")


def format_value(value: Any) -> str:
    """Render a value the way it appears in query text and diagrams."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return str(value)


def comparable(a: Any, b: Any) -> bool:
    """Return True iff two non-null values can be compared with <, =, >."""
    if a is None or b is None:
        return False
    numeric = (int, float)
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, numeric) and isinstance(b, numeric):
        return True
    return isinstance(a, str) and isinstance(b, str)
