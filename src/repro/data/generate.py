"""Random database generation for arbitrary schemas.

Cross-language equivalence (experiment T1) is checked empirically: two query
representations are declared equivalent on a database if they return the same
set of tuples.  To make that check meaningful we evaluate on many random
instances of the query's schema; this module produces those instances.
"""

from __future__ import annotations

import random
import string
from typing import Any, Mapping, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema
from repro.data.types import DataType


def _random_value(rng: random.Random, dtype: DataType, pool: Sequence[Any] | None) -> Any:
    if pool:
        return rng.choice(list(pool))
    if dtype is DataType.INT:
        return rng.randint(0, 20)
    if dtype is DataType.FLOAT:
        return round(rng.uniform(0, 100), 1)
    if dtype is DataType.BOOL:
        return rng.choice([True, False])
    return "".join(rng.choice(string.ascii_lowercase) for _ in range(3))


def random_relation(
    schema: RelationSchema,
    *,
    n_rows: int,
    seed: int = 0,
    value_pools: Mapping[str, Sequence[Any]] | None = None,
) -> Relation:
    """Generate a relation with ``n_rows`` random rows.

    ``value_pools`` maps attribute names to the values they may take; shared
    pools across relations is what makes joins selective but non-empty.
    """
    rng = random.Random(seed)
    pools = value_pools or {}
    rows = []
    for _ in range(n_rows):
        row = tuple(
            _random_value(rng, attr.dtype, pools.get(attr.name))
            for attr in schema.attributes
        )
        rows.append(row)
    return Relation(schema, rows, validate=False)


def random_database(
    schema: DatabaseSchema,
    *,
    rows_per_relation: int | Mapping[str, int] = 8,
    seed: int = 0,
    value_pools: Mapping[str, Sequence[Any]] | None = None,
) -> Database:
    """Generate a random instance of ``schema``.

    By default, attributes with the same name in different relations share a
    small value pool so that equi-joins on them succeed with useful
    probability.  Explicit ``value_pools`` override the defaults.
    """
    rng = random.Random(seed)
    pools: dict[str, Sequence[Any]] = {}
    for rel in schema:
        for attr in rel.attributes:
            if attr.name in pools:
                continue
            if attr.dtype is DataType.INT:
                pools[attr.name] = [rng.randint(0, 30) for _ in range(6)]
            elif attr.dtype is DataType.STRING:
                pools[attr.name] = [
                    "".join(rng.choice(string.ascii_lowercase) for _ in range(3))
                    for _ in range(5)
                ]
            elif attr.dtype is DataType.FLOAT:
                pools[attr.name] = [round(rng.uniform(0, 60), 1) for _ in range(6)]
            else:
                pools[attr.name] = [True, False]
    if value_pools:
        pools.update(value_pools)

    relations = []
    for i, rel_schema in enumerate(schema):
        if isinstance(rows_per_relation, Mapping):
            n_rows = rows_per_relation.get(rel_schema.name, 8)
        else:
            n_rows = rows_per_relation
        relations.append(
            random_relation(
                rel_schema, n_rows=n_rows, seed=seed * 1000 + i, value_pools=pools
            )
        )
    return Database(relations)


def database_family(
    schema: DatabaseSchema,
    *,
    count: int = 10,
    rows_per_relation: int = 8,
    seed: int = 0,
) -> list[Database]:
    """A reproducible family of random instances for equivalence testing."""
    return [
        random_database(schema, rows_per_relation=rows_per_relation, seed=seed + i)
        for i in range(count)
    ]
