"""Relation and database schemas.

A :class:`RelationSchema` is an ordered list of named, typed attributes; a
:class:`DatabaseSchema` is a named collection of relation schemas.  Schemas
are immutable value objects: all mutating operations return new schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.data.types import DataType, parse_type


class SchemaError(Exception):
    """Raised for malformed schemas or schema lookups that fail."""


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    dtype: DataType = DataType.STRING

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "dtype", parse_type(self.dtype))

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name."""
        return Attribute(new_name, self.dtype)

    def __str__(self) -> str:
        return f"{self.name}:{self.dtype}"


@dataclass(frozen=True)
class RelationSchema:
    """An ordered schema ``R(a1:t1, ..., an:tn)``."""

    name: str
    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        attrs = tuple(
            a if isinstance(a, Attribute) else Attribute(a[0], parse_type(a[1]))
            for a in self.attributes
        )
        object.__setattr__(self, "attributes", attrs)
        seen: set[str] = set()
        for attr in attrs:
            if attr.name in seen:
                raise SchemaError(f"duplicate attribute {attr.name!r} in relation {self.name!r}")
            seen.add(attr.name)

    # -- basic accessors -------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(a.name for a in self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: object) -> bool:
        return any(a.name == name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def index_of(self, name: str) -> int:
        """Return the position of attribute ``name``."""
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def dtype_of(self, name: str) -> DataType:
        """Return the type of attribute ``name``."""
        return self.attribute(name).dtype

    # -- derivation ------------------------------------------------------
    def renamed(self, new_name: str) -> "RelationSchema":
        """Return a copy with a different relation name."""
        return RelationSchema(new_name, self.attributes)

    def rename_attributes(self, mapping: Mapping[str, str]) -> "RelationSchema":
        """Return a copy where attributes are renamed per ``mapping``."""
        new_attrs = tuple(
            a.renamed(mapping.get(a.name, a.name)) for a in self.attributes
        )
        return RelationSchema(self.name, new_attrs)

    def project(self, names: Sequence[str], new_name: str | None = None) -> "RelationSchema":
        """Return the schema of the projection onto ``names`` (in that order)."""
        attrs = tuple(self.attribute(n) for n in names)
        return RelationSchema(new_name or self.name, attrs)

    def concat(self, other: "RelationSchema", new_name: str | None = None) -> "RelationSchema":
        """Return the schema of the cartesian product with ``other``.

        Attribute name collisions are resolved by prefixing both sides with
        their relation names (``R.a``), mirroring common RA conventions.
        """
        left_names = set(self.attribute_names)
        right_names = set(other.attribute_names)
        clash = left_names & right_names
        left_attrs = [
            a.renamed(f"{self.name}.{a.name}") if a.name in clash else a
            for a in self.attributes
        ]
        right_attrs = [
            a.renamed(f"{other.name}.{a.name}") if a.name in clash else a
            for a in other.attributes
        ]
        return RelationSchema(new_name or f"{self.name}_x_{other.name}",
                              tuple(left_attrs + right_attrs))

    def is_union_compatible(self, other: "RelationSchema") -> bool:
        """True iff the two schemas have the same arity and column types."""
        if self.arity != other.arity:
            return False
        return all(a.dtype == b.dtype for a, b in zip(self.attributes, other.attributes))

    def __str__(self) -> str:
        cols = ", ".join(str(a) for a in self.attributes)
        return f"{self.name}({cols})"


def make_schema(name: str, columns: Iterable[tuple[str, str] | Attribute]) -> RelationSchema:
    """Convenience constructor: ``make_schema("R", [("a", "int"), ...])``."""
    attrs = tuple(
        c if isinstance(c, Attribute) else Attribute(c[0], parse_type(c[1]))
        for c in columns
    )
    return RelationSchema(name, attrs)


@dataclass(frozen=True)
class DatabaseSchema:
    """A collection of relation schemas keyed by relation name."""

    relations: tuple[RelationSchema, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for rel in self.relations:
            if rel.name in seen:
                raise SchemaError(f"duplicate relation {rel.name!r} in database schema")
            seen.add(rel.name)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.relations)

    def __contains__(self, name: object) -> bool:
        return any(r.name == name for r in self.relations)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations)

    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation ``name`` (case-sensitive first, then insensitive)."""
        for rel in self.relations:
            if rel.name == name:
                return rel
        lowered = name.lower()
        for rel in self.relations:
            if rel.name.lower() == lowered:
                return rel
        raise SchemaError(f"database schema has no relation {name!r}")

    def with_relation(self, schema: RelationSchema) -> "DatabaseSchema":
        """Return a new database schema with ``schema`` added or replaced."""
        kept = tuple(r for r in self.relations if r.name != schema.name)
        return DatabaseSchema(kept + (schema,))

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.relations)
