"""In-memory relations with set and bag semantics.

A :class:`Relation` couples a :class:`~repro.data.schema.RelationSchema` with
a multiset of rows (tuples of Python values in schema order).  Relational
Algebra and the calculi operate on *sets* of tuples; SQL without DISTINCT
operates on *bags*.  A relation therefore carries all duplicate rows and
exposes both views: :meth:`rows` (bag) and :meth:`distinct_rows` (set).
"""

from __future__ import annotations

import pickle
import struct
from array import array
from collections import Counter, deque
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.data.schema import Attribute, RelationSchema
from repro.data.types import check_value, format_value

Row = tuple[Any, ...]


class RelationError(Exception):
    """Raised for operations on incompatible relations or malformed rows."""


# ---------------------------------------------------------------------------
# Column pages: a compact, same-host serialization of a ColumnStore
# ---------------------------------------------------------------------------
#
# The ``"process"`` backend publishes each shard's columns once into a
# ``multiprocessing.shared_memory`` segment; workers attach read-only and
# decode.  The format is one *page* per column:
#
#     header : MAGIC(4) | n_rows u64 | n_cols u32
#     column : name_len u16 | name utf8
#              kind (1 byte)
#              mask_len u64 | payload_len u64
#              mask bytes  (n_rows bytes, 1 = NULL; empty when no NULLs)
#              payload bytes
#
# Kinds: ``q`` int64, ``d`` float64 (both native-endian machine arrays —
# pages are a same-host IPC format, not a portable file format), ``B``
# bool bytes, ``D`` dictionary-encoded strings (a sorted dictionary of the
# distinct values stored once — offsets + one UTF-8 blob — followed by an
# int32/int64 code per row, ``-1`` at NULL positions), ``E``
# dictionary-encoded low-cardinality mixed columns (first-occurrence
# pickled dictionary + int32 codes), ``s`` plain UTF-8 blob + ``q``
# offsets (legacy string layout, still decoded), ``z`` all-NULL, ``o``
# pickled list (mixed types, out-of-range ints — the exact fallback).
# Decoding reproduces the original Python values bit-for-bit, which is what
# lets the differential suites pin worker results against in-process ones.
#
# ``D`` is what makes string joins kernel-resident: the dictionary is
# sorted, so codes are order-preserving, and the ``process`` backend ships
# codes across shared memory instead of re-materializing every string in
# every worker.  The kernel layer views the code array zero-copy.

_PAGE_MAGIC = b"RPG1"
_PAGE_HEADER = struct.Struct("<QI")
_PAGE_NAME = struct.Struct("<H")
_PAGE_COLUMN = struct.Struct("<cQQ")
_DICT_HEADER = struct.Struct("<QB")   # "D": n_dict, code width (4 or 8)
_EDICT_HEADER = struct.Struct("<QQ")  # "E": n_dict, pickled-dictionary length
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

#: Mixed ("o") columns switch to the "E" dictionary layout when the
#: distinct count is at most this fraction of the rows (and hashable).
_MIXED_DICT_FRACTION = 4


def _classify_column(values: Sequence[Any]) -> tuple[str, bool]:
    """``(kind, has_null)`` for one column; ``o`` when no compact kind fits."""
    kind = ""
    has_null = False
    for v in values:
        if v is None:
            has_null = True
            continue
        t = type(v)
        if t is bool:
            k = "B"
        elif t is int:
            k = "q" if _INT64_MIN <= v <= _INT64_MAX else "o"
        elif t is float:
            k = "d"
        elif t is str:
            k = "s"
        else:
            k = "o"
        if k == "o":
            return "o", has_null
        if not kind:
            kind = k
        elif kind != k:
            return "o", has_null
    return kind or "z", has_null


def _encode_str_dictionary(values: Sequence[Any],
                           mask: bytes) -> tuple[bytes, bytes, bytes]:
    """``D`` layout: sorted distinct values once + one code per row.

    The dictionary holds only non-NULL values and is sorted ascending
    (Python ``str`` order == numpy ``<U`` order — both compare by code
    point), so codes are order-preserving: kernels can evaluate range
    predicates and equi-joins directly on the code array.  NULL rows get
    code ``-1`` in addition to the usual mask byte.
    """
    dictionary = sorted({v for v in values if v is not None})
    code_of = {v: i for i, v in enumerate(dictionary)}
    width = 4 if len(dictionary) < 2**31 else 8
    codes = array("i" if width == 4 else "q",
                  [-1 if v is None else code_of[v] for v in values])
    parts = [v.encode("utf-8") for v in dictionary]
    offsets = array("q", [0] * (len(parts) + 1))
    total = 0
    for i, part in enumerate(parts):
        total += len(part)
        offsets[i + 1] = total
    payload = (_DICT_HEADER.pack(len(dictionary), width)
               + offsets.tobytes() + b"".join(parts) + codes.tobytes())
    return b"D", mask, payload


def _encode_mixed_dictionary(
        values: Sequence[Any]) -> tuple[bytes, bytes, bytes] | None:
    """``E`` layout for low-cardinality mixed columns, or ``None``.

    Dictionary keys are ``(type, value)`` pairs so ``1``/``1.0``/``True``
    stay distinct codes (plain dict keys would collapse them and break the
    exact round-trip).  ``None`` is an ordinary dictionary member, so no
    mask is needed.  Declines (returns ``None``) on unhashable values or
    when the distinct count is too close to the row count to pay off.
    """
    dictionary: list[Any] = []
    code_of: dict[Any, int] = {}
    codes = array("i")
    try:
        for v in values:
            key = (type(v), v)
            code = code_of.get(key)
            if code is None:
                code = len(dictionary)
                if code >= 2**31 - 1:
                    return None
                code_of[key] = code
                dictionary.append(v)
            codes.append(code)
    except TypeError:  # unhashable value
        return None
    if len(dictionary) * _MIXED_DICT_FRACTION > len(values):
        return None
    blob = pickle.dumps(dictionary, protocol=pickle.HIGHEST_PROTOCOL)
    payload = _EDICT_HEADER.pack(len(dictionary), len(blob)) + blob + codes.tobytes()
    return b"E", b"", payload


def _encode_column(values: Sequence[Any]) -> tuple[bytes, bytes, bytes]:
    """``(kind, mask, payload)`` for one column."""
    kind, has_null = _classify_column(values)
    if kind == "o":
        encoded = _encode_mixed_dictionary(values)
        if encoded is not None:
            return encoded
        return b"o", b"", pickle.dumps(list(values),
                                       protocol=pickle.HIGHEST_PROTOCOL)
    mask = bytes(1 if v is None else 0 for v in values) if has_null else b""
    if kind == "z":
        return b"z", mask, b""
    if kind == "q":
        payload = array("q", [0 if v is None else v for v in values]).tobytes()
    elif kind == "d":
        payload = array("d", [0.0 if v is None else v for v in values]).tobytes()
    elif kind == "B":
        payload = bytes(1 if v else 0 for v in values)
    else:  # "s" columns ship as the "D" dictionary layout
        return _encode_str_dictionary(values, mask)
    return kind.encode("ascii"), mask, payload


def dict_page_layout(payload: "bytes | memoryview") -> tuple[int, int, int, int]:
    """``(n_dict, code_width, blob_offset, codes_offset)`` of a ``D`` payload.

    The ``n_dict + 1`` native int64 string offsets start right after the
    header (at ``_DICT_HEADER.size``); the UTF-8 blob runs from
    ``blob_offset`` to ``codes_offset``; the per-row codes fill the rest.
    Shared with the kernel layer, which views the code array zero-copy.
    """
    n_dict, width = _DICT_HEADER.unpack_from(payload, 0)
    blob_offset = _DICT_HEADER.size + 8 * (n_dict + 1)
    (blob_len,) = struct.unpack_from("=q", payload, blob_offset - 8)
    return n_dict, width, blob_offset, blob_offset + blob_len


def dict_page_values(payload: "bytes | memoryview") -> list[str]:
    """The sorted dictionary of a ``D`` payload as Python strings."""
    n_dict, _width, blob_offset, _codes_offset = dict_page_layout(payload)
    offsets = array("q")
    offsets.frombytes(bytes(payload[_DICT_HEADER.size:blob_offset]))
    blob = bytes(payload[blob_offset:_codes_offset])
    return [blob[offsets[i]:offsets[i + 1]].decode("utf-8")
            for i in range(n_dict)]


def _decode_column(kind: str, mask: bytes, payload: "bytes | memoryview",
                   n_rows: int) -> list[Any]:
    if kind == "o":
        return pickle.loads(payload)
    if kind == "z":
        return [None] * n_rows
    if kind == "D":
        words = dict_page_values(payload)
        _n_dict, width, _blob_offset, codes_offset = dict_page_layout(payload)
        codes = array("i" if width == 4 else "q")
        codes.frombytes(bytes(payload[codes_offset:]))
        return [words[c] if c >= 0 else None for c in codes]
    if kind == "E":
        n_dict, blob_len = _EDICT_HEADER.unpack_from(payload, 0)
        blob_offset = _EDICT_HEADER.size
        words = pickle.loads(bytes(payload[blob_offset:blob_offset + blob_len]))
        codes = array("i")
        codes.frombytes(bytes(payload[blob_offset + blob_len:]))
        return [words[c] for c in codes]
    if kind == "q":
        values = array("q")
        values.frombytes(payload)
        out: list[Any] = values.tolist()
    elif kind == "d":
        values = array("d")
        values.frombytes(payload)
        out = values.tolist()
    elif kind == "B":
        out = [bool(b) for b in payload]
    else:  # "s"
        offsets = array("q")
        offsets.frombytes(payload[: 8 * (n_rows + 1)])
        blob = payload[8 * (n_rows + 1):]
        out = [blob[offsets[i]:offsets[i + 1]].decode("utf-8")
               for i in range(n_rows)]
    if mask:
        out = [None if m else v for m, v in zip(mask, out)]
    return out


class ColumnStore:
    """Columnar twin of a relation's bag of rows: one Python list per attribute.

    The vectorized executor (:mod:`repro.engine.vectorized`) scans these
    arrays directly instead of iterating row tuples.  A store is lazily
    materialized from the row form by :meth:`Relation.column_store` and then
    maintained incrementally on :meth:`Relation.add`, so building it is a
    one-time cost per relation, not per query.
    """

    __slots__ = ("names", "arrays", "kernel_cache", "pages")

    def __init__(self, names: Sequence[str], arrays: Sequence[list[Any]]) -> None:
        self.names = tuple(names)
        self.arrays = tuple(arrays)
        #: Per-column compiled encodings, owned by :mod:`repro.engine.kernels`
        #: (the storage layer never imports numpy).  Entries are keyed by
        #: column index and tagged with the column length they were built at;
        #: arrays are append-only, so a length match means the entry is
        #: current and no invalidation hook is needed.
        self.kernel_cache: dict[int, Any] = {}
        #: Raw page buffers per column index
        #: (``(kind, mask, payload, n_rows)``), populated by
        #: :meth:`decode_pages` so kernels can view int/float payloads and
        #: dictionary code arrays zero-copy instead of re-converting the
        #: Python lists.  ``n_rows`` is the length the page was decoded at;
        #: arrays are append-only, so kernels compare it against the live
        #: column length before trusting the buffer.
        self.pages: dict[int, tuple[str, Any, Any, int]] = {}

    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Sequence[Row]) -> "ColumnStore":
        """Transpose a bag of row tuples into per-attribute arrays."""
        if rows:
            arrays = [list(column) for column in zip(*rows)]
        else:
            arrays = [[] for _ in names]
        return cls(names, arrays)

    def __len__(self) -> int:
        return len(self.arrays[0]) if self.arrays else 0

    def append_row(self, row: Row) -> None:
        for array, value in zip(self.arrays, row):
            array.append(value)

    def row(self, i: int) -> Row:
        return tuple(array[i] for array in self.arrays)

    def to_rows(self) -> list[Row]:
        """Materialize the row view (zip of the arrays)."""
        return list(zip(*self.arrays)) if self.arrays else []

    # -- column pages (shared-memory serialization) -----------------------

    def encode_pages(self) -> bytes:
        """Serialize the store into the column-page format (see module docs).

        The encoding is exact: :meth:`decode_pages` reproduces the original
        Python values (including ``None``, ``bool`` vs ``int``, and mixed
        columns via the pickle fallback).
        """
        n_rows = len(self)
        chunks = [_PAGE_MAGIC, _PAGE_HEADER.pack(n_rows, len(self.arrays))]
        for name, values in zip(self.names, self.arrays):
            encoded_name = name.encode("utf-8")
            kind, mask, payload = _encode_column(values)
            chunks.append(_PAGE_NAME.pack(len(encoded_name)))
            chunks.append(encoded_name)
            chunks.append(_PAGE_COLUMN.pack(kind, len(mask), len(payload)))
            chunks.append(mask)
            chunks.append(payload)
        return b"".join(chunks)

    @classmethod
    def decode_pages(cls, buffer: "bytes | memoryview") -> "ColumnStore":
        """Rebuild a store from :meth:`encode_pages` output.

        ``buffer`` may be a memoryview into shared memory; raw int/float
        page buffers are retained in :attr:`pages` (zero-copy slices of
        ``buffer``) so the kernel layer can view them without re-encoding —
        the caller must keep the backing segment mapped for the store's
        lifetime.
        """
        view = memoryview(buffer)
        if bytes(view[:4]) != _PAGE_MAGIC:
            raise RelationError("buffer does not hold column pages")
        n_rows, n_cols = _PAGE_HEADER.unpack_from(view, 4)
        offset = 4 + _PAGE_HEADER.size
        names: list[str] = []
        arrays: list[list[Any]] = []
        pages: dict[int, tuple[str, Any, Any, int]] = {}
        for i in range(n_cols):
            (name_len,) = _PAGE_NAME.unpack_from(view, offset)
            offset += _PAGE_NAME.size
            names.append(bytes(view[offset:offset + name_len]).decode("utf-8"))
            offset += name_len
            kind_byte, mask_len, payload_len = _PAGE_COLUMN.unpack_from(view, offset)
            offset += _PAGE_COLUMN.size
            kind = kind_byte.decode("ascii")
            mask = view[offset:offset + mask_len]
            offset += mask_len
            payload = view[offset:offset + payload_len]
            offset += payload_len
            arrays.append(_decode_column(
                kind, bytes(mask),
                bytes(payload) if kind in ("s", "B") else payload, n_rows))
            if kind in ("q", "d", "D"):
                pages[i] = (kind, mask, payload, n_rows)
        store = cls(names, arrays)
        store.pages = pages
        return store

    def dictionary_stats(self, index: int) -> tuple[int, int] | None:
        """``(distinct, null_count)`` for a dict-encoded column, else ``None``.

        Exact and free of any full-column scan: the distinct count is the
        dictionary size (a ``D`` page header field, or the length of a
        kernel encoding's dictionary array) and the null count is the mask
        population.  Stale entries — a column grown past the length the
        dictionary was built at — are ignored, so the answer is always
        consistent with the live column.
        """
        if not self.arrays:
            return None
        n = len(self.arrays[index])
        entry = self.kernel_cache.get(index)
        if entry is not None and entry[0] == n:
            dictionary = getattr(entry[1], "dictionary", None)
            if dictionary is not None:
                enc_mask = entry[1].mask
                nulls = 0 if enc_mask is None else int(enc_mask.sum())
                return len(dictionary), nulls
        page = self.pages.get(index)
        if page is not None and page[0] == "D" and page[3] == n:
            n_dict, _w = _DICT_HEADER.unpack_from(page[2], 0)
            nulls = bytes(page[1]).count(1) if len(page[1]) else 0
            return int(n_dict), nulls
        return None


class Relation:
    """A named, typed multiset of tuples."""

    #: How many recent row appends the per-version delta log retains.  Views
    #: (``repro.engine.delta``) catch up from the log; a view that fell more
    #: than this many rows behind detects the gap and rebuilds instead.
    DELTA_LOG_LIMIT = 8192

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Sequence[Any] | Mapping[str, Any]] = (),
        *,
        validate: bool = True,
    ) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        self._frozen = False
        # Lazily built caches, maintained incrementally by :meth:`add`.  The
        # monotonic version counter is bumped on every mutation so external
        # caches (table statistics, the pipeline's result cache) can key on
        # ``(relation, version)`` instead of being invalidated wholesale.
        self._version = 0
        self._row_set: set[Row] | None = None
        self._distinct: list[Row] | None = None
        self._indexes: dict[str, dict[Any, list[Row]]] = {}
        self._column_store: ColumnStore | None = None
        # Bounded per-version delta log: ``(published_version, row)`` per
        # append, oldest first.  ``_delta_floor`` is the highest version whose
        # entries may have been evicted; :meth:`delta_since` answers exactly
        # for anchors >= the floor and reports "rebuild required" below it.
        self._delta_log: deque[tuple[int, Row]] = deque()
        self._delta_floor = 0
        # Positional join-key indexes, tagged with the version they were
        # built at (rebuilt lazily when stale rather than maintained).
        self._key_indexes: dict[tuple, tuple[int, dict[Any, list[int]]]] = {}
        for row in rows:
            self.add(row, validate=validate)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_column_store(cls, schema: RelationSchema, store: ColumnStore,
                          *, version: int = 0) -> "Relation":
        """Adopt a decoded :class:`ColumnStore` as a frozen relation.

        The worker side of the ``"process"`` backend rebuilds each shard's
        relation this way after attaching its shared-memory pages: the store
        (with any zero-copy page views it carries) becomes the relation's
        columnar cache directly, and ``version`` restamps the publisher's
        version so version-keyed caches stay coherent across the process
        boundary.
        """
        if len(store.names) != schema.arity:
            raise RelationError(
                f"store arity {len(store.names)} does not match schema arity "
                f"{schema.arity} for relation {schema.name!r}")
        relation = cls(schema)
        relation._rows = store.to_rows()
        relation._column_store = store
        relation._version = version
        return relation.freeze()

    @classmethod
    def from_dicts(
        cls, schema: RelationSchema, dicts: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from dict rows keyed by attribute name."""
        return cls(schema, dicts)

    def add(self, row: Sequence[Any] | Mapping[str, Any], *, validate: bool = True) -> None:
        """Append a row (bag semantics: duplicates are kept).

        Raises :class:`RelationError` on a frozen relation (see :meth:`freeze`).
        """
        normalized = self._normalize_row(row, validate=validate)
        self._append_row(normalized, published_version=self._version + 1)
        # The version bump is published *last*: a concurrent reader that
        # validates a lazily built cache against the version it started from
        # (see distinct_rows / column_store / key_index) can then never
        # publish a cache that is missing this row yet carries the new
        # version.  Observing the row while still reading the old version is
        # benign — the version counter is monotonic, so no later reader keys
        # on the old value again.
        self._version += 1

    def add_rows(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]], *,
                 validate: bool = True) -> None:
        """Append many rows as **one** write: a single version bump.

        Batch writes publish one version increment regardless of the number
        of rows, so version-window arithmetic over writes ("the service
        performed ``v₂ - v₁`` writes") counts batches, not rows.  The delta
        log records every row of the batch under the same published version,
        so views still observe each appended row exactly once.
        """
        # Normalize + validate the WHOLE batch before appending anything: a
        # mid-batch failure must not leave a partially applied write with no
        # version bump (version-keyed caches would keep serving "current"
        # answers that silently exclude the orphaned rows).
        staged = [self._normalize_row(row, validate=validate) for row in rows]
        if not staged:
            return
        published = self._version + 1
        for row in staged:
            self._append_row(row, published_version=published)
        self._version = published

    def _normalize_row(self, row: Sequence[Any] | Mapping[str, Any], *,
                       validate: bool) -> Row:
        """Coerce one row to a schema-ordered tuple, checking shape/types."""
        if self._frozen:
            raise RelationError(
                f"relation {self.schema.name!r} is frozen; copy() it to mutate"
            )
        if isinstance(row, Mapping):
            try:
                row = tuple(row[name] for name in self.schema.attribute_names)
            except KeyError as exc:
                raise RelationError(f"row is missing attribute {exc.args[0]!r}") from exc
        else:
            row = tuple(row)
        if len(row) != self.schema.arity:
            raise RelationError(
                f"row arity {len(row)} does not match schema arity {self.schema.arity} "
                f"for relation {self.schema.name!r}"
            )
        if validate:
            for value, attr in zip(row, self.schema.attributes):
                if not check_value(value, attr.dtype):
                    raise RelationError(
                        f"value {value!r} is not a valid {attr.dtype} for "
                        f"{self.schema.name}.{attr.name}"
                    )
        return row

    def _append_row(self, row: Row, *, published_version: int) -> None:
        """Append one *normalized* row and maintain every live cache.

        Callers run :meth:`_normalize_row` first (so batch staging validates
        once, not twice) and publish the :attr:`version` bump last —
        per append (:meth:`add`) or once per batch (:meth:`add_rows`).
        """
        self._rows.append(row)
        # Incrementally maintain whatever caches are already built; this keeps
        # membership tests O(1) even for workloads that interleave adds and
        # lookups (the Datalog fixpoint does exactly that).
        if self._column_store is not None:
            self._column_store.append_row(row)
        if self._row_set is not None:
            if row not in self._row_set:
                self._row_set.add(row)
                if self._distinct is not None:
                    self._distinct.append(row)
        for name, index in self._indexes.items():
            idx = self.schema.index_of(name)
            index.setdefault(row[idx], []).append(row)
        position = len(self._rows) - 1
        for key, entry in list(self._key_indexes.items()):
            tagged_version, table = entry
            if tagged_version != self._version \
                    and tagged_version != published_version:
                # Built against a state this append chain did not start from
                # (a racing build): drop it and let the next call rebuild.
                del self._key_indexes[key]
                continue
            positions, skip_nulls = key
            if len(positions) == 1:
                value: Any = row[positions[0]]
                if skip_nulls and value is None:
                    self._key_indexes[key] = (published_version, table)
                    continue
            else:
                value = tuple(row[p] for p in positions)
                if skip_nulls and None in value:
                    self._key_indexes[key] = (published_version, table)
                    continue
            bucket = table.get(value)
            if bucket is None:
                table[value] = [position]
            elif not bucket or bucket[-1] != position:
                # The ``bucket[-1] == position`` skip covers a racing reader
                # whose lock-free build ran after this row was appended but
                # before the version bump: its table already contains this
                # position, and appending again would serve the row twice.
                # Positions are unique and ascending, so the check is exact.
                bucket.append(position)
            self._key_indexes[key] = (published_version, table)
        log = self._delta_log
        log.append((published_version, row))
        while len(log) > self.DELTA_LOG_LIMIT:
            evicted_version, _evicted_row = log.popleft()
            # Entries evict oldest-first, so completeness holds exactly for
            # anchors at or above the newest evicted version.
            self._delta_floor = evicted_version

    # -- views -----------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def version(self) -> int:
        """Monotonic mutation counter: bumped once per :meth:`add`.

        Caches derived from this relation's contents (table statistics, the
        pipeline's result cache) record the version they were computed at and
        compare instead of subscribing to invalidation.
        """
        return self._version

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self.schema.attribute_names

    def rows(self) -> list[Row]:
        """All rows including duplicates (bag view)."""
        return list(self._rows)

    def distinct_rows(self) -> list[Row]:
        """Rows with duplicates removed, in first-occurrence order (set view).

        The deduplicated view is cached (and maintained incrementally by
        :meth:`add`), so repeated calls do not re-scan the bag.
        """
        if self._distinct is None:
            version = self._version
            seen: set[Row] = set()
            out: list[Row] = []
            for row in list(self._rows):
                if row not in seen:
                    seen.add(row)
                    out.append(row)
            if version != self._version:
                # A concurrent add raced the scan: serve the snapshot but do
                # not publish a cache that may already be stale.
                return out
            self._row_set = seen
            self._distinct = out
        return list(self._distinct)

    def row_set(self) -> set[Row]:
        """The set of distinct rows (cached; treat as read-only)."""
        if self._row_set is None:
            self.distinct_rows()
        published = self._row_set
        if published is not None:
            return published
        # distinct_rows() detected a racing add and declined to publish its
        # cache: serve a fresh snapshot without caching either.
        return set(self._rows)

    def index_on(self, attribute: str) -> dict[Any, list[Row]]:
        """A hash index mapping each value of ``attribute`` to its rows.

        Built lazily, cached, and maintained incrementally on :meth:`add`.
        The executor uses these for constant-equality scans; treat the
        returned mapping as read-only.
        """
        existing = self._indexes.get(attribute)
        if existing is not None:
            return existing
        version = self._version
        idx = self.schema.index_of(attribute)
        index: dict[Any, list[Row]] = {}
        for row in list(self._rows):
            index.setdefault(row[idx], []).append(row)
        if version == self._version:  # racing adds: serve without publishing
            self._indexes[attribute] = index
        return index

    def column_store(self) -> ColumnStore:
        """The columnar view: one array per attribute (bag order preserved).

        Lazily transposed from the row form on first call, then maintained
        incrementally by :meth:`add`.  Treat the returned arrays as
        read-only; the row view stays authoritative.
        """
        store = self._column_store
        if store is None:
            version = self._version
            store = ColumnStore.from_rows(
                self.schema.attribute_names, list(self._rows))
            if version == self._version:  # racing adds: serve w/o publishing
                self._column_store = store
        return store

    def key_index(self, positions: Sequence[int], *,
                  skip_nulls: bool = True) -> dict[Any, list[int]]:
        """A hash index from key values to *row positions* (bag order).

        Keys are raw values for a single position and tuples otherwise —
        the convention the vectorized hash join probes with.  With
        ``skip_nulls`` (SQL key equality) rows with a NULL key component are
        left out.  The index is cached per (positions, skip_nulls), tagged
        with the relation :attr:`version`, and **maintained incrementally**
        by :meth:`add` / :meth:`add_rows` — appends cost O(1) per cached
        index instead of an O(n) rebuild, which is what keeps incremental
        view refresh independent of base-table size.  An index whose tag
        fell behind anyway (a build raced a writer) is rebuilt on demand.
        """
        key = (tuple(positions), skip_nulls)
        cached = self._key_indexes.get(key)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        # Snapshot the version *before* reading the arrays: if an add races
        # the build, the stored tag is stale and the next call rebuilds.
        version = self._version
        arrays = self.column_store().arrays
        columns = [arrays[p] for p in key[0]]
        table: dict[Any, list[int]] = {}
        get = table.get
        if len(columns) == 1:
            keys: Any = columns[0]
        else:
            keys = zip(*columns) if columns else iter(() for _ in self._rows)
        check_nulls = skip_nulls and any(None in column for column in columns)
        single = len(columns) == 1
        for j, value in enumerate(keys):
            if check_nulls and ((value is None) if single else (None in value)):
                continue
            bucket = get(value)
            if bucket is None:
                table[value] = [j]
            else:
                bucket.append(j)
        self._key_indexes[key] = (version, table)
        return table

    # -- delta log (incremental view maintenance) --------------------------
    def delta_since(self, version: int) -> list[Row] | None:
        """Rows appended after ``version`` became current, oldest first.

        Returns ``None`` when the bounded log no longer covers the window —
        the caller (a materialized view catching up) must rebuild from
        scratch.  Call under write exclusion when exactness matters; the
        service refreshes views while holding its write lock.
        """
        current = self._version
        if version >= current:
            return []
        if version < self._delta_floor:
            return None
        out = []
        for published, row in reversed(self._delta_log):
            if published <= version:
                break
            out.append(row)
        out.reverse()
        return out

    def delta_count_since(self, version: int) -> int | None:
        """``len(delta_since(version))`` without materializing the rows."""
        current = self._version
        if version >= current:
            return 0
        if version < self._delta_floor:
            return None
        count = 0
        for published, _row in reversed(self._delta_log):
            if published <= version:
                break
            count += 1
        return count

    def rows_at(self, version: int) -> list[Row] | None:
        """The bag as of ``version`` (a prefix — adds only ever append).

        ``None`` when the delta log no longer covers the window, like
        :meth:`delta_since`.  Together the two views give a delta plan both
        sides of the classic insert rewrite Δ(L⋈R) = ΔL⋈R ∪ L_old⋈ΔR.
        """
        count = self.delta_count_since(version)
        if count is None:
            return None
        if count == 0:
            return list(self._rows)
        return self._rows[:len(self._rows) - count]

    def row_multiset(self) -> Counter:
        """Rows with multiplicities."""
        return Counter(self._rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by attribute name (bag view)."""
        names = self.schema.attribute_names
        return [dict(zip(names, row)) for row in self._rows]

    def column(self, name: str) -> list[Any]:
        """All values of one attribute (bag view)."""
        idx = self.schema.index_of(name)
        if self._column_store is not None:
            return list(self._column_store.arrays[idx])
        return [row[idx] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def cardinality(self, *, distinct: bool = False) -> int:
        """Number of rows, optionally after duplicate elimination."""
        if distinct:
            return len(self.distinct_rows())
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return tuple(row) in self.row_set() if isinstance(row, Sequence) else False

    def is_empty(self) -> bool:
        return not self._rows

    # -- comparisons -----------------------------------------------------
    def set_equal(self, other: "Relation") -> bool:
        """True iff both relations hold the same *set* of rows."""
        return self.row_set() == other.row_set()

    def bag_equal(self, other: "Relation") -> bool:
        """True iff both relations hold the same *multiset* of rows."""
        return Counter(self._rows) == Counter(other._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.schema.attribute_names == other.schema.attribute_names
            and self.bag_equal(other)
        )

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation objects are not hashable")

    # -- freezing and partitioning ----------------------------------------
    def freeze(self) -> "Relation":
        """Make the relation immutable: any further :meth:`add` raises.

        Shared caches hand out frozen relations so one caller's mutation
        cannot silently poison every other caller's answers; a caller that
        wants a private mutable instance takes a :meth:`copy`.  Freezing is
        idempotent and returns ``self`` for chaining.
        """
        self._frozen = True
        return self

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    def copy(self) -> "Relation":
        """A mutable copy with the same schema and rows (never frozen)."""
        return Relation(self.schema, self._rows, validate=False)

    def partition_by(self, attributes: Sequence[str], n: int) -> list["Relation"]:
        """Hash-partition the bag on ``attributes`` into ``n`` relations.

        Rows with equal key values always land in the same partition (the
        property partitioned group-by relies on: no group ever straddles two
        workers), and each partition preserves the relative bag order of its
        rows.  Keys hash by value, so a single-attribute key and its 1-tuple
        agree with the executor's hash-table convention.
        """
        if n <= 0:
            raise ValueError(f"partition count must be positive, got {n}")
        positions = [self.schema.index_of(a) for a in attributes]
        buckets: list[list[Row]] = [[] for _ in range(n)]
        if len(positions) == 1:
            p0 = positions[0]
            for row in self._rows:
                buckets[hash(row[p0]) % n].append(row)
        else:
            for row in self._rows:
                buckets[hash(tuple(row[p] for p in positions)) % n].append(row)
        return [Relation(self.schema, rows, validate=False) for rows in buckets]

    # -- simple derivations (heavy lifting lives in repro.ra.evaluate) ----
    def renamed(self, new_name: str) -> "Relation":
        """Same rows under a new relation name."""
        return Relation(self.schema.renamed(new_name), self._rows, validate=False)

    def with_schema(self, schema: RelationSchema) -> "Relation":
        """Reinterpret the same rows under a compatible schema."""
        if schema.arity != self.schema.arity:
            raise RelationError("cannot change schema to a different arity")
        return Relation(schema, self._rows, validate=False)

    def distinct(self) -> "Relation":
        """Duplicate-eliminated copy."""
        return Relation(self.schema, self.distinct_rows(), validate=False)

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Relation":
        """Rows for which ``predicate(row_dict)`` is truthy."""
        names = self.schema.attribute_names
        kept = [row for row in self._rows if predicate(dict(zip(names, row)))]
        return Relation(self.schema, kept, validate=False)

    def project_columns(self, names: Sequence[str], *, distinct: bool = True) -> "Relation":
        """Projection onto ``names`` (set semantics by default, like RA)."""
        indices = [self.schema.index_of(n) for n in names]
        schema = self.schema.project(names)
        rows = [tuple(row[i] for i in indices) for row in self._rows]
        rel = Relation(schema, rows, validate=False)
        return rel.distinct() if distinct else rel

    def sorted(self) -> "Relation":
        """Rows sorted by a total order usable for stable display."""
        def key(row: Row) -> tuple:
            return tuple((value is None, str(type(value).__name__), value if value is not None else 0)
                         for value in row)

        return Relation(self.schema, sorted(self._rows, key=key), validate=False)

    # -- display ---------------------------------------------------------
    def to_table(self, *, max_rows: int | None = 20) -> str:
        """ASCII table rendering, used by examples and the pipeline output."""
        names = list(self.schema.attribute_names)
        shown = self._rows if max_rows is None else self._rows[:max_rows]
        cells = [[format_value(v) if isinstance(v, str) or v is None else str(v) for v in row]
                 for row in shown]
        widths = [len(n) for n in names]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = [sep,
                 "|" + "|".join(f" {n.ljust(w)} " for n, w in zip(names, widths)) + "|",
                 sep]
        for row in cells:
            lines.append("|" + "|".join(f" {c.ljust(w)} " for c, w in zip(row, widths)) + "|")
        lines.append(sep)
        hidden = len(self._rows) - len(shown)
        if hidden > 0:
            lines.append(f"... {hidden} more row(s)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Relation({self.schema.name}, {len(self._rows)} rows)"


def relation_from_rows(
    name: str,
    columns: Sequence[tuple[str, str]],
    rows: Iterable[Sequence[Any]],
) -> Relation:
    """One-call constructor used heavily in tests and examples."""
    schema = RelationSchema(name, tuple(Attribute(c, t) for c, t in columns))
    return Relation(schema, rows)


def union_compatible(a: Relation, b: Relation) -> bool:
    """True iff two relations can take part in UNION / INTERSECT / EXCEPT."""
    return a.schema.is_union_compatible(b.schema)


def require_union_compatible(a: Relation, b: Relation, operation: str) -> None:
    """Raise :class:`RelationError` unless ``a`` and ``b`` are union-compatible."""
    if not union_compatible(a, b):
        raise RelationError(
            f"{operation}: schemas {a.schema} and {b.schema} are not union-compatible"
        )
