"""A database is a named collection of relations plus its schema."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.data.relation import Relation
from repro.data.schema import DatabaseSchema, RelationSchema, SchemaError


class Database:
    """An in-memory relational database instance.

    The database owns one :class:`~repro.data.relation.Relation` per relation
    in its :class:`~repro.data.schema.DatabaseSchema`.  Relation lookup is
    case-insensitive (SQL identifiers are case-insensitive) but preserves the
    declared capitalisation.
    """

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        self._structure_version = 0
        for rel in relations:
            self.add_relation(rel)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        tables: Mapping[str, tuple[Sequence[tuple[str, str]], Iterable[Sequence[Any]]]],
    ) -> "Database":
        """Build a database from ``{name: (columns, rows)}``."""
        db = cls()
        for name, (columns, rows) in tables.items():
            schema = RelationSchema(name, tuple(columns))
            db.add_relation(Relation(schema, rows))
        return db

    def add_relation(self, relation: Relation) -> None:
        """Add or replace a relation."""
        key = relation.schema.name.lower()
        replaced = self._relations.get(key)
        if replaced is not None:
            # Fold the outgoing relation's contribution into the structural
            # counter so `version` never moves backwards when a relation is
            # replaced by one with fewer rows.
            self._structure_version += replaced.version
        self._relations[key] = relation
        self._structure_version += 1

    def drop_relation(self, name: str) -> None:
        """Remove a relation; raises if it does not exist."""
        key = name.lower()
        if key not in self._relations:
            raise SchemaError(f"database has no relation {name!r}")
        self._structure_version += self._relations[key].version + 1
        del self._relations[key]

    @property
    def version(self) -> int:
        """A monotonic database version: changes whenever any content does.

        Combines the structural counter (relations added/replaced/dropped —
        each absorbing the departing relation's own counter, so the sum can
        only grow) with every live relation's
        :attr:`~repro.data.relation.Relation.version` counter (rows added).
        Caches keyed on ``(query, version)`` — the pipeline's result cache
        in particular — are therefore invalidated by any write.
        """
        return self._structure_version + sum(
            rel.version for rel in self._relations.values())

    @property
    def structure_version(self) -> int:
        """Bumped only by :meth:`add_relation` / :meth:`drop_relation`.

        Plans depend on the schema but not on row contents, so the
        pipeline's plan cache keys on this coarser counter.
        """
        return self._structure_version

    # -- lookup ----------------------------------------------------------
    @property
    def schema(self) -> DatabaseSchema:
        return DatabaseSchema(tuple(rel.schema for rel in self._relations.values()))

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(rel.schema.name for rel in self._relations.values())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def relation(self, name: str) -> Relation:
        """Return the relation called ``name`` (case-insensitive)."""
        key = name.lower()
        if key not in self._relations:
            raise SchemaError(f"database has no relation {name!r}")
        return self._relations[key]

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def relation_version(self, name: str) -> int:
        """The version of one relation, without materializing read views.

        Equivalent to ``self.relation(name).version`` here; sharded
        databases override it to sum per-shard versions so version probes
        stay O(shards) instead of rebuilding the merged relation.
        """
        return self.relation(name).version

    def index_on(self, relation: str, attribute: str) -> Mapping[Any, list]:
        """A per-attribute hash index of one relation (cached by the relation)."""
        return self.relation(relation).index_on(attribute)

    # -- whole-database properties ----------------------------------------
    def active_domain(self) -> set[Any]:
        """The set of all values appearing anywhere in the database.

        The active domain is what makes safe relational calculus evaluable:
        quantifiers in DRC range over it rather than an infinite universe.
        """
        domain: set[Any] = set()
        for rel in self._relations.values():
            for row in rel.rows():
                domain.update(v for v in row if v is not None)
        return domain

    def total_rows(self) -> int:
        """Total number of rows across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def copy(self) -> "Database":
        """A deep-enough copy: new Relation objects sharing immutable rows."""
        return Database(
            Relation(rel.schema, rel.rows(), validate=False)
            for rel in self._relations.values()
        )

    def summary(self) -> str:
        """One line per relation: name, arity, cardinality."""
        lines = []
        for rel in self._relations.values():
            lines.append(f"{rel.schema.name}: {rel.schema.arity} columns, {len(rel)} rows")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Database({', '.join(self.relation_names)})"


def merge_databases(*databases: Database) -> Database:
    """Union the relations of several databases (later ones win on clashes)."""
    merged = Database()
    for db in databases:
        for rel in db:
            merged.add_relation(rel)
    return merged
