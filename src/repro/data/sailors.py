"""The sailors–boats–reserves database from the "cow book".

The tutorial (Part 3) uses a variant of the classic example database from
Ramakrishnan & Gehrke, *Database Management Systems*: sailors reserve boats
on given days.  Every example query, diagram, and experiment in this
repository runs against this schema, so it lives in one canonical place.
"""

from __future__ import annotations

import random

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, DatabaseSchema, RelationSchema
from repro.data.types import DataType

#: Schema of the Sailors relation: sid, sname, rating, age.
SAILORS_SCHEMA = RelationSchema(
    "Sailors",
    (
        Attribute("sid", DataType.INT),
        Attribute("sname", DataType.STRING),
        Attribute("rating", DataType.INT),
        Attribute("age", DataType.FLOAT),
    ),
)

#: Schema of the Boats relation: bid, bname, color.
BOATS_SCHEMA = RelationSchema(
    "Boats",
    (
        Attribute("bid", DataType.INT),
        Attribute("bname", DataType.STRING),
        Attribute("color", DataType.STRING),
    ),
)

#: Schema of the Reserves relation: sid, bid, day.
RESERVES_SCHEMA = RelationSchema(
    "Reserves",
    (
        Attribute("sid", DataType.INT),
        Attribute("bid", DataType.INT),
        Attribute("day", DataType.STRING),
    ),
)

#: The full sailors database schema.
SAILORS_DATABASE_SCHEMA = DatabaseSchema((SAILORS_SCHEMA, BOATS_SCHEMA, RESERVES_SCHEMA))

#: The cow-book instance (S3/B1/R2 in the book, dates normalised to ISO).
SAILORS_ROWS = [
    (22, "Dustin", 7, 45.0),
    (29, "Brutus", 1, 33.0),
    (31, "Lubber", 8, 55.5),
    (32, "Andy", 8, 25.5),
    (58, "Rusty", 10, 35.0),
    (64, "Horatio", 7, 35.0),
    (71, "Zorba", 10, 16.0),
    (74, "Horatio", 9, 35.0),
    (85, "Art", 3, 25.5),
    (95, "Bob", 3, 63.5),
]

BOATS_ROWS = [
    (101, "Interlake", "blue"),
    (102, "Interlake", "red"),
    (103, "Clipper", "green"),
    (104, "Marine", "red"),
]

RESERVES_ROWS = [
    (22, 101, "1998-10-10"),
    (22, 102, "1998-10-10"),
    (22, 103, "1998-10-08"),
    (22, 104, "1998-10-07"),
    (31, 102, "1998-11-10"),
    (31, 103, "1998-11-06"),
    (31, 104, "1998-11-12"),
    (64, 101, "1998-09-05"),
    (64, 102, "1998-09-08"),
    (74, 103, "1998-09-08"),
]


def sailors_database() -> Database:
    """Return a fresh copy of the cow-book sailors database instance."""
    return Database(
        [
            Relation(SAILORS_SCHEMA, SAILORS_ROWS),
            Relation(BOATS_SCHEMA, BOATS_ROWS),
            Relation(RESERVES_SCHEMA, RESERVES_ROWS),
        ]
    )


#: Small pools used by the random generator so joins actually join.
_FIRST_NAMES = [
    "Dustin", "Brutus", "Lubber", "Andy", "Rusty", "Horatio", "Zorba",
    "Art", "Bob", "Frodo", "Guy", "Yuppy", "Ishmael", "Ahab", "Queequeg",
    "Starbuck", "Pip", "Flask", "Stubb", "Daggoo",
]
_BOAT_NAMES = ["Interlake", "Clipper", "Marine", "Driftwood", "Sunset", "Tempest", "Albatross"]
_COLORS = ["red", "green", "blue", "yellow", "white"]


def random_sailors_database(
    *,
    n_sailors: int = 50,
    n_boats: int = 12,
    n_reserves: int = 150,
    seed: int = 0,
) -> Database:
    """Generate a random sailors database of the requested size.

    The generator keeps key/foreign-key discipline (every reservation refers
    to an existing sailor and boat) and reuses a small pool of names and
    colors so that selections and joins return non-trivial results.  It is
    used by the equivalence harness (experiment T1) and the scaling
    benchmarks (experiment S1).
    """
    rng = random.Random(seed)
    sailors = []
    sids = rng.sample(range(1, max(1000, n_sailors * 5)), n_sailors)
    for sid in sids:
        sailors.append(
            (
                sid,
                rng.choice(_FIRST_NAMES),
                rng.randint(1, 10),
                round(rng.uniform(16.0, 70.0) * 2) / 2.0,
            )
        )

    boats = []
    bids = rng.sample(range(100, max(400, 100 + n_boats * 5)), n_boats)
    for bid in bids:
        boats.append((bid, rng.choice(_BOAT_NAMES), rng.choice(_COLORS)))

    reserves = []
    seen: set[tuple[int, int, str]] = set()
    attempts = 0
    while len(reserves) < n_reserves and attempts < n_reserves * 20:
        attempts += 1
        sid = rng.choice(sids)
        bid = rng.choice(bids)
        day = f"199{rng.randint(5, 9)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
        key = (sid, bid, day)
        if key in seen:
            continue
        seen.add(key)
        reserves.append(key)

    return Database(
        [
            Relation(SAILORS_SCHEMA, sailors),
            Relation(BOATS_SCHEMA, boats),
            Relation(RESERVES_SCHEMA, reserves),
        ]
    )


def empty_sailors_database() -> Database:
    """The sailors schema with no rows (edge-case testing)."""
    return Database(
        [
            Relation(SAILORS_SCHEMA, []),
            Relation(BOATS_SCHEMA, []),
            Relation(RESERVES_SCHEMA, []),
        ]
    )
