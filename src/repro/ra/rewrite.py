"""Algebraic rewrites for RA expressions.

These are the textbook equivalences (selection cascade and pushdown, turning
selections over products into theta joins, projection cascade).  They matter
here for two reasons: they let the DFQL diagrams show reasonable operator
trees instead of naive product-then-filter plans, and they provide the
"syntactic variants map to the same pattern" test cases used by the
invariance principle (experiment T3).
"""

from __future__ import annotations

from repro.expr.ast import Expr, conjunction, conjuncts
from repro.ra.ast import (
    Difference,
    Distinct,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAExpr,
    RelationRef,
    Rename,
    Selection,
    ThetaJoin,
    Union,
    output_schema,
    resolve_attribute,
    RAError,
)
from repro.data.schema import DatabaseSchema


def merge_selections(expr: RAExpr) -> RAExpr:
    """σ_a(σ_b(E)) → σ_{a ∧ b}(E), applied bottom-up everywhere."""
    expr = _rebuild(expr, merge_selections)
    if isinstance(expr, Selection) and isinstance(expr.input, Selection):
        condition = conjunction([expr.condition, expr.input.condition])
        return Selection(expr.input.input, condition)
    return expr


def selection_to_join(expr: RAExpr) -> RAExpr:
    """σ_c(A × B) → A ⋈_c B, applied bottom-up everywhere."""
    expr = _rebuild(expr, selection_to_join)
    if isinstance(expr, Selection) and isinstance(expr.input, Product):
        return ThetaJoin(expr.input.left, expr.input.right, expr.condition)
    return expr


def cascade_projections(expr: RAExpr) -> RAExpr:
    """π_a(π_b(E)) → π_a(E) when the outer columns are available in E."""
    expr = _rebuild(expr, cascade_projections)
    if isinstance(expr, Projection) and isinstance(expr.input, Projection):
        return Projection(expr.input.input, expr.columns)
    return expr


def remove_redundant_distinct(expr: RAExpr) -> RAExpr:
    """δ(δ(E)) → δ(E) and δ over set operators → the operator itself."""
    expr = _rebuild(expr, remove_redundant_distinct)
    if isinstance(expr, Distinct) and isinstance(
        expr.input, (Distinct, Union, Intersection, Difference)
    ):
        return expr.input
    return expr


def push_selections(expr: RAExpr, db_schema: DatabaseSchema) -> RAExpr:
    """Push selection conjuncts below products/joins when their columns allow it."""
    expr = _rebuild(expr, lambda e: push_selections(e, db_schema))
    if not isinstance(expr, Selection):
        return expr
    child = expr.input
    if not isinstance(child, (Product, ThetaJoin, NaturalJoin)):
        return expr

    left_schema = output_schema(child.left, db_schema)
    right_schema = output_schema(child.right, db_schema)
    left_parts: list[Expr] = []
    right_parts: list[Expr] = []
    keep: list[Expr] = []
    for conjunct in conjuncts(expr.condition):
        if _condition_fits(conjunct, left_schema):
            left_parts.append(conjunct)
        elif _condition_fits(conjunct, right_schema):
            right_parts.append(conjunct)
        else:
            keep.append(conjunct)

    if not left_parts and not right_parts:
        return expr

    new_left = Selection(child.left, conjunction(left_parts)) if left_parts else child.left
    new_right = Selection(child.right, conjunction(right_parts)) if right_parts else child.right
    if isinstance(child, Product):
        new_child: RAExpr = Product(new_left, new_right)
    elif isinstance(child, NaturalJoin):
        new_child = NaturalJoin(new_left, new_right)
    else:
        new_child = ThetaJoin(new_left, new_right, child.condition)
    if keep:
        return Selection(new_child, conjunction(keep))
    return new_child


def _condition_fits(condition: Expr, schema) -> bool:
    """True iff every column referenced by ``condition`` resolves in ``schema``."""
    for col in condition.columns():
        try:
            resolve_attribute(schema, col.name, col.qualifier)
        except RAError:
            return False
    return not condition.subqueries()


def optimize(expr: RAExpr, db_schema: DatabaseSchema) -> RAExpr:
    """The standard pipeline: merge, convert to joins, push down, tidy up."""
    expr = merge_selections(expr)
    expr = selection_to_join(expr)
    expr = push_selections(expr, db_schema)
    expr = cascade_projections(expr)
    expr = remove_redundant_distinct(expr)
    return expr


def _rebuild(expr: RAExpr, fn) -> RAExpr:
    """Rebuild one node with ``fn`` applied to its children."""
    if isinstance(expr, RelationRef):
        return expr
    if isinstance(expr, Selection):
        return Selection(fn(expr.input), expr.condition)
    if isinstance(expr, Projection):
        return Projection(fn(expr.input), expr.columns)
    if isinstance(expr, Rename):
        return Rename(fn(expr.input), expr.new_name, expr.attribute_renames)
    if isinstance(expr, Distinct):
        return Distinct(fn(expr.input))
    if isinstance(expr, Product):
        return Product(fn(expr.left), fn(expr.right))
    if isinstance(expr, NaturalJoin):
        return NaturalJoin(fn(expr.left), fn(expr.right))
    if isinstance(expr, ThetaJoin):
        return ThetaJoin(fn(expr.left), fn(expr.right), expr.condition)
    if isinstance(expr, Union):
        return Union(fn(expr.left), fn(expr.right))
    if isinstance(expr, Intersection):
        return Intersection(fn(expr.left), fn(expr.right))
    if isinstance(expr, Difference):
        return Difference(fn(expr.left), fn(expr.right))
    # Remaining binary/unary nodes (division, semi/anti join, group by) are
    # rebuilt generically through their dataclass constructors.
    import dataclasses

    if dataclasses.is_dataclass(expr):
        replacements = {}
        for field in dataclasses.fields(expr):
            value = getattr(expr, field.name)
            if isinstance(value, RAExpr):
                replacements[field.name] = fn(value)
        return dataclasses.replace(expr, **replacements)
    return expr  # pragma: no cover - all nodes are dataclasses
