"""A text syntax for Relational Algebra expressions.

The parser accepts both ASCII operator names and the conventional Greek
letters, so that textbook-style expressions can be written directly::

    pi[sname](sigma[color = 'red'](Boats njoin Reserves njoin Sailors))
    project[sid, bid](Reserves) / project[bid](select[color='red'](Boats))
    (A union B) except C

Grammar (precedence from loosest to tightest)::

    expr     := setexpr
    setexpr  := joinexpr ((UNION | INTERSECT | EXCEPT | DIVIDE) joinexpr)*
    joinexpr := unary ((NJOIN | JOIN[cond] | TIMES | SEMIJOIN[cond?] | ANTIJOIN[cond?]) unary)*
    unary    := OPNAME '[' args ']' '(' expr ')'  |  NAME  |  '(' expr ')'

Operator names: ``project``/``pi``/``π``, ``select``/``sigma``/``σ``,
``rename``/``rho``/``ρ``, ``distinct``/``delta``, ``gamma``/``groupby``.
"""

from __future__ import annotations

import re

from repro.expr.ast import FuncCall, Star
from repro.expr.parser import parse_expression
from repro.ra.ast import (
    AntiJoin,
    Difference,
    Distinct,
    Division,
    GroupBy,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAError,
    RAExpr,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    ThetaJoin,
    Union,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<bracket>\[(?:[^\[\]]|\[[^\]]*\])*\])
  | (?P<symbol>π|σ|ρ|δ|γ|÷|⨝|⋈|×|∪|∩|−|⋉|▷|\(|\)|,|/|\*)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_UNARY_OPS = {
    "project": "project", "pi": "project", "π": "project",
    "select": "select", "sigma": "select", "σ": "select",
    "rename": "rename", "rho": "rename", "ρ": "rename",
    "distinct": "distinct", "delta": "distinct", "δ": "distinct",
    "groupby": "groupby", "gamma": "groupby", "γ": "groupby",
}

_SET_OPS = {
    "union": Union, "∪": Union,
    "intersect": Intersection, "∩": Intersection,
    "except": Difference, "minus": Difference, "−": Difference,
    "divide": Division, "/": Division, "÷": Division,
}

_JOIN_OPS = {"njoin", "join", "⨝", "⋈", "times", "×", "*", "product",
             "semijoin", "⋉", "antijoin", "▷"}


class _Token:
    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise RAError(f"unexpected character {text[pos]!r} at position {pos}")
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group()))
    tokens.append(_Token("eof", ""))
    return tokens


class _RAParser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            raise RAError(f"expected {text or kind}, found {token.text!r}")
        return self.advance()

    # -- grammar ---------------------------------------------------------
    def parse(self) -> RAExpr:
        expr = self.parse_set()
        if self.peek().kind != "eof":
            raise RAError(f"unexpected trailing input {self.peek().text!r}")
        return expr

    def parse_set(self) -> RAExpr:
        expr = self.parse_join()
        while True:
            token = self.peek()
            key = token.text.lower() if token.kind == "name" else token.text
            if key in _SET_OPS:
                self.advance()
                expr = _SET_OPS[key](expr, self.parse_join())
            else:
                return expr

    def parse_join(self) -> RAExpr:
        expr = self.parse_unary()
        while True:
            token = self.peek()
            key = token.text.lower() if token.kind == "name" else token.text
            if key not in _JOIN_OPS:
                return expr
            self.advance()
            bracket = None
            if self.peek().kind == "bracket":
                bracket = self.advance().text[1:-1]
            right = self.parse_unary()
            if key in ("njoin", "⨝", "⋈") and bracket is None:
                expr = NaturalJoin(expr, right)
            elif key in ("join", "⨝", "⋈"):
                if bracket is None:
                    expr = NaturalJoin(expr, right)
                else:
                    expr = ThetaJoin(expr, right, parse_expression(bracket))
            elif key in ("times", "×", "*", "product"):
                expr = Product(expr, right)
            elif key in ("semijoin", "⋉"):
                expr = SemiJoin(expr, right, parse_expression(bracket) if bracket else None)
            elif key in ("antijoin", "▷"):
                expr = AntiJoin(expr, right, parse_expression(bracket) if bracket else None)
            else:  # pragma: no cover - exhaustive
                raise RAError(f"unhandled join operator {key!r}")
        return expr

    def parse_unary(self) -> RAExpr:
        token = self.peek()
        if token.kind == "symbol" and token.text == "(":
            self.advance()
            expr = self.parse_set()
            self.expect("symbol", ")")
            return expr
        key = token.text.lower() if token.kind == "name" else token.text
        if key in _UNARY_OPS or (token.kind == "symbol" and token.text in _UNARY_OPS):
            op = _UNARY_OPS[key if key in _UNARY_OPS else token.text]
            self.advance()
            bracket = ""
            if self.peek().kind == "bracket":
                bracket = self.advance().text[1:-1]
            self.expect("symbol", "(")
            inner = self.parse_set()
            self.expect("symbol", ")")
            return self._build_unary(op, bracket, inner)
        if token.kind == "name":
            self.advance()
            return RelationRef(token.text)
        raise RAError(f"unexpected token {token.text!r}")

    def _build_unary(self, op: str, bracket: str, inner: RAExpr) -> RAExpr:
        if op == "project":
            columns = tuple(c.strip() for c in bracket.split(",") if c.strip())
            if not columns:
                raise RAError("projection needs column names inside [...]")
            return Projection(inner, columns)
        if op == "select":
            if not bracket.strip():
                raise RAError("selection needs a condition inside [...]")
            return Selection(inner, parse_expression(bracket))
        if op == "distinct":
            return Distinct(inner)
        if op == "rename":
            return self._build_rename(bracket, inner)
        if op == "groupby":
            return self._build_groupby(bracket, inner)
        raise RAError(f"unhandled unary operator {op!r}")  # pragma: no cover

    def _build_rename(self, bracket: str, inner: RAExpr) -> Rename:
        new_name = None
        renames = []
        for part in (p.strip() for p in bracket.split(",") if p.strip()):
            if "->" in part:
                old, new = (x.strip() for x in part.split("->", 1))
                renames.append((old, new))
            else:
                new_name = part
        return Rename(inner, new_name, tuple(renames))

    def _build_groupby(self, bracket: str, inner: RAExpr) -> GroupBy:
        if ";" in bracket:
            group_part, agg_part = bracket.split(";", 1)
        else:
            group_part, agg_part = "", bracket
        group_columns = tuple(c.strip() for c in group_part.split(",") if c.strip())
        aggregates = []
        for part in (p.strip() for p in agg_part.split(",") if p.strip()):
            if "->" in part:
                call_text, alias = (x.strip() for x in part.split("->", 1))
            else:
                call_text, alias = part, re.sub(r"\W+", "_", part.lower()).strip("_")
            aggregates.append((self._parse_aggregate(call_text), alias))
        return GroupBy(inner, group_columns, tuple(aggregates))

    @staticmethod
    def _parse_aggregate(text: str) -> FuncCall:
        match = re.match(r"^\s*([A-Za-z_]+)\s*\(\s*(.*?)\s*\)\s*$", text)
        if not match:
            raise RAError(f"cannot parse aggregate {text!r}")
        name, arg = match.groups()
        if arg == "*":
            return FuncCall(name, (Star(),))
        distinct = False
        if arg.lower().startswith("distinct "):
            distinct = True
            arg = arg[len("distinct "):]
        parsed = parse_expression(arg) if arg else None
        args = (parsed,) if parsed is not None else ()
        return FuncCall(name, args, distinct)


def parse_ra(text: str) -> RAExpr:
    """Parse an RA expression from text."""
    return _RAParser(_tokenize(text)).parse()
