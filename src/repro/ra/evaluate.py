"""Evaluation of Relational Algebra expressions over a database.

The evaluator is a straightforward tuple-at-a-time interpreter: it favours
clarity over speed, which is appropriate for a reference implementation whose
job is to *define* the semantics the translators and diagrams are checked
against.  Set semantics is the default (textbook RA); ``bag=True`` keeps
duplicates for the operators where SQL needs them.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.data.database import Database
from repro.data.relation import Relation, require_union_compatible
from repro.data.schema import RelationSchema
from repro.expr.eval import Scope, compute_aggregate, eval_predicate
from repro.ra.ast import (
    AntiJoin,
    Difference,
    Distinct,
    Division,
    GroupBy,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAError,
    RAExpr,
    RelationRef,
    Rename,
    resolve_attribute,
    Selection,
    SemiJoin,
    ThetaJoin,
    Union,
    output_schema,
    _split_reference,
)


class AttributeScope(Scope):
    """A scope that resolves column references against one RA output schema.

    RA attribute names may be dotted (``S.sid``) after products; this scope
    applies the same resolution rules as :func:`repro.ra.ast.resolve_attribute`
    so that conditions behave identically during schema inference and
    evaluation.
    """

    def __init__(self, schema: RelationSchema, row: Sequence[Any],
                 outer: Scope | None = None) -> None:
        super().__init__(outer)
        self._schema = schema
        self._row = tuple(row)
        self.bind(schema.name, schema.attribute_names, self._row)

    def lookup(self, name: str, qualifier: str | None = None) -> Any:
        try:
            resolved = resolve_attribute(self._schema, name, qualifier)
        except RAError:
            if self.outer is not None:
                return self.outer.lookup(name, qualifier)
            raise
        return self._row[self._schema.index_of(resolved)]


def evaluate(expr: RAExpr, db: Database, *, bag: bool = False) -> Relation:
    """Evaluate ``expr`` against ``db`` and return the result relation.

    With ``bag=False`` (default) every operator output is duplicate-free, the
    classical set semantics of RA.  With ``bag=True`` duplicates are preserved
    (SQL semantics) except where an operator is inherently set-based
    (set operations, division, duplicate elimination).
    """
    schema = output_schema(expr, db.schema)
    rows = _eval(expr, db, bag=bag)
    relation = Relation(schema, rows, validate=False)
    if not bag:
        relation = relation.distinct()
    return relation


def _eval(expr: RAExpr, db: Database, *, bag: bool) -> list[tuple]:
    if isinstance(expr, RelationRef):
        return db.relation(expr.name).rows()

    if isinstance(expr, Rename):
        return _eval(expr.input, db, bag=bag)

    if isinstance(expr, Selection):
        input_schema = output_schema(expr.input, db.schema)
        rows = _eval(expr.input, db, bag=bag)
        return [row for row in rows
                if eval_predicate(expr.condition, AttributeScope(input_schema, row))]

    if isinstance(expr, Projection):
        input_schema = output_schema(expr.input, db.schema)
        indices = []
        for column in expr.columns:
            qualifier, name = _split_reference(column)
            resolved = resolve_attribute(input_schema, name, qualifier)
            indices.append(input_schema.index_of(resolved))
        rows = [tuple(row[i] for i in indices) for row in _eval(expr.input, db, bag=bag)]
        return rows if bag else _dedupe(rows)

    if isinstance(expr, Product):
        left_rows = _eval(expr.left, db, bag=bag)
        right_rows = _eval(expr.right, db, bag=bag)
        return [l + r for l in left_rows for r in right_rows]

    if isinstance(expr, ThetaJoin):
        joined_schema = output_schema(expr, db.schema)
        left_rows = _eval(expr.left, db, bag=bag)
        right_rows = _eval(expr.right, db, bag=bag)
        out = []
        for l in left_rows:
            for r in right_rows:
                row = l + r
                if eval_predicate(expr.condition, AttributeScope(joined_schema, row)):
                    out.append(row)
        return out

    if isinstance(expr, NaturalJoin):
        left_schema = output_schema(expr.left, db.schema)
        right_schema = output_schema(expr.right, db.schema)
        shared = [n for n in left_schema.attribute_names if n in right_schema.attribute_names]
        left_idx = [left_schema.index_of(n) for n in shared]
        right_idx = [right_schema.index_of(n) for n in shared]
        keep_right = [i for i, a in enumerate(right_schema.attributes) if a.name not in shared]
        right_rows = _eval(expr.right, db, bag=bag)
        out = []
        for l in _eval(expr.left, db, bag=bag):
            key_l = tuple(l[i] for i in left_idx)
            for r in right_rows:
                if key_l == tuple(r[i] for i in right_idx):
                    out.append(l + tuple(r[i] for i in keep_right))
        return out

    if isinstance(expr, (SemiJoin, AntiJoin)):
        return _eval_semi_anti(expr, db, bag=bag)

    if isinstance(expr, Union):
        left, right = _union_inputs(expr, db, bag=bag)
        rows = left + right
        return rows if bag else _dedupe(rows)

    if isinstance(expr, Intersection):
        left, right = _union_inputs(expr, db, bag=bag)
        right_set = set(right)
        return _dedupe([row for row in left if row in right_set])

    if isinstance(expr, Difference):
        left, right = _union_inputs(expr, db, bag=bag)
        right_set = set(right)
        return _dedupe([row for row in left if row not in right_set])

    if isinstance(expr, Division):
        return _eval_division(expr, db)

    if isinstance(expr, Distinct):
        return _dedupe(_eval(expr.input, db, bag=bag))

    if isinstance(expr, GroupBy):
        return _eval_groupby(expr, db, bag=bag)

    raise RAError(f"evaluate: unhandled node {type(expr).__name__}")


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _union_inputs(expr, db: Database, *, bag: bool) -> tuple[list[tuple], list[tuple]]:
    left_schema = output_schema(expr.left, db.schema)
    right_schema = output_schema(expr.right, db.schema)
    left_rel = Relation(left_schema, (), validate=False)
    right_rel = Relation(right_schema, (), validate=False)
    require_union_compatible(left_rel, right_rel, type(expr).__name__)
    return _eval(expr.left, db, bag=bag), _eval(expr.right, db, bag=bag)


def _eval_semi_anti(expr, db: Database, *, bag: bool) -> list[tuple]:
    left_schema = output_schema(expr.left, db.schema)
    right_schema = output_schema(expr.right, db.schema)
    left_rows = _eval(expr.left, db, bag=bag)
    right_rows = _eval(expr.right, db, bag=bag)
    want_match = isinstance(expr, SemiJoin)

    if expr.condition is None:
        shared = [n for n in left_schema.attribute_names if n in right_schema.attribute_names]
        if not shared:
            has_any = bool(right_rows)
            if want_match:
                return list(left_rows) if has_any else []
            return [] if has_any else list(left_rows)
        left_idx = [left_schema.index_of(n) for n in shared]
        right_keys = {tuple(r[right_schema.index_of(n)] for n in shared) for r in right_rows}
        out = []
        for row in left_rows:
            matched = tuple(row[i] for i in left_idx) in right_keys
            if matched == want_match:
                out.append(row)
        return out

    joined_schema = left_schema.concat(right_schema)
    out = []
    for l in left_rows:
        matched = any(
            eval_predicate(expr.condition, AttributeScope(joined_schema, l + r))
            for r in right_rows
        )
        if matched == want_match:
            out.append(l)
    return out


def _eval_division(expr: Division, db: Database) -> list[tuple]:
    left_schema = output_schema(expr.left, db.schema)
    right_schema = output_schema(expr.right, db.schema)
    right_names = list(right_schema.attribute_names)
    quotient_names = [n for n in left_schema.attribute_names if n not in right_names]
    quotient_idx = [left_schema.index_of(n) for n in quotient_names]
    divisor_idx = [left_schema.index_of(n) for n in right_names]

    divisor_rows = set(_dedupe(_eval(expr.right, db, bag=False)))
    groups: dict[tuple, set[tuple]] = {}
    for row in _eval(expr.left, db, bag=False):
        key = tuple(row[i] for i in quotient_idx)
        groups.setdefault(key, set()).add(tuple(row[i] for i in divisor_idx))
    return [key for key, seen in groups.items() if divisor_rows <= seen]


def _eval_groupby(expr: GroupBy, db: Database, *, bag: bool) -> list[tuple]:
    input_schema = output_schema(expr.input, db.schema)
    rows = _eval(expr.input, db, bag=True)

    group_indices = []
    for column in expr.group_columns:
        qualifier, name = _split_reference(column)
        resolved = resolve_attribute(input_schema, name, qualifier)
        group_indices.append(input_schema.index_of(resolved))

    groups: dict[tuple, list[tuple]] = {}
    order: list[tuple] = []
    for row in rows:
        key = tuple(row[i] for i in group_indices)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    if not expr.group_columns and not groups:
        # Aggregates over an empty input still produce one row (COUNT=0, SUM=NULL).
        groups[()] = []
        order.append(())

    out = []
    for key in order:
        member_scopes = [AttributeScope(input_schema, row) for row in groups[key]]
        aggregated = tuple(
            compute_aggregate(call, member_scopes) for call, _alias in expr.aggregates
        )
        out.append(key + aggregated)
    return out


def cardinality(expr: RAExpr, db: Database) -> int:
    """Number of tuples in the (set-semantics) result."""
    return len(evaluate(expr, db))
