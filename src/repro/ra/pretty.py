"""Pretty printers for Relational Algebra expressions.

Two renderings are provided: a linear text form that round-trips through the
parser (used in examples and tests) and an indented tree form (used when
explaining a translation or when labelling DFQL dataflow nodes).
"""

from __future__ import annotations

from repro.expr.format import format_expr
from repro.ra.ast import (
    AntiJoin,
    Difference,
    Distinct,
    Division,
    GroupBy,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAError,
    RAExpr,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    ThetaJoin,
    Union,
)

#: Unicode operator glyphs, used when ``unicode=True``.
_GLYPHS = {
    "project": "π", "select": "σ", "rename": "ρ", "distinct": "δ", "groupby": "γ",
    "njoin": "⨝", "times": "×", "union": "∪", "intersect": "∩", "except": "−",
    "divide": "÷", "semijoin": "⋉", "antijoin": "▷",
}

_ASCII = {
    "project": "project", "select": "select", "rename": "rename",
    "distinct": "distinct", "groupby": "groupby",
    "njoin": "njoin", "times": "times", "union": "union",
    "intersect": "intersect", "except": "except", "divide": "divide",
    "semijoin": "semijoin", "antijoin": "antijoin",
}


def _glyph(name: str, unicode: bool) -> str:
    return (_GLYPHS if unicode else _ASCII)[name]


def to_text(expr: RAExpr, *, unicode: bool = False) -> str:
    """Linear rendering; the ASCII form round-trips through :func:`parse_ra`."""
    g = lambda name: _glyph(name, unicode)  # noqa: E731 - tiny local alias

    def go(node: RAExpr) -> str:
        if isinstance(node, RelationRef):
            return node.name
        if isinstance(node, Projection):
            return f"{g('project')}[{', '.join(node.columns)}]({go(node.input)})"
        if isinstance(node, Selection):
            return f"{g('select')}[{format_expr(node.condition)}]({go(node.input)})"
        if isinstance(node, Rename):
            parts = []
            if node.new_name:
                parts.append(node.new_name)
            parts.extend(f"{old} -> {new}" for old, new in node.attribute_renames)
            return f"{g('rename')}[{', '.join(parts)}]({go(node.input)})"
        if isinstance(node, Distinct):
            return f"{g('distinct')}({go(node.input)})"
        if isinstance(node, GroupBy):
            aggs = ", ".join(f"{format_expr(call)} -> {alias}" for call, alias in node.aggregates)
            groups = ", ".join(node.group_columns)
            inner = f"{groups}; {aggs}" if groups else aggs
            return f"{g('groupby')}[{inner}]({go(node.input)})"
        if isinstance(node, NaturalJoin):
            return f"({go(node.left)} {g('njoin')} {go(node.right)})"
        if isinstance(node, ThetaJoin):
            return f"({go(node.left)} join[{format_expr(node.condition)}] {go(node.right)})"
        if isinstance(node, Product):
            return f"({go(node.left)} {g('times')} {go(node.right)})"
        if isinstance(node, SemiJoin):
            cond = f"[{format_expr(node.condition)}]" if node.condition is not None else ""
            return f"({go(node.left)} {g('semijoin')}{cond} {go(node.right)})"
        if isinstance(node, AntiJoin):
            cond = f"[{format_expr(node.condition)}]" if node.condition is not None else ""
            return f"({go(node.left)} {g('antijoin')}{cond} {go(node.right)})"
        if isinstance(node, Union):
            return f"({go(node.left)} {g('union')} {go(node.right)})"
        if isinstance(node, Intersection):
            return f"({go(node.left)} {g('intersect')} {go(node.right)})"
        if isinstance(node, Difference):
            return f"({go(node.left)} {g('except')} {go(node.right)})"
        if isinstance(node, Division):
            return f"({go(node.left)} {g('divide')} {go(node.right)})"
        raise RAError(f"to_text: unhandled node {type(node).__name__}")

    return go(expr)


def operator_label(node: RAExpr, *, unicode: bool = True) -> str:
    """A short label for one operator node (used by DFQL diagram nodes)."""
    if isinstance(node, RelationRef):
        return node.name
    if isinstance(node, Projection):
        return f"{_glyph('project', unicode)} {', '.join(node.columns)}"
    if isinstance(node, Selection):
        return f"{_glyph('select', unicode)} {format_expr(node.condition)}"
    if isinstance(node, Rename):
        parts = ([node.new_name] if node.new_name else []) + [
            f"{o}->{n}" for o, n in node.attribute_renames
        ]
        return f"{_glyph('rename', unicode)} {', '.join(parts)}"
    if isinstance(node, Distinct):
        return _glyph("distinct", unicode)
    if isinstance(node, GroupBy):
        aggs = ", ".join(alias for _, alias in node.aggregates)
        return f"{_glyph('groupby', unicode)} [{', '.join(node.group_columns)}] {aggs}"
    if isinstance(node, NaturalJoin):
        return _glyph("njoin", unicode)
    if isinstance(node, ThetaJoin):
        return f"{_glyph('njoin', unicode)} {format_expr(node.condition)}"
    if isinstance(node, Product):
        return _glyph("times", unicode)
    if isinstance(node, SemiJoin):
        return _glyph("semijoin", unicode)
    if isinstance(node, AntiJoin):
        return _glyph("antijoin", unicode)
    if isinstance(node, Union):
        return _glyph("union", unicode)
    if isinstance(node, Intersection):
        return _glyph("intersect", unicode)
    if isinstance(node, Difference):
        return _glyph("except", unicode)
    if isinstance(node, Division):
        return _glyph("divide", unicode)
    raise RAError(f"operator_label: unhandled node {type(node).__name__}")


def to_tree(expr: RAExpr, *, unicode: bool = True) -> str:
    """Indented operator-tree rendering."""
    lines: list[str] = []

    def go(node: RAExpr, depth: int) -> None:
        lines.append("  " * depth + operator_label(node, unicode=unicode))
        for child in node.children():
            go(child, depth + 1)

    go(expr, 0)
    return "\n".join(lines)
