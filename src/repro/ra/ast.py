"""Relational Algebra (RA) expression trees.

RA is the procedural yardstick of the tutorial: most relationally complete
visual languages (DFQL in particular) are visualizations of RA operator
trees.  The node set covers the six classic operators plus the derived
operators needed by the translators and by textbook examples: natural and
theta joins, semi/anti joins, division, duplicate elimination, and grouping
with aggregates (extended RA).

Attribute references inside conditions and projection lists may be written
qualified (``S.sid``) or unqualified (``sid``); :func:`resolve_attribute`
defines the resolution rules shared by schema inference and evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.data.schema import Attribute, DatabaseSchema, RelationSchema, SchemaError
from repro.data.types import DataType
from repro.expr.ast import BoolConst, Expr, FuncCall


class RAError(Exception):
    """Raised for malformed RA expressions."""


class RAExpr:
    """Base class of RA operator nodes."""

    def children(self) -> tuple["RAExpr", ...]:
        return ()

    def walk(self) -> Iterator["RAExpr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def relations_used(self) -> list[str]:
        """Names of base relations referenced anywhere in the tree."""
        out: list[str] = []
        for node in self.walk():
            if isinstance(node, RelationRef) and node.name not in out:
                out.append(node.name)
        return out

    def operator_count(self) -> int:
        """Number of operator nodes (a proxy for query complexity)."""
        return sum(1 for _ in self.walk())


@dataclass(frozen=True)
class RelationRef(RAExpr):
    """A base relation."""

    name: str


@dataclass(frozen=True)
class Rename(RAExpr):
    """ρ: rename the relation and/or its attributes."""

    input: RAExpr
    new_name: str | None = None
    attribute_renames: tuple[tuple[str, str], ...] = ()

    def children(self) -> tuple[RAExpr, ...]:
        return (self.input,)

    def renames_dict(self) -> dict[str, str]:
        return dict(self.attribute_renames)


@dataclass(frozen=True)
class Selection(RAExpr):
    """σ: keep rows satisfying a condition."""

    input: RAExpr
    condition: Expr = field(default_factory=lambda: BoolConst(True))

    def children(self) -> tuple[RAExpr, ...]:
        return (self.input,)


@dataclass(frozen=True)
class Projection(RAExpr):
    """π: project onto a list of (possibly qualified) attribute names."""

    input: RAExpr
    columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        if not self.columns:
            raise RAError("projection needs at least one column")

    def children(self) -> tuple[RAExpr, ...]:
        return (self.input,)


@dataclass(frozen=True)
class Product(RAExpr):
    """× : cartesian product."""

    left: RAExpr
    right: RAExpr

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class NaturalJoin(RAExpr):
    """⋈ : equality on all shared attribute names."""

    left: RAExpr
    right: RAExpr

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class ThetaJoin(RAExpr):
    """⋈θ : product filtered by an arbitrary condition."""

    left: RAExpr
    right: RAExpr
    condition: Expr = field(default_factory=lambda: BoolConst(True))

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class SemiJoin(RAExpr):
    """⋉ : rows of the left input with at least one match on the right."""

    left: RAExpr
    right: RAExpr
    condition: Expr | None = None

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class AntiJoin(RAExpr):
    """▷ : rows of the left input with no match on the right."""

    left: RAExpr
    right: RAExpr
    condition: Expr | None = None

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Union(RAExpr):
    """∪ (set union of union-compatible inputs)."""

    left: RAExpr
    right: RAExpr

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Intersection(RAExpr):
    """∩."""

    left: RAExpr
    right: RAExpr

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Difference(RAExpr):
    """− (set difference)."""

    left: RAExpr
    right: RAExpr

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Division(RAExpr):
    """÷ : tuples of the left input related to *all* tuples of the right.

    Division is RA's way of expressing universal quantification ("sailors who
    reserved *all* red boats"), which is why the tutorial singles it out when
    comparing QBE, Datalog, and the diagrammatic formalisms.
    """

    left: RAExpr
    right: RAExpr

    def children(self) -> tuple[RAExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Distinct(RAExpr):
    """δ : duplicate elimination (only meaningful under bag semantics)."""

    input: RAExpr

    def children(self) -> tuple[RAExpr, ...]:
        return (self.input,)


@dataclass(frozen=True)
class GroupBy(RAExpr):
    """γ : grouping with aggregation (extended RA)."""

    input: RAExpr
    group_columns: tuple[str, ...] = ()
    aggregates: tuple[tuple[FuncCall, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_columns", tuple(self.group_columns))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))

    def children(self) -> tuple[RAExpr, ...]:
        return (self.input,)


# ---------------------------------------------------------------------------
# Attribute resolution and schema inference
# ---------------------------------------------------------------------------

def resolve_attribute(schema: RelationSchema, name: str, qualifier: str | None = None) -> str:
    """Resolve a possibly-qualified attribute reference to a schema attribute name.

    Resolution order:

    1. exact match of the qualified spelling ``qualifier.name``;
    2. unique suffix match of ``qualifier.name`` (repeated products prefix an
       already-prefixed attribute, e.g. ``A_x_B.c`` still ends in ``B.c``);
    3. exact match of ``name`` alone;
    4. unique suffix match ``*.name`` (the attribute was prefixed during a
       product but the reference is unambiguous).
    """
    names = schema.attribute_names
    if qualifier:
        qualified = f"{qualifier}.{name}"
        if qualified in names:
            return qualified
        qualified_suffix = [n for n in names if n.endswith(f"{qualifier}.{name}")]
        if len(qualified_suffix) == 1:
            return qualified_suffix[0]
    if name in names:
        return name
    suffix_matches = [n for n in names if n.endswith(f".{name}")]
    if len(suffix_matches) == 1:
        return suffix_matches[0]
    if len(suffix_matches) > 1:
        raise RAError(f"ambiguous attribute reference {name!r} in {schema}")
    raise RAError(
        f"attribute {qualifier + '.' if qualifier else ''}{name} not found in {schema}"
    )


def _aggregate_output_type(call: FuncCall, input_schema: RelationSchema) -> DataType:
    if call.name == "count":
        return DataType.INT
    if call.name == "avg":
        return DataType.FLOAT
    if call.args and hasattr(call.args[0], "name"):
        arg = call.args[0]
        try:
            resolved = resolve_attribute(input_schema, arg.name, getattr(arg, "qualifier", None))
            return input_schema.dtype_of(resolved)
        except (RAError, SchemaError):
            return DataType.FLOAT
    return DataType.FLOAT


def output_schema(expr: RAExpr, db_schema: DatabaseSchema) -> RelationSchema:
    """Infer the output schema of an RA expression over ``db_schema``."""
    if isinstance(expr, RelationRef):
        return db_schema.relation(expr.name)
    if isinstance(expr, Rename):
        schema = output_schema(expr.input, db_schema)
        if expr.attribute_renames:
            schema = schema.rename_attributes(expr.renames_dict())
        if expr.new_name:
            schema = schema.renamed(expr.new_name)
        return schema
    if isinstance(expr, (Selection, Distinct)):
        return output_schema(expr.input, db_schema)
    if isinstance(expr, Projection):
        input_schema = output_schema(expr.input, db_schema)
        resolved = []
        for column in expr.columns:
            qualifier, name = _split_reference(column)
            resolved.append(resolve_attribute(input_schema, name, qualifier))
        return input_schema.project(resolved, new_name=input_schema.name)
    if isinstance(expr, (Product, ThetaJoin)):
        left = output_schema(expr.left, db_schema)
        right = output_schema(expr.right, db_schema)
        return left.concat(right)
    if isinstance(expr, NaturalJoin):
        left = output_schema(expr.left, db_schema)
        right = output_schema(expr.right, db_schema)
        extra = tuple(a for a in right.attributes if a.name not in left.attribute_names)
        return RelationSchema(f"{left.name}_join_{right.name}", left.attributes + extra)
    if isinstance(expr, (SemiJoin, AntiJoin)):
        return output_schema(expr.left, db_schema)
    if isinstance(expr, (Union, Intersection, Difference)):
        left = output_schema(expr.left, db_schema)
        right = output_schema(expr.right, db_schema)
        if not left.is_union_compatible(right):
            raise RAError(f"{type(expr).__name__}: schemas {left} and {right} are incompatible")
        return left
    if isinstance(expr, Division):
        left = output_schema(expr.left, db_schema)
        right = output_schema(expr.right, db_schema)
        right_names = set(right.attribute_names)
        missing = right_names - set(left.attribute_names)
        if missing:
            raise RAError(f"division: divisor attributes {sorted(missing)} not in dividend {left}")
        kept = tuple(a for a in left.attributes if a.name not in right_names)
        if not kept:
            raise RAError("division result would have an empty schema")
        return RelationSchema(f"{left.name}_div", kept)
    if isinstance(expr, GroupBy):
        input_schema = output_schema(expr.input, db_schema)
        attrs: list[Attribute] = []
        for column in expr.group_columns:
            qualifier, name = _split_reference(column)
            resolved = resolve_attribute(input_schema, name, qualifier)
            attrs.append(input_schema.attribute(resolved))
        for call, alias in expr.aggregates:
            attrs.append(Attribute(alias, _aggregate_output_type(call, input_schema)))
        return RelationSchema(f"{input_schema.name}_grouped", tuple(attrs))
    raise RAError(f"output_schema: unhandled node {type(expr).__name__}")


def _split_reference(reference: str) -> tuple[str | None, str]:
    """Split ``"S.sid"`` into ``("S", "sid")`` and ``"sid"`` into ``(None, "sid")``."""
    if "." in reference:
        qualifier, name = reference.split(".", 1)
        return qualifier, name
    return None, reference
