"""Direct SQL evaluation over an in-memory database.

The evaluator interprets the SQL AST directly (no translation to RA), which
gives the project an *independent* implementation of query semantics: the
cross-language equivalence experiments compare this evaluator against the RA,
TRC, DRC, and Datalog evaluators, so a bug would have to be replicated five
times to go unnoticed.

Supported: multi-table FROM with aliases, INNER/LEFT/RIGHT/FULL/CROSS and
NATURAL joins, WHERE with correlated subqueries (EXISTS, IN, ANY/ALL, scalar
subqueries), GROUP BY / HAVING with the five standard aggregates, DISTINCT,
UNION/INTERSECT/EXCEPT (with and without ALL), ORDER BY, LIMIT.

Simplification (documented): NATURAL JOIN and USING keep both copies of the
join columns in ``*`` expansions, like a plain equi-join.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema
from repro.data.types import DataType, infer_type
from repro.expr.ast import (
    And,
    Between,
    BinOp,
    Col,
    Comparison,
    Const,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Neg,
    Not,
    Or,
    contains_aggregate,
)
from repro.expr.eval import Scope, compute_aggregate, eval_expr, eval_predicate
from repro.sql.ast import (
    DerivedTable,
    FromItem,
    Join,
    OrderItem,
    Query,
    SelectQuery,
    SetOpQuery,
    TableRef,
)
from repro.sql.parser import parse_sql


class SQLEvaluationError(Exception):
    """Raised when a query cannot be evaluated."""


#: One FROM-clause binding: (alias, attribute names, row values).
Binding = tuple[str, tuple[str, ...], tuple]
#: One row of the FROM product: a tuple of bindings.
EnvRow = tuple[Binding, ...]


def evaluate_sql(query: "Query | str", db: Database, *,
                 outer_scope: Scope | None = None) -> Relation:
    """Evaluate a SQL query (AST or text) against ``db``."""
    if isinstance(query, str):
        query = parse_sql(query)
    names, rows = _eval_query(query, db, outer_scope)
    return _build_relation(names, rows)


def _build_relation(names: Sequence[str], rows: list[tuple]) -> Relation:
    unique_names: list[str] = []
    seen: dict[str, int] = {}
    for name in names:
        if name in seen:
            seen[name] += 1
            unique_names.append(f"{name}_{seen[name]}")
        else:
            seen[name] = 1
            unique_names.append(name)
    attributes = []
    for i, name in enumerate(unique_names):
        dtype = DataType.STRING
        for row in rows:
            if row[i] is not None:
                try:
                    dtype = infer_type(row[i])
                except ValueError:
                    dtype = DataType.STRING
                break
        attributes.append(Attribute(name, dtype))
    schema = RelationSchema("result", tuple(attributes))
    return Relation(schema, rows, validate=False)


# ---------------------------------------------------------------------------
# Query dispatch
# ---------------------------------------------------------------------------

def _eval_query(query: Query, db: Database,
                outer_scope: Scope | None) -> tuple[list[str], list[tuple]]:
    if isinstance(query, SetOpQuery):
        return _eval_setop(query, db, outer_scope)
    if isinstance(query, SelectQuery):
        return _eval_select(query, db, outer_scope)
    raise SQLEvaluationError(f"unknown query node {type(query).__name__}")


def _eval_setop(query: SetOpQuery, db: Database,
                outer_scope: Scope | None) -> tuple[list[str], list[tuple]]:
    left_names, left_rows = _eval_query(query.left, db, outer_scope)
    right_names, right_rows = _eval_query(query.right, db, outer_scope)
    if len(left_names) != len(right_names):
        raise SQLEvaluationError(
            f"{query.op.upper()}: operands have different arities "
            f"({len(left_names)} vs {len(right_names)})"
        )
    if query.op == "union":
        rows = left_rows + right_rows
        if not query.all:
            rows = _dedupe(rows)
    elif query.op == "intersect":
        if query.all:
            right_count = Counter(right_rows)
            rows = []
            for row in left_rows:
                if right_count[row] > 0:
                    right_count[row] -= 1
                    rows.append(row)
        else:
            right_set = set(right_rows)
            rows = _dedupe([row for row in left_rows if row in right_set])
    else:  # except
        if query.all:
            right_count = Counter(right_rows)
            rows = []
            for row in left_rows:
                if right_count[row] > 0:
                    right_count[row] -= 1
                else:
                    rows.append(row)
        else:
            right_set = set(right_rows)
            rows = _dedupe([row for row in left_rows if row not in right_set])

    rows = _apply_order_limit(rows, left_names, query.order_by, query.limit)
    return left_names, rows


def _apply_order_limit(rows: list[tuple], names: list[str],
                       order_by: tuple[OrderItem, ...], limit: int | None) -> list[tuple]:
    if order_by:
        def key(row: tuple):
            scope = Scope().bind("_out", names, row)
            parts = []
            for item in order_by:
                value = eval_expr(item.expr, scope)
                parts.append(_sort_key(value, item.ascending))
            return tuple(parts)

        rows = sorted(rows, key=key)
    if limit is not None:
        rows = rows[:limit]
    return rows


class _ReverseKey:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseKey) and self.key == other.key


def _sort_key(value: Any, ascending: bool):
    base = (value is None, type(value).__name__, value if value is not None else 0)
    return base if ascending else _ReverseKey(base)


# ---------------------------------------------------------------------------
# SELECT evaluation
# ---------------------------------------------------------------------------

def _eval_select(query: SelectQuery, db: Database,
                 outer_scope: Scope | None) -> tuple[list[str], list[tuple]]:
    env_rows = _expand_from(query.from_items, db, outer_scope)

    def subquery_eval(subquery: Any, scope: Scope) -> list[tuple]:
        _, rows = _eval_query(subquery, db, scope)
        return rows

    def scope_for(env: EnvRow) -> Scope:
        scope = Scope(outer_scope)
        for alias, names, values in env:
            scope.bind(alias, names, values)
        return scope

    if query.where is not None:
        env_rows = [env for env in env_rows
                    if eval_predicate(query.where, scope_for(env), subquery_eval)]

    grouped = bool(query.group_by) or query.having is not None or any(
        contains_aggregate(item.expr) for item in query.select_items
    )

    output_names = _output_names(query, db)

    if grouped:
        rows = _eval_grouped(query, env_rows, scope_for, subquery_eval)
    else:
        rows = []
        for env in env_rows:
            scope = scope_for(env)
            rows.append(_project_row(query, env, scope, subquery_eval))

    if query.distinct:
        rows = _dedupe(rows)

    rows = _order_and_limit(query, rows, output_names, env_rows, grouped,
                            scope_for, subquery_eval)
    return output_names, rows


def _order_and_limit(query: SelectQuery, rows: list[tuple], output_names: list[str],
                     env_rows: list[EnvRow], grouped: bool, scope_for, subquery_eval):
    """ORDER BY over output columns (by name/alias) or, failing that, input columns."""
    if query.order_by:
        def key(indexed_row: tuple[int, tuple]):
            index, row = indexed_row
            out_scope = Scope().bind("_out", output_names, row)
            parts = []
            for item in query.order_by:
                try:
                    value = eval_expr(item.expr, out_scope)
                except Exception:
                    # A qualified reference (S.rating) may match the output
                    # column by its bare name; otherwise fall back to the
                    # pre-projection row for non-grouped queries.
                    if isinstance(item.expr, Col) and item.expr.qualifier:
                        try:
                            value = eval_expr(Col(item.expr.name), out_scope)
                        except Exception:
                            value = None
                            if not grouped and index < len(env_rows):
                                value = eval_expr(item.expr, scope_for(env_rows[index]),
                                                  subquery_eval)
                    elif not grouped and index < len(env_rows):
                        value = eval_expr(item.expr, scope_for(env_rows[index]), subquery_eval)
                    else:
                        raise
                parts.append(_sort_key(value, item.ascending))
            return tuple(parts)

        indexed = sorted(enumerate(rows), key=key)
        rows = [row for _, row in indexed]
    if query.limit is not None:
        rows = rows[:query.limit]
    return rows


def _output_names(query: SelectQuery, db: Database) -> list[str]:
    names: list[str] = []
    if query.select_star or query.star_qualifiers:
        for alias, attr_names in _from_bindings_schema(query.from_items, db):
            if query.select_star or alias in query.star_qualifiers:
                names.extend(attr_names)
    for i, item in enumerate(query.select_items):
        names.append(item.output_name(i))
    return names


def _project_row(query: SelectQuery, env: EnvRow, scope: Scope, subquery_eval) -> tuple:
    values: list[Any] = []
    if query.select_star or query.star_qualifiers:
        for alias, _names, row_values in env:
            if query.select_star or alias in query.star_qualifiers:
                values.extend(row_values)
    for item in query.select_items:
        values.append(eval_expr(item.expr, scope, subquery_eval))
    return tuple(values)


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


# ---------------------------------------------------------------------------
# GROUP BY / aggregates
# ---------------------------------------------------------------------------

def _eval_grouped(query: SelectQuery, env_rows: list[EnvRow], scope_for, subquery_eval):
    groups: dict[tuple, list[EnvRow]] = {}
    order: list[tuple] = []
    for env in env_rows:
        scope = scope_for(env)
        key = tuple(eval_expr(expr, scope, subquery_eval) for expr in query.group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(env)

    if not query.group_by and not groups:
        groups[()] = []
        order.append(())

    rows = []
    for key in order:
        member_envs = groups[key]
        member_scopes = [scope_for(env) for env in member_envs]
        representative = member_scopes[0] if member_scopes else Scope()

        def eval_in_group(expr: Expr) -> Any:
            rewritten = _replace_aggregates(expr, member_scopes, subquery_eval)
            return eval_expr(rewritten, representative, subquery_eval)

        if query.having is not None:
            rewritten = _replace_aggregates(query.having, member_scopes, subquery_eval)
            if eval_expr(rewritten, representative, subquery_eval) is not True:
                continue

        values = []
        if query.select_star or query.star_qualifiers:
            raise SQLEvaluationError("SELECT * cannot be combined with GROUP BY / aggregates")
        for item in query.select_items:
            values.append(eval_in_group(item.expr))
        rows.append(tuple(values))
    return rows


def _replace_aggregates(expr: Expr, member_scopes: list[Scope], subquery_eval) -> Expr:
    """Replace aggregate calls by constants computed over the group."""
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return Const(compute_aggregate(expr, member_scopes, subquery_eval))
    if isinstance(expr, FuncCall):  # scalar function over an aggregate
        return FuncCall(expr.name,
                        tuple(_replace_aggregates(a, member_scopes, subquery_eval)
                              for a in expr.args),
                        expr.distinct)
    if isinstance(expr, BinOp):
        return BinOp(expr.op,
                     _replace_aggregates(expr.left, member_scopes, subquery_eval),
                     _replace_aggregates(expr.right, member_scopes, subquery_eval))
    if isinstance(expr, Neg):
        return Neg(_replace_aggregates(expr.operand, member_scopes, subquery_eval))
    if isinstance(expr, Comparison):
        return Comparison(_replace_aggregates(expr.left, member_scopes, subquery_eval),
                          expr.op,
                          _replace_aggregates(expr.right, member_scopes, subquery_eval))
    if isinstance(expr, And):
        return And(tuple(_replace_aggregates(o, member_scopes, subquery_eval)
                         for o in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(_replace_aggregates(o, member_scopes, subquery_eval)
                        for o in expr.operands))
    if isinstance(expr, Not):
        return Not(_replace_aggregates(expr.operand, member_scopes, subquery_eval))
    if isinstance(expr, IsNull):
        return IsNull(_replace_aggregates(expr.operand, member_scopes, subquery_eval),
                      expr.negated)
    if isinstance(expr, Between):
        return Between(_replace_aggregates(expr.operand, member_scopes, subquery_eval),
                       _replace_aggregates(expr.low, member_scopes, subquery_eval),
                       _replace_aggregates(expr.high, member_scopes, subquery_eval),
                       expr.negated)
    if isinstance(expr, InList):
        return InList(_replace_aggregates(expr.operand, member_scopes, subquery_eval),
                      tuple(_replace_aggregates(i, member_scopes, subquery_eval)
                            for i in expr.items),
                      expr.negated)
    if isinstance(expr, Like):
        return Like(_replace_aggregates(expr.operand, member_scopes, subquery_eval),
                    expr.pattern, expr.negated)
    return expr


# ---------------------------------------------------------------------------
# FROM clause expansion
# ---------------------------------------------------------------------------

def _from_bindings_schema(from_items: Sequence[FromItem], db: Database) -> list[tuple[str, tuple[str, ...]]]:
    """The (alias, attribute names) pairs contributed by a FROM list, in order."""
    out: list[tuple[str, tuple[str, ...]]] = []

    def visit(item: FromItem) -> None:
        if isinstance(item, TableRef):
            rel = db.relation(item.name)
            out.append((item.binding_name, rel.attribute_names))
        elif isinstance(item, DerivedTable):
            names, _rows = _eval_query(item.query, db, None)
            out.append((item.alias, tuple(names)))
        elif isinstance(item, Join):
            visit(item.left)
            visit(item.right)

    for item in from_items:
        visit(item)
    return out


def _expand_from(from_items: Sequence[FromItem], db: Database,
                 outer_scope: Scope | None) -> list[EnvRow]:
    env_rows: list[EnvRow] = [()]
    for item in from_items:
        item_rows = _expand_item(item, db, outer_scope)
        env_rows = [existing + new for existing in env_rows for new in item_rows]
    return env_rows


def _expand_item(item: FromItem, db: Database, outer_scope: Scope | None) -> list[EnvRow]:
    if isinstance(item, TableRef):
        rel = db.relation(item.name)
        names = rel.attribute_names
        alias = item.binding_name
        return [((alias, names, row),) for row in rel.rows()]

    if isinstance(item, DerivedTable):
        names, rows = _eval_query(item.query, db, outer_scope)
        return [((item.alias, tuple(names), row),) for row in rows]

    if isinstance(item, Join):
        return _expand_join(item, db, outer_scope)

    raise SQLEvaluationError(f"unknown FROM item {type(item).__name__}")


def _join_condition_holds(join: Join, left_env: EnvRow, right_env: EnvRow,
                          db: Database, outer_scope: Scope | None) -> bool:
    scope = Scope(outer_scope)
    for alias, names, values in left_env + right_env:
        scope.bind(alias, names, values)

    def subquery_eval(subquery: Any, inner_scope: Scope) -> list[tuple]:
        _, rows = _eval_query(subquery, db, inner_scope)
        return rows

    if join.natural or join.using:
        if join.using:
            shared = list(join.using)
        else:
            left_names = [n for _, names, _ in left_env for n in names]
            right_names = [n for _, names, _ in right_env for n in names]
            shared = [n for n in dict.fromkeys(left_names) if n in right_names]
        for name in shared:
            left_value = _lookup_in_env(left_env, name)
            right_value = _lookup_in_env(right_env, name)
            if left_value is None or right_value is None or left_value != right_value:
                return False
        return True
    if join.kind == "cross" or join.condition is None:
        return True
    return eval_predicate(join.condition, scope, subquery_eval)


def _lookup_in_env(env: EnvRow, name: str) -> Any:
    for _alias, names, values in env:
        for i, attr in enumerate(names):
            if attr.lower() == name.lower():
                return values[i]
    return None


def _null_env_like(env_rows: list[EnvRow], sample: EnvRow | None,
                   db: Database, item: FromItem, outer_scope: Scope | None) -> EnvRow:
    """An EnvRow with the same shape as the given side but all-NULL values."""
    if sample is not None:
        return tuple((alias, names, tuple(None for _ in names)) for alias, names, _ in sample)
    # The side had no rows at all: reconstruct its shape from the schema.
    shape = _from_bindings_schema([item], db)
    return tuple((alias, names, tuple(None for _ in names)) for alias, names in shape)


def _expand_join(join: Join, db: Database, outer_scope: Scope | None) -> list[EnvRow]:
    left_rows = _expand_item(join.left, db, outer_scope)
    right_rows = _expand_item(join.right, db, outer_scope)

    matched_right: set[int] = set()
    out: list[EnvRow] = []
    for left_env in left_rows:
        matched = False
        for j, right_env in enumerate(right_rows):
            if _join_condition_holds(join, left_env, right_env, db, outer_scope):
                matched = True
                matched_right.add(j)
                out.append(left_env + right_env)
        if not matched and join.kind in ("left", "full"):
            null_right = _null_env_like(right_rows, right_rows[0] if right_rows else None,
                                        db, join.right, outer_scope)
            out.append(left_env + null_right)
    if join.kind in ("right", "full"):
        for j, right_env in enumerate(right_rows):
            if j not in matched_right:
                null_left = _null_env_like(left_rows, left_rows[0] if left_rows else None,
                                           db, join.left, outer_scope)
                out.append(null_left + right_env)
    return out
