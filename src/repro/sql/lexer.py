"""SQL lexer.

Produces a flat token stream for the recursive-descent parser.  The token
vocabulary covers the SELECT fragment used throughout the tutorial: nested
subqueries with EXISTS / IN / ANY / ALL, set operations, grouping and
ordering.  Identifiers may be double-quoted; strings use single quotes with
``''`` escaping; comments (``-- ...`` and ``/* ... */``) are skipped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class SQLSyntaxError(Exception):
    """Raised for lexical or grammatical errors in SQL text."""


#: Keywords recognised by the parser (case-insensitive).
KEYWORDS = frozenset(
    """
    select distinct from where group by having order asc desc limit offset
    as and or not in exists between like is null true false
    union intersect except all any some
    join inner left right full outer natural cross on using
    count sum avg min max
    """.split()
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*|/\*.*?\*/)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<quoted_ident>"(?:[^"]|"")*")
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|!=|<=|>=|=|<|>|\(|\)|,|\.|\*|\+|-|/|%|;)
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    text: str
    position: int = 0

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.text in names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r})"


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SQLSyntaxError` on illegal characters."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if not match:
            raise SQLSyntaxError(
                f"unexpected character {sql[pos]!r} at position {pos}"
            )
        start = pos
        pos = match.end()
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "ws":
            continue
        if kind == "name":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, start))
            else:
                tokens.append(Token("name", text, start))
        elif kind == "string":
            tokens.append(Token("string", text[1:-1].replace("''", "'"), start))
        elif kind == "quoted_ident":
            tokens.append(Token("name", text[1:-1].replace('""', '"'), start))
        elif kind == "number":
            tokens.append(Token("number", text, start))
        else:
            tokens.append(Token("op", text, start))
    tokens.append(Token("eof", "", len(sql)))
    return tokens
