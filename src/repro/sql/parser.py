"""Recursive-descent SQL parser.

Grammar sketch (loosest to tightest binding)::

    query        := select_core ((UNION|INTERSECT|EXCEPT) [ALL] select_core)*
                    [ORDER BY order_list] [LIMIT n]
    select_core  := SELECT [DISTINCT] select_list FROM from_list
                    [WHERE expr] [GROUP BY expr_list] [HAVING expr]
    from_list    := from_item (',' from_item)*
    from_item    := table [alias] | '(' query ')' alias | from_item join_clause
    expr         := or_expr
    or_expr      := and_expr (OR and_expr)*
    and_expr     := not_expr (AND not_expr)*
    not_expr     := NOT not_expr | predicate
    predicate    := additive [comparison | IS NULL | IN ... | BETWEEN ... |
                    LIKE ... | EXISTS ...]
    primary      := literal | column | function | '(' query ')' | '(' expr ')'
"""

from __future__ import annotations

from repro.expr.ast import (
    And,
    Between,
    BinOp,
    BoolConst,
    Col,
    Comparison,
    Const,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Neg,
    Not,
    Or,
    QuantifiedComparison,
    ScalarSubquery,
    Star,
)
from repro.sql.ast import (
    DerivedTable,
    FromItem,
    Join,
    OrderItem,
    Query,
    SelectItem,
    SelectQuery,
    SetOpQuery,
    TableRef,
)
from repro.sql.lexer import SQLSyntaxError, Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.pos = 0

    # -- token plumbing ----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept_keyword(self, *names: str) -> Token | None:
        if self.peek().is_keyword(*names):
            return self.advance()
        return None

    def accept_op(self, *texts: str) -> Token | None:
        token = self.peek()
        if token.kind == "op" and token.text in texts:
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.accept_keyword(*names)
        if token is None:
            raise self._error(f"expected {'/'.join(n.upper() for n in names)}")
        return token

    def expect_op(self, text: str) -> Token:
        token = self.accept_op(text)
        if token is None:
            raise self._error(f"expected {text!r}")
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self.peek()
        found = token.text or "end of input"
        return SQLSyntaxError(f"{message}, found {found!r} (at position {token.position})")

    # -- queries -------------------------------------------------------------
    def parse_query(self) -> Query:
        query = self.parse_set_expression()
        order_by: tuple[OrderItem, ...] = ()
        limit: int | None = None
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = tuple(self.parse_order_list())
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.kind != "number":
                raise self._error("expected a number after LIMIT")
            limit = int(token.text)
        if order_by or limit is not None:
            if isinstance(query, SelectQuery):
                query = SelectQuery(
                    query.select_items, query.distinct, query.from_items, query.where,
                    query.group_by, query.having, order_by or query.order_by,
                    limit if limit is not None else query.limit,
                    query.select_star, query.star_qualifiers,
                )
            else:
                query = SetOpQuery(query.op, query.left, query.right, query.all,
                                   order_by, limit)
        return query

    def parse_set_expression(self) -> Query:
        left = self.parse_select_core()
        while True:
            token = self.peek()
            if token.is_keyword("union", "intersect", "except"):
                self.advance()
                all_flag = bool(self.accept_keyword("all"))
                right = self.parse_select_core()
                left = SetOpQuery(token.text, left, right, all_flag)
            else:
                return left

    def parse_select_core(self) -> Query:
        if self.accept_op("("):
            inner = self.parse_set_expression()
            self.expect_op(")")
            return inner
        self.expect_keyword("select")
        distinct = bool(self.accept_keyword("distinct"))
        self.accept_keyword("all")

        select_items: list[SelectItem] = []
        select_star = False
        star_qualifiers: list[str] = []
        while True:
            if self.accept_op("*"):
                select_star = True
            elif (self.peek().kind == "name" and self.peek(1).kind == "op"
                  and self.peek(1).text == "." and self.peek(2).kind == "op"
                  and self.peek(2).text == "*"):
                qualifier = self.advance().text
                self.advance()
                self.advance()
                star_qualifiers.append(qualifier)
            else:
                expr = self.parse_expression()
                alias = None
                if self.accept_keyword("as"):
                    alias = self._expect_identifier()
                elif self.peek().kind == "name":
                    alias = self.advance().text
                select_items.append(SelectItem(expr, alias))
            if not self.accept_op(","):
                break

        from_items: list[FromItem] = []
        if self.accept_keyword("from"):
            from_items.append(self.parse_from_item())
            while self.accept_op(","):
                from_items.append(self.parse_from_item())

        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()

        group_by: list[Expr] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expression())
            while self.accept_op(","):
                group_by.append(self.parse_expression())

        having = None
        if self.accept_keyword("having"):
            having = self.parse_expression()

        return SelectQuery(
            tuple(select_items), distinct, tuple(from_items), where,
            tuple(group_by), having, (), None, select_star, tuple(star_qualifiers),
        )

    def parse_order_list(self) -> list[OrderItem]:
        items = [self.parse_order_item()]
        while self.accept_op(","):
            items.append(self.parse_order_item())
        return items

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        ascending = True
        if self.accept_keyword("asc"):
            ascending = True
        elif self.accept_keyword("desc"):
            ascending = False
        return OrderItem(expr, ascending)

    # -- FROM clause -----------------------------------------------------
    def parse_from_item(self) -> FromItem:
        item = self.parse_table_primary()
        while True:
            natural = False
            if self.peek().is_keyword("natural"):
                natural = True
                self.advance()
            token = self.peek()
            if token.is_keyword("join", "inner", "left", "right", "full", "cross"):
                kind = "inner"
                if token.is_keyword("inner", "left", "right", "full", "cross"):
                    kind = token.text
                    self.advance()
                    self.accept_keyword("outer")
                self.expect_keyword("join")
                right = self.parse_table_primary()
                condition = None
                using: tuple[str, ...] = ()
                if not natural and kind != "cross":
                    if self.accept_keyword("on"):
                        condition = self.parse_expression()
                    elif self.accept_keyword("using"):
                        self.expect_op("(")
                        names = [self._expect_identifier()]
                        while self.accept_op(","):
                            names.append(self._expect_identifier())
                        self.expect_op(")")
                        using = tuple(names)
                item = Join(item, right, kind, condition, natural, using)
            elif natural:
                raise self._error("expected JOIN after NATURAL")
            else:
                return item

    def parse_table_primary(self) -> FromItem:
        if self.accept_op("("):
            query = self.parse_set_expression()
            self.expect_op(")")
            self.accept_keyword("as")
            alias = self._expect_identifier()
            return DerivedTable(query, alias)
        name = self._expect_identifier()
        alias = None
        if self.accept_keyword("as"):
            alias = self._expect_identifier()
        elif self.peek().kind == "name":
            alias = self.advance().text
        return TableRef(name, alias)

    def _expect_identifier(self) -> str:
        token = self.peek()
        if token.kind == "name":
            self.advance()
            return token.text
        # Aggregate names double as identifiers when not followed by "(".
        if token.kind == "keyword" and token.text in ("count", "sum", "avg", "min", "max"):
            self.advance()
            return token.text
        raise self._error("expected an identifier")

    # -- expressions -------------------------------------------------------
    def parse_expression(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        parts = [self.parse_and()]
        while self.accept_keyword("or"):
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_and(self) -> Expr:
        parts = [self.parse_not()]
        while self.accept_keyword("and"):
            parts.append(self.parse_not())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            # NOT EXISTS is a single predicate, not a negated EXISTS, so that
            # syntax-oriented visualizations can label it faithfully.
            if self.peek().is_keyword("exists"):
                self.advance()
                self.expect_op("(")
                query = self.parse_set_expression()
                self.expect_op(")")
                return Exists(query, negated=True)
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        if self.peek().is_keyword("exists"):
            self.advance()
            self.expect_op("(")
            query = self.parse_set_expression()
            self.expect_op(")")
            return Exists(query, negated=False)

        left = self.parse_additive()
        token = self.peek()

        if token.kind == "op" and token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            if self.peek().is_keyword("all", "any", "some"):
                quantifier = self.advance().text
                self.expect_op("(")
                query = self.parse_set_expression()
                self.expect_op(")")
                return QuantifiedComparison(left, token.text, quantifier, query)
            right = self.parse_additive()
            return Comparison(left, token.text, right)

        if token.is_keyword("is"):
            self.advance()
            negated = bool(self.accept_keyword("not"))
            self.expect_keyword("null")
            return IsNull(left, negated)

        negated = False
        if token.is_keyword("not"):
            nxt = self.peek(1)
            if nxt.is_keyword("in", "between", "like"):
                self.advance()
                negated = True
                token = self.peek()

        if token.is_keyword("in"):
            self.advance()
            self.expect_op("(")
            if self.peek().is_keyword("select") or (
                self.peek().kind == "op" and self.peek().text == "("
            ):
                query = self.parse_set_expression()
                self.expect_op(")")
                return InSubquery(left, query, negated)
            items = [self.parse_additive()]
            while self.accept_op(","):
                items.append(self.parse_additive())
            self.expect_op(")")
            return InList(left, tuple(items), negated)

        if token.is_keyword("between"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            return Between(left, low, high, negated)

        if token.is_keyword("like"):
            self.advance()
            pattern_token = self.advance()
            if pattern_token.kind != "string":
                raise self._error("expected a string literal after LIKE")
            return Like(left, pattern_token.text, negated)

        return left

    def parse_additive(self) -> Expr:
        expr = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self.advance()
                expr = BinOp(token.text, expr, self.parse_multiplicative())
            else:
                return expr

    def parse_multiplicative(self) -> Expr:
        expr = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self.advance()
                expr = BinOp(token.text, expr, self.parse_unary())
            else:
                return expr

    def parse_unary(self) -> Expr:
        if self.accept_op("-"):
            return Neg(self.parse_unary())
        if self.accept_op("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()

        if token.kind == "number":
            self.advance()
            return Const(float(token.text) if "." in token.text else int(token.text))
        if token.kind == "string":
            self.advance()
            return Const(token.text)
        if token.is_keyword("null"):
            self.advance()
            return Const(None)
        if token.is_keyword("true"):
            self.advance()
            return BoolConst(True)
        if token.is_keyword("false"):
            self.advance()
            return BoolConst(False)

        if token.is_keyword("count", "sum", "avg", "min", "max"):
            self.advance()
            self.expect_op("(")
            distinct = bool(self.accept_keyword("distinct"))
            if self.accept_op("*"):
                args: tuple[Expr, ...] = (Star(),)
            else:
                args = (self.parse_expression(),)
            self.expect_op(")")
            return FuncCall(token.text, args, distinct)

        if token.kind == "name":
            self.advance()
            if self.accept_op("("):
                args = ()
                if not (self.peek().kind == "op" and self.peek().text == ")"):
                    parsed = [self.parse_expression()]
                    while self.accept_op(","):
                        parsed.append(self.parse_expression())
                    args = tuple(parsed)
                self.expect_op(")")
                return FuncCall(token.text, args)
            if self.peek().kind == "op" and self.peek().text == ".":
                self.advance()
                column = self._expect_identifier()
                return Col(column, token.text)
            return Col(token.text)

        if token.kind == "op" and token.text == "(":
            self.advance()
            if self.peek().is_keyword("select"):
                query = self.parse_set_expression()
                self.expect_op(")")
                return ScalarSubquery(query)
            expr = self.parse_expression()
            self.expect_op(")")
            return expr

        raise self._error("expected an expression")


def parse_sql(sql: str) -> Query:
    """Parse a SQL query string into an AST."""
    parser = _Parser(tokenize(sql), sql)
    query = parser.parse_query()
    parser.accept_op(";")
    if parser.peek().kind != "eof":
        raise parser._error("unexpected trailing input")
    return query


def parse_sql_expression(text: str) -> Expr:
    """Parse a standalone SQL expression (used by tests and condition boxes)."""
    parser = _Parser(tokenize(text), text)
    expr = parser.parse_expression()
    if parser.peek().kind != "eof":
        raise parser._error("unexpected trailing input")
    return expr
