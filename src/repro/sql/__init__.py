"""SQL: lexer, parser, AST, formatter, and a direct evaluator."""

from repro.sql.ast import (
    DerivedTable,
    FromItem,
    Join,
    OrderItem,
    Query,
    SelectItem,
    SelectQuery,
    SetOpQuery,
    TableRef,
    base_tables,
    count_table_occurrences,
    walk_queries,
)
from repro.sql.evaluate import SQLEvaluationError, evaluate_sql
from repro.sql.format import format_query, format_query_pretty
from repro.sql.lexer import SQLSyntaxError, Token, tokenize
from repro.sql.parser import parse_sql, parse_sql_expression

__all__ = [
    "DerivedTable",
    "FromItem",
    "Join",
    "OrderItem",
    "Query",
    "SQLEvaluationError",
    "SQLSyntaxError",
    "SelectItem",
    "SelectQuery",
    "SetOpQuery",
    "TableRef",
    "Token",
    "base_tables",
    "count_table_occurrences",
    "evaluate_sql",
    "format_query",
    "format_query_pretty",
    "parse_sql",
    "parse_sql_expression",
    "tokenize",
    "walk_queries",
]
