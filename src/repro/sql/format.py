"""SQL formatting: render query ASTs back to readable SQL text."""

from __future__ import annotations

from repro.expr.format import format_expr
from repro.sql.ast import (
    DerivedTable,
    FromItem,
    Join,
    Query,
    SelectQuery,
    SetOpQuery,
    TableRef,
)


def _format_from_item(item: FromItem) -> str:
    if isinstance(item, TableRef):
        return f"{item.name} {item.alias}" if item.alias else item.name
    if isinstance(item, DerivedTable):
        return f"({format_query(item.query)}) {item.alias}"
    if isinstance(item, Join):
        left = _format_from_item(item.left)
        right = _format_from_item(item.right)
        words = []
        if item.natural:
            words.append("NATURAL")
        if item.kind == "inner":
            words.append("JOIN")
        elif item.kind == "cross":
            words.append("CROSS JOIN")
        else:
            words.append(f"{item.kind.upper()} OUTER JOIN")
        text = f"{left} {' '.join(words)} {right}"
        if item.condition is not None:
            text += f" ON {format_expr(item.condition, subquery_formatter=format_query)}"
        elif item.using:
            text += f" USING ({', '.join(item.using)})"
        return text
    raise TypeError(f"unknown FROM item {type(item).__name__}")


def format_query(query: Query, *, indent: int = 0) -> str:
    """Render a query AST as SQL text (single line per clause)."""
    if isinstance(query, SetOpQuery):
        op = query.op.upper() + (" ALL" if query.all else "")
        text = f"{format_query(query.left)} {op} {format_query(query.right)}"
        if query.order_by:
            keys = ", ".join(
                format_expr(o.expr) + ("" if o.ascending else " DESC") for o in query.order_by
            )
            text += f" ORDER BY {keys}"
        if query.limit is not None:
            text += f" LIMIT {query.limit}"
        return text

    if not isinstance(query, SelectQuery):
        raise TypeError(f"unknown query node {type(query).__name__}")

    fmt = lambda e: format_expr(e, subquery_formatter=format_query)  # noqa: E731

    select_parts = []
    if query.select_star:
        select_parts.append("*")
    select_parts.extend(f"{q}.*" for q in query.star_qualifiers)
    for item in query.select_items:
        text = fmt(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        select_parts.append(text)

    parts = ["SELECT " + ("DISTINCT " if query.distinct else "") + ", ".join(select_parts)]
    if query.from_items:
        parts.append("FROM " + ", ".join(_format_from_item(i) for i in query.from_items))
    if query.where is not None:
        parts.append("WHERE " + fmt(query.where))
    if query.group_by:
        parts.append("GROUP BY " + ", ".join(fmt(e) for e in query.group_by))
    if query.having is not None:
        parts.append("HAVING " + fmt(query.having))
    if query.order_by:
        keys = ", ".join(fmt(o.expr) + ("" if o.ascending else " DESC") for o in query.order_by)
        parts.append("ORDER BY " + keys)
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)


def format_query_pretty(query: Query, *, indent_width: int = 2) -> str:
    """Multi-line rendering with one clause per line and indented subqueries."""
    def go(q: Query, depth: int) -> str:
        pad = " " * (indent_width * depth)
        if isinstance(q, SetOpQuery):
            op = q.op.upper() + (" ALL" if q.all else "")
            return f"{go(q.left, depth)}\n{pad}{op}\n{go(q.right, depth)}"
        fmt = lambda e: format_expr(e, subquery_formatter=lambda s: format_query(s))  # noqa: E731
        lines = []
        select_parts = []
        if q.select_star:
            select_parts.append("*")
        select_parts.extend(f"{qq}.*" for qq in q.star_qualifiers)
        select_parts.extend(
            fmt(i.expr) + (f" AS {i.alias}" if i.alias else "") for i in q.select_items
        )
        lines.append(pad + "SELECT " + ("DISTINCT " if q.distinct else "") + ", ".join(select_parts))
        if q.from_items:
            lines.append(pad + "FROM " + ", ".join(_format_from_item(i) for i in q.from_items))
        if q.where is not None:
            lines.append(pad + "WHERE " + fmt(q.where))
        if q.group_by:
            lines.append(pad + "GROUP BY " + ", ".join(fmt(e) for e in q.group_by))
        if q.having is not None:
            lines.append(pad + "HAVING " + fmt(q.having))
        if q.order_by:
            keys = ", ".join(fmt(o.expr) + ("" if o.ascending else " DESC") for o in q.order_by)
            lines.append(pad + "ORDER BY " + keys)
        if q.limit is not None:
            lines.append(pad + f"LIMIT {q.limit}")
        return "\n".join(lines)

    return go(query, 0)
