"""SQL abstract syntax trees.

The AST covers the SELECT fragment the tutorial works with:

* select lists with expressions, aliases, ``*`` and ``T.*``;
* FROM lists with table aliases, derived tables, JOIN ... ON,
  NATURAL JOIN and CROSS JOIN;
* WHERE with the full expression language of :mod:`repro.expr`, including
  correlated subqueries via EXISTS / IN / ANY / ALL and scalar subqueries;
* GROUP BY / HAVING with aggregates;
* UNION / INTERSECT / EXCEPT (with or without ALL);
* ORDER BY and LIMIT.

WHERE-clause expressions reuse :mod:`repro.expr.ast`; subquery predicates
hold :class:`SelectQuery` / :class:`SetOpQuery` objects in their ``query``
fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union as TypingUnion

from repro.expr.ast import Col, Expr, Exists, InSubquery, QuantifiedComparison, ScalarSubquery


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list: an expression with an optional alias."""

    expr: Expr
    alias: str | None = None

    def output_name(self, position: int) -> str:
        """The column name this item contributes to the result schema."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, Col):
            return self.expr.name
        return f"col{position + 1}"


@dataclass(frozen=True)
class TableRef:
    """A base table in the FROM list, with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable:
    """A parenthesised subquery in the FROM list (must carry an alias)."""

    query: "Query"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join:
    """A join between two FROM items."""

    left: "FromItem"
    right: "FromItem"
    kind: str = "inner"  # inner | left | right | full | cross
    condition: Expr | None = None
    natural: bool = False
    using: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", self.kind.lower())
        object.__setattr__(self, "using", tuple(self.using))


FromItem = TypingUnion[TableRef, DerivedTable, Join]


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SelectQuery:
    """A single SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ... block."""

    select_items: tuple[SelectItem, ...] = ()
    distinct: bool = False
    from_items: tuple[FromItem, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    select_star: bool = False
    star_qualifiers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "select_items", tuple(self.select_items))
        object.__setattr__(self, "from_items", tuple(self.from_items))
        object.__setattr__(self, "group_by", tuple(self.group_by))
        object.__setattr__(self, "order_by", tuple(self.order_by))
        object.__setattr__(self, "star_qualifiers", tuple(self.star_qualifiers))

    def to_sql(self) -> str:
        from repro.sql.format import format_query

        return format_query(self)

    # -- structural helpers used by translators and diagrams ---------------
    def table_refs(self) -> list[TableRef]:
        """All base-table references in this query's own FROM list."""
        out: list[TableRef] = []

        def visit(item: FromItem) -> None:
            if isinstance(item, TableRef):
                out.append(item)
            elif isinstance(item, DerivedTable):
                pass
            elif isinstance(item, Join):
                visit(item.left)
                visit(item.right)

        for item in self.from_items:
            visit(item)
        return out

    def subqueries(self) -> list["Query"]:
        """Immediate subqueries appearing in WHERE/HAVING/SELECT/FROM."""
        out: list[Query] = []
        for expr in self._expressions():
            for node in expr.walk():
                if isinstance(node, (Exists, InSubquery, QuantifiedComparison, ScalarSubquery)):
                    if node.query is not None:
                        out.append(node.query)
        for item in self.from_items:
            if isinstance(item, DerivedTable):
                out.append(item.query)
        return out

    def _expressions(self) -> Iterator[Expr]:
        for item in self.select_items:
            yield item.expr
        if self.where is not None:
            yield self.where
        yield from self.group_by
        if self.having is not None:
            yield self.having
        for order in self.order_by:
            yield order.expr

    def nesting_depth(self) -> int:
        """Maximum depth of subquery nesting (1 for a flat query)."""
        depths = [q.nesting_depth() for q in self.subqueries()]
        return 1 + (max(depths) if depths else 0)


@dataclass(frozen=True)
class SetOpQuery:
    """UNION / INTERSECT / EXCEPT of two queries."""

    op: str
    left: "Query"
    right: "Query"
    all: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "op", self.op.lower())
        object.__setattr__(self, "order_by", tuple(self.order_by))
        if self.op not in ("union", "intersect", "except"):
            raise ValueError(f"unknown set operation {self.op!r}")

    def to_sql(self) -> str:
        from repro.sql.format import format_query

        return format_query(self)

    def table_refs(self) -> list[TableRef]:
        return self.left.table_refs() + self.right.table_refs()

    def subqueries(self) -> list["Query"]:
        return [self.left, self.right]

    def nesting_depth(self) -> int:
        return max(self.left.nesting_depth(), self.right.nesting_depth())


Query = TypingUnion[SelectQuery, SetOpQuery]


def walk_queries(query: Query) -> Iterator[Query]:
    """Yield ``query`` and every (transitively) nested query."""
    yield query
    for sub in query.subqueries():
        yield from walk_queries(sub)


def base_tables(query: Query) -> list[str]:
    """Distinct base-table names used anywhere in the query."""
    names: list[str] = []
    for q in walk_queries(query):
        for ref in q.table_refs():
            if ref.name not in names:
                names.append(ref.name)
    return names


def count_table_occurrences(query: Query) -> int:
    """Total number of table references (table *variables*) in the query."""
    return sum(len(q.table_refs()) for q in walk_queries(query))
