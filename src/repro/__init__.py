"""repro: diagrammatic representations of logical statements and relational queries.

A from-scratch, pure-Python reproduction of the system surveyed in
"A Comprehensive Tutorial on over 100 Years of Diagrammatic Representations
of Logical Statements and Relational Queries" (ICDE 2024): relational query
languages (SQL, RA, TRC, DRC, Datalog), translators between them, and the
diagrammatic formalisms that visualize them (QueryVis, Relational Diagrams,
Peirce's existential graphs, Euler/Venn diagrams, QBE, DFQL, and more).

Quickstart::

    from repro import visualize_sql, sailors_database

    diagram = visualize_sql(
        "SELECT S.sname FROM Sailors S WHERE S.sid IN (SELECT R.sid FROM Reserves R)"
    )
    print(diagram.to_ascii())
"""

__version__ = "1.0.0"

from repro.data import Database, Relation, sailors_database

__all__ = [
    "Database",
    "Relation",
    "sailors_database",
    "__version__",
]


def __getattr__(name: str):
    """Lazy access to the heavier subsystems (keeps ``import repro`` light)."""
    if name in ("visualize_sql", "QueryVisualizationPipeline", "explain_sql",
                "answer_any"):
        from repro.core import pipeline

        return getattr(pipeline, name)
    if name == "run_query":
        from repro.engine import run_query

        return run_query
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
