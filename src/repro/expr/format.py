"""Render expression ASTs back to SQL-ish text.

The formatter is used by the SQL pretty printer, by diagram labels (selection
predicates shown inside table boxes), and by error messages.  Subqueries are
rendered through a callback so that the expression package does not import
the SQL formatter.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.expr.ast import (
    And,
    Between,
    BinOp,
    BoolConst,
    Col,
    Comparison,
    Const,
    Exists,
    Expr,
    ExprError,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Neg,
    Not,
    Or,
    QuantifiedComparison,
    ScalarSubquery,
    Star,
)
from repro.data.types import format_value

#: Callback rendering an opaque subquery object to text.
SubqueryFormatter = Callable[[Any], str]


def _default_subquery_formatter(query: Any) -> str:
    to_sql = getattr(query, "to_sql", None)
    if callable(to_sql):
        return to_sql()
    return str(query)


def format_expr(expr: Expr, *, subquery_formatter: SubqueryFormatter | None = None) -> str:
    """Render ``expr`` as SQL-like text."""
    fmt = subquery_formatter or _default_subquery_formatter

    def sub(query: Any) -> str:
        return "(" + fmt(query) + ")"

    def go(node: Expr, parent_precedence: int = 0) -> str:
        if isinstance(node, Const):
            return format_value(node.value)
        if isinstance(node, BoolConst):
            return "TRUE" if node.value else "FALSE"
        if isinstance(node, Col):
            return node.qualified()
        if isinstance(node, Star):
            return f"{node.qualifier}.*" if node.qualifier else "*"
        if isinstance(node, Neg):
            return "-" + go(node.operand, 100)
        if isinstance(node, BinOp):
            return f"{go(node.left, 50)} {node.op} {go(node.right, 50)}"
        if isinstance(node, FuncCall):
            inner = ", ".join(go(a) for a in node.args)
            distinct = "DISTINCT " if node.distinct else ""
            return f"{node.name.upper()}({distinct}{inner})"
        if isinstance(node, ScalarSubquery):
            return sub(node.query)
        if isinstance(node, Comparison):
            return f"{go(node.left, 40)} {node.op} {go(node.right, 40)}"
        if isinstance(node, And):
            text = " AND ".join(go(o, 20) for o in node.operands)
            return f"({text})" if parent_precedence > 20 else text
        if isinstance(node, Or):
            text = " OR ".join(go(o, 10) for o in node.operands)
            return f"({text})" if parent_precedence > 10 else text
        if isinstance(node, Not):
            return "NOT (" + go(node.operand) + ")"
        if isinstance(node, IsNull):
            keyword = "IS NOT NULL" if node.negated else "IS NULL"
            return f"{go(node.operand, 40)} {keyword}"
        if isinstance(node, InList):
            keyword = "NOT IN" if node.negated else "IN"
            items = ", ".join(go(i) for i in node.items)
            return f"{go(node.operand, 40)} {keyword} ({items})"
        if isinstance(node, Between):
            keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
            return f"{go(node.operand, 40)} {keyword} {go(node.low, 40)} AND {go(node.high, 40)}"
        if isinstance(node, Like):
            keyword = "NOT LIKE" if node.negated else "LIKE"
            return f"{go(node.operand, 40)} {keyword} {format_value(node.pattern)}"
        if isinstance(node, Exists):
            keyword = "NOT EXISTS" if node.negated else "EXISTS"
            return f"{keyword} {sub(node.query)}"
        if isinstance(node, InSubquery):
            keyword = "NOT IN" if node.negated else "IN"
            return f"{go(node.operand, 40)} {keyword} {sub(node.query)}"
        if isinstance(node, QuantifiedComparison):
            return f"{go(node.left, 40)} {node.op} {node.quantifier.upper()} {sub(node.query)}"
        raise ExprError(f"cannot format node {type(node).__name__}")

    return go(expr)
