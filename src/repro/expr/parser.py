"""A small text parser for scalar/boolean expressions (no subqueries).

Used for the condition syntax of the Relational Algebra parser
(``select[color = 'red' and rating >= 7](...)``) and by the calculus
parsers.  Full SQL expressions — which can contain subqueries — are parsed by
:mod:`repro.sql.parser`; this parser intentionally covers only the
subquery-free fragment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.expr.ast import (
    And,
    Between,
    BinOp,
    BoolConst,
    Col,
    Comparison,
    Const,
    Expr,
    ExprError,
    FuncCall,
    InList,
    IsNull,
    Like,
    Neg,
    Not,
    Or,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
  | (?P<op><>|!=|<=|>=|=|<|>|\(|\)|,|\+|-|\*|/|%)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "in", "is", "null", "between", "like", "true", "false"}


@dataclass
class _Token:
    kind: str
    text: str


def tokenize_expression(text: str) -> list[_Token]:
    """Tokenize an expression string; raises :class:`ExprError` on junk."""
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise ExprError(f"unexpected character {text[pos]!r} at position {pos} in {text!r}")
        pos = match.end()
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "ws":
            continue
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", value.lower()))
        else:
            tokens.append(_Token(kind, value))
    tokens.append(_Token("eof", ""))
    return tokens


class _ExpressionParser:
    """Recursive-descent parser with SQL-ish operator precedence."""

    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            raise ExprError(f"expected {text or kind}, found {actual.text!r}")
        return token

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Expr:
        expr = self.parse_or()
        if self.peek().kind != "eof":
            raise ExprError(f"unexpected trailing input {self.peek().text!r}")
        return expr

    def parse_or(self) -> Expr:
        parts = [self.parse_and()]
        while self.accept("keyword", "or"):
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_and(self) -> Expr:
        parts = [self.parse_not()]
        while self.accept("keyword", "and"):
            parts.append(self.parse_not())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_not(self) -> Expr:
        if self.accept("keyword", "not"):
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "op" and token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_additive()
            return Comparison(left, token.text, right)
        if token.kind == "keyword" and token.text == "is":
            self.advance()
            negated = bool(self.accept("keyword", "not"))
            self.expect("keyword", "null")
            return IsNull(left, negated)
        negated = False
        if token.kind == "keyword" and token.text == "not":
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == "keyword" and nxt.text in ("in", "between", "like"):
                self.advance()
                negated = True
                token = self.peek()
        if token.kind == "keyword" and token.text == "in":
            self.advance()
            self.expect("op", "(")
            items = [self.parse_additive()]
            while self.accept("op", ","):
                items.append(self.parse_additive())
            self.expect("op", ")")
            return InList(left, tuple(items), negated)
        if token.kind == "keyword" and token.text == "between":
            self.advance()
            low = self.parse_additive()
            self.expect("keyword", "and")
            high = self.parse_additive()
            return Between(left, low, high, negated)
        if token.kind == "keyword" and token.text == "like":
            self.advance()
            pattern = self.expect("string").text
            return Like(left, pattern[1:-1].replace("''", "'"), negated)
        return left

    def parse_additive(self) -> Expr:
        expr = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self.advance()
                expr = BinOp(token.text, expr, self.parse_multiplicative())
            else:
                return expr

    def parse_multiplicative(self) -> Expr:
        expr = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self.advance()
                expr = BinOp(token.text, expr, self.parse_unary())
            else:
                return expr

    def parse_unary(self) -> Expr:
        if self.accept("op", "-"):
            return Neg(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return Const(float(token.text) if "." in token.text else int(token.text))
        if token.kind == "string":
            self.advance()
            return Const(token.text[1:-1].replace("''", "'"))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return BoolConst(token.text == "true")
        if token.kind == "keyword" and token.text == "null":
            self.advance()
            return Const(None)
        if token.kind == "name":
            self.advance()
            if self.peek().kind == "op" and self.peek().text == "(":
                self.advance()
                args: list[Expr] = []
                if not (self.peek().kind == "op" and self.peek().text == ")"):
                    args.append(self.parse_or())
                    while self.accept("op", ","):
                        args.append(self.parse_or())
                self.expect("op", ")")
                return FuncCall(token.text, tuple(args))
            if "." in token.text:
                qualifier, name = token.text.split(".", 1)
                return Col(name, qualifier)
            return Col(token.text)
        if self.accept("op", "("):
            expr = self.parse_or()
            self.expect("op", ")")
            return expr
        raise ExprError(f"unexpected token {token.text!r}")


def parse_expression(text: str) -> Expr:
    """Parse ``text`` into an expression AST (no subqueries supported)."""
    return _ExpressionParser(tokenize_expression(text)).parse()
