"""Shared scalar / boolean expression AST.

SQL ``WHERE`` clauses, Relational Algebra selection conditions, and the
condition boxes of several visual formalisms all speak the same expression
language: column references, constants, arithmetic, comparisons, boolean
connectives, and (for SQL) subquery predicates.  This module defines that
language once; :mod:`repro.expr.eval` evaluates it and
:mod:`repro.expr.format` renders it back to SQL-ish text.

Subquery-bearing nodes (:class:`Exists`, :class:`InSubquery`,
:class:`QuantifiedComparison`, :class:`ScalarSubquery`) hold the subquery as
an opaque object — in practice a :class:`repro.sql.ast.SelectQuery` — so that
this package does not depend on the SQL package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

#: Comparison operators in their canonical spelling.
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

#: Arithmetic operators supported in scalar expressions.
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")

#: Aggregate function names recognised by SQL and extended RA.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


class ExprError(Exception):
    """Raised for malformed expressions or evaluation failures."""


class Expr:
    """Base class of every expression node."""

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (not descending into subqueries)."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def columns(self) -> list["Col"]:
        """All column references in this expression (not inside subqueries)."""
        return [node for node in self.walk() if isinstance(node, Col)]

    def subqueries(self) -> list[Any]:
        """All opaque subquery objects referenced by this expression."""
        out = []
        for node in self.walk():
            query = getattr(node, "query", None)
            if query is not None:
                out.append(query)
        return out

    def is_predicate(self) -> bool:
        """True for nodes that denote truth values rather than scalars."""
        return isinstance(
            self,
            (Comparison, And, Or, Not, IsNull, InList, Between, Like,
             Exists, InSubquery, QuantifiedComparison, BoolConst),
        )


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (int, float, string, bool, or None for NULL)."""

    value: Any


@dataclass(frozen=True)
class BoolConst(Expr):
    """A literal truth value used as a predicate (e.g. WHERE TRUE)."""

    value: bool


@dataclass(frozen=True)
class Col(Expr):
    """A column reference, optionally qualified: ``S.sname`` or ``sname``."""

    name: str
    qualifier: str | None = None

    def qualified(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def with_qualifier(self, qualifier: str | None) -> "Col":
        return Col(self.name, qualifier)


@dataclass(frozen=True)
class Star(Expr):
    """The ``*`` of ``COUNT(*)`` or ``SELECT *`` (optionally ``T.*``)."""

    qualifier: str | None = None


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic binary operation."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITHMETIC_OPS:
            raise ExprError(f"unknown arithmetic operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Neg(Expr):
    """Unary arithmetic negation."""

    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call; aggregates (COUNT, SUM, ...) and scalar functions."""

    name: str
    args: tuple[Expr, ...] = ()
    distinct: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS

    def children(self) -> tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A subquery used as a scalar value (must return one row, one column)."""

    query: Any = None

    def children(self) -> tuple[Expr, ...]:
        return ()


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Comparison(Expr):
    """``left op right`` with op in =, <>, <, <=, >, >=."""

    left: Expr
    op: str
    right: Expr

    def __post_init__(self) -> None:
        op = {"!=": "<>", "==": "="}.get(self.op, self.op)
        object.__setattr__(self, "op", op)
        if op not in COMPARISON_OPS:
            raise ExprError(f"unknown comparison operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def flipped(self) -> "Comparison":
        """The same comparison with sides exchanged (e.g. ``a < b`` → ``b > a``)."""
        flip = {"=": "=", "<>": "<>", "<": ">", ">": "<", "<=": ">=", ">=": "<="}
        return Comparison(self.right, flip[self.op], self.left)

    def negated(self) -> "Comparison":
        """The complementary comparison (e.g. ``a < b`` → ``a >= b``)."""
        flip = {"=": "<>", "<>": "=", "<": ">=", ">": "<=", "<=": ">", ">=": "<"}
        return Comparison(self.left, flip[self.op], self.right)


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction."""

    operands: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def children(self) -> tuple[Expr, ...]:
        return self.operands


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction."""

    operands: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def children(self) -> tuple[Expr, ...]:
        return self.operands


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr = field(default_factory=lambda: BoolConst(True))

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with literal values."""

    operand: Expr
    items: tuple[Expr, ...] = ()
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, *self.items)


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, self.low, self.high)


@dataclass(frozen=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern`` with SQL ``%`` and ``_`` wildcards."""

    operand: Expr
    pattern: str
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (subquery)``."""

    query: Any = None
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (subquery)``."""

    operand: Expr
    query: Any = None
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class QuantifiedComparison(Expr):
    """``expr op ALL|ANY|SOME (subquery)``."""

    left: Expr
    op: str
    quantifier: str
    query: Any = None

    def __post_init__(self) -> None:
        op = {"!=": "<>", "==": "="}.get(self.op, self.op)
        object.__setattr__(self, "op", op)
        quantifier = self.quantifier.lower()
        if quantifier == "some":
            quantifier = "any"
        object.__setattr__(self, "quantifier", quantifier)
        if op not in COMPARISON_OPS:
            raise ExprError(f"unknown comparison operator {self.op!r}")
        if quantifier not in ("all", "any"):
            raise ExprError(f"unknown quantifier {self.quantifier!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left,)


# ---------------------------------------------------------------------------
# Construction and rewriting helpers
# ---------------------------------------------------------------------------

def conjunction(parts: Sequence[Expr]) -> Expr:
    """AND together ``parts``, flattening and simplifying trivial cases."""
    flat: list[Expr] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.operands)
        elif isinstance(part, BoolConst) and part.value:
            continue
        else:
            flat.append(part)
    if not flat:
        return BoolConst(True)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(parts: Sequence[Expr]) -> Expr:
    """OR together ``parts``, flattening and simplifying trivial cases."""
    flat: list[Expr] = []
    for part in parts:
        if isinstance(part, Or):
            flat.extend(part.operands)
        elif isinstance(part, BoolConst) and not part.value:
            continue
        else:
            flat.append(part)
    if not flat:
        return BoolConst(False)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def conjuncts(expr: Expr) -> list[Expr]:
    """Split a predicate into its top-level conjuncts."""
    if isinstance(expr, And):
        out: list[Expr] = []
        for part in expr.operands:
            out.extend(conjuncts(part))
        return out
    if isinstance(expr, BoolConst) and expr.value:
        return []
    return [expr]


def disjuncts(expr: Expr) -> list[Expr]:
    """Split a predicate into its top-level disjuncts."""
    if isinstance(expr, Or):
        out: list[Expr] = []
        for part in expr.operands:
            out.extend(disjuncts(part))
        return out
    return [expr]


def map_columns(expr: Expr, fn) -> Expr:
    """Return a copy of ``expr`` with every :class:`Col` replaced by ``fn(col)``.

    Subqueries are left untouched (they have their own scopes).
    """
    if isinstance(expr, Col):
        return fn(expr)
    if isinstance(expr, (Const, BoolConst, Star, ScalarSubquery, Exists)):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, map_columns(expr.left, fn), map_columns(expr.right, fn))
    if isinstance(expr, Neg):
        return Neg(map_columns(expr.operand, fn))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(map_columns(a, fn) for a in expr.args), expr.distinct)
    if isinstance(expr, Comparison):
        return Comparison(map_columns(expr.left, fn), expr.op, map_columns(expr.right, fn))
    if isinstance(expr, And):
        return And(tuple(map_columns(o, fn) for o in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(map_columns(o, fn) for o in expr.operands))
    if isinstance(expr, Not):
        return Not(map_columns(expr.operand, fn))
    if isinstance(expr, IsNull):
        return IsNull(map_columns(expr.operand, fn), expr.negated)
    if isinstance(expr, InList):
        return InList(map_columns(expr.operand, fn),
                      tuple(map_columns(i, fn) for i in expr.items), expr.negated)
    if isinstance(expr, Between):
        return Between(map_columns(expr.operand, fn), map_columns(expr.low, fn),
                       map_columns(expr.high, fn), expr.negated)
    if isinstance(expr, Like):
        return Like(map_columns(expr.operand, fn), expr.pattern, expr.negated)
    if isinstance(expr, InSubquery):
        return InSubquery(map_columns(expr.operand, fn), expr.query, expr.negated)
    if isinstance(expr, QuantifiedComparison):
        return QuantifiedComparison(map_columns(expr.left, fn), expr.op,
                                    expr.quantifier, expr.query)
    raise ExprError(f"map_columns: unhandled node {type(expr).__name__}")


def rename_qualifiers(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rewrite column qualifiers according to ``mapping`` (missing keys kept)."""
    def rename(col: Col) -> Col:
        if col.qualifier and col.qualifier in mapping:
            return Col(col.name, mapping[col.qualifier])
        return col

    return map_columns(expr, rename)


def contains_aggregate(expr: Expr) -> bool:
    """True iff the expression contains an aggregate function call."""
    return any(isinstance(n, FuncCall) and n.is_aggregate for n in expr.walk())


def contains_subquery(expr: Expr) -> bool:
    """True iff the expression contains any subquery node."""
    return any(
        isinstance(n, (Exists, InSubquery, QuantifiedComparison, ScalarSubquery))
        for n in expr.walk()
    )
