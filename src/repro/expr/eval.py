"""Expression evaluation with SQL three-valued logic.

Predicates evaluate to ``True``, ``False``, or ``None`` (UNKNOWN); scalar
expressions evaluate to a Python value or ``None`` (NULL).  A ``WHERE``
clause keeps a row only when its predicate evaluates to ``True``.

Evaluation happens against a :class:`Scope`, which resolves column
references, possibly through a chain of outer scopes (correlated
subqueries).  Subqueries themselves are evaluated through a callback so that
this package stays independent of the SQL evaluator.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.expr.ast import (
    And,
    Between,
    BinOp,
    BoolConst,
    Col,
    Comparison,
    Const,
    Exists,
    Expr,
    ExprError,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Neg,
    Not,
    Or,
    QuantifiedComparison,
    ScalarSubquery,
    Star,
)

#: Type of the callback used to evaluate subqueries: it receives the opaque
#: query object and the current scope, and returns an iterable of row tuples.
SubqueryEvaluator = Callable[[Any, "Scope"], Iterable[tuple]]


class NameResolutionError(ExprError):
    """Raised when a column reference cannot be resolved in any scope."""


class Scope:
    """Resolves column references to values.

    A scope holds a set of *bindings*: (alias, attribute names, row values).
    Unqualified names are looked up across all bindings and must be
    unambiguous.  If a name is not found locally, the lookup continues in the
    ``outer`` scope, which is how correlated subqueries see the outer row.
    """

    def __init__(self, outer: "Scope | None" = None) -> None:
        self.outer = outer
        self._bindings: list[tuple[str, tuple[str, ...], tuple]] = []

    def bind(self, alias: str, names: Sequence[str], row: Sequence[Any]) -> "Scope":
        """Add a binding; returns self for chaining."""
        self._bindings.append((alias, tuple(names), tuple(row)))
        return self

    @classmethod
    def from_mapping(cls, values: Mapping[str, Any], alias: str = "_row",
                     outer: "Scope | None" = None) -> "Scope":
        """Scope over a single dict row."""
        scope = cls(outer)
        names = tuple(values.keys())
        scope.bind(alias, names, tuple(values[n] for n in names))
        return scope

    def child(self) -> "Scope":
        """A new empty scope whose outer scope is this one."""
        return Scope(self)

    @property
    def aliases(self) -> list[str]:
        return [alias for alias, _, _ in self._bindings]

    def lookup(self, name: str, qualifier: str | None = None) -> Any:
        """Resolve a (possibly qualified) column name to its value."""
        matches = []
        for alias, names, row in self._bindings:
            if qualifier is not None and alias.lower() != qualifier.lower():
                continue
            for i, attr in enumerate(names):
                if attr.lower() == name.lower():
                    matches.append(row[i])
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise NameResolutionError(
                f"ambiguous column reference {qualifier + '.' if qualifier else ''}{name}"
            )
        if self.outer is not None:
            return self.outer.lookup(name, qualifier)
        target = f"{qualifier}.{name}" if qualifier else name
        raise NameResolutionError(f"unknown column reference {target}")

    def row_dict(self) -> dict[str, Any]:
        """Flatten all local bindings into a single dict (qualified keys win)."""
        out: dict[str, Any] = {}
        for alias, names, row in self._bindings:
            for attr, value in zip(names, row):
                out.setdefault(attr, value)
                out[f"{alias}.{attr}"] = value
        return out


def _like_to_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _compare(left: Any, op: str, right: Any) -> bool | None:
    """Three-valued comparison of two scalar values."""
    if left is None or right is None:
        return None
    if isinstance(left, bool) != isinstance(right, bool):
        # bool only compares with bool; mixed bool/number comparisons are errors
        raise ExprError(f"cannot compare {left!r} with {right!r}")
    if isinstance(left, str) != isinstance(right, str):
        raise ExprError(f"cannot compare {left!r} with {right!r}")
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExprError(f"unknown comparison operator {op!r}")  # pragma: no cover


def _and3(values: Iterable[bool | None]) -> bool | None:
    result: bool | None = True
    for v in values:
        if v is False:
            return False
        if v is None:
            result = None
    return result


def _or3(values: Iterable[bool | None]) -> bool | None:
    result: bool | None = False
    for v in values:
        if v is True:
            return True
        if v is None:
            result = None
    return result


def _not3(value: bool | None) -> bool | None:
    if value is None:
        return None
    return not value


def _first_column(rows: Iterable[tuple]) -> list[Any]:
    return [row[0] for row in rows]


def eval_expr(
    expr: Expr,
    scope: Scope,
    subquery_eval: SubqueryEvaluator | None = None,
) -> Any:
    """Evaluate ``expr`` in ``scope``.

    Scalar expressions return a value or ``None``; predicates return
    ``True``/``False``/``None``.
    """
    def need_subquery(node_name: str) -> SubqueryEvaluator:
        if subquery_eval is None:
            raise ExprError(f"{node_name} requires a subquery evaluator")
        return subquery_eval

    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, BoolConst):
        return expr.value
    if isinstance(expr, Col):
        return scope.lookup(expr.name, expr.qualifier)
    if isinstance(expr, Star):
        raise ExprError("'*' can only appear inside COUNT(*) or a SELECT list")
    if isinstance(expr, Neg):
        value = eval_expr(expr.operand, scope, subquery_eval)
        return None if value is None else -value
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, scope, subquery_eval)
        right = eval_expr(expr.right, scope, subquery_eval)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right == 0:
                raise ExprError("division by zero")
            result = left / right
            return result
        if expr.op == "%":
            if right == 0:
                raise ExprError("division by zero")
            return left % right
        raise ExprError(f"unknown operator {expr.op!r}")  # pragma: no cover
    if isinstance(expr, FuncCall):
        return _eval_scalar_function(expr, scope, subquery_eval)
    if isinstance(expr, ScalarSubquery):
        rows = list(need_subquery("scalar subquery")(expr.query, scope))
        if not rows:
            return None
        if len(rows) > 1 or len(rows[0]) != 1:
            raise ExprError("scalar subquery must return at most one row with one column")
        return rows[0][0]

    if isinstance(expr, Comparison):
        left = eval_expr(expr.left, scope, subquery_eval)
        right = eval_expr(expr.right, scope, subquery_eval)
        return _compare(left, expr.op, right)
    if isinstance(expr, And):
        return _and3(eval_expr(o, scope, subquery_eval) for o in expr.operands)
    if isinstance(expr, Or):
        return _or3(eval_expr(o, scope, subquery_eval) for o in expr.operands)
    if isinstance(expr, Not):
        return _not3(eval_expr(expr.operand, scope, subquery_eval))
    if isinstance(expr, IsNull):
        value = eval_expr(expr.operand, scope, subquery_eval)
        result = value is None
        return not result if expr.negated else result
    if isinstance(expr, InList):
        value = eval_expr(expr.operand, scope, subquery_eval)
        items = [eval_expr(i, scope, subquery_eval) for i in expr.items]
        result = _in_membership(value, items)
        return _not3(result) if expr.negated else result
    if isinstance(expr, Between):
        value = eval_expr(expr.operand, scope, subquery_eval)
        low = eval_expr(expr.low, scope, subquery_eval)
        high = eval_expr(expr.high, scope, subquery_eval)
        result = _and3([_compare(value, ">=", low), _compare(value, "<=", high)])
        return _not3(result) if expr.negated else result
    if isinstance(expr, Like):
        value = eval_expr(expr.operand, scope, subquery_eval)
        if value is None:
            return None
        result = bool(_like_to_regex(expr.pattern).match(str(value)))
        return not result if expr.negated else result
    if isinstance(expr, Exists):
        rows = list(need_subquery("EXISTS")(expr.query, scope))
        result = bool(rows)
        return not result if expr.negated else result
    if isinstance(expr, InSubquery):
        value = eval_expr(expr.operand, scope, subquery_eval)
        rows = list(need_subquery("IN")(expr.query, scope))
        items = _first_column(rows)
        result = _in_membership(value, items)
        return _not3(result) if expr.negated else result
    if isinstance(expr, QuantifiedComparison):
        value = eval_expr(expr.left, scope, subquery_eval)
        rows = list(need_subquery("ALL/ANY")(expr.query, scope))
        items = _first_column(rows)
        comparisons = [_compare(value, expr.op, item) for item in items]
        if expr.quantifier == "all":
            return _and3(comparisons)
        return _or3(comparisons)
    raise ExprError(f"cannot evaluate node {type(expr).__name__}")


def _in_membership(value: Any, items: Sequence[Any]) -> bool | None:
    """SQL IN semantics: TRUE if equal to some item, UNKNOWN if nulls interfere."""
    if value is None:
        return None if items else False
    saw_null = False
    for item in items:
        if item is None:
            saw_null = True
            continue
        try:
            if _compare(value, "=", item) is True:
                return True
        except ExprError:
            continue
    return None if saw_null else False


def _eval_scalar_function(
    call: FuncCall, scope: Scope, subquery_eval: SubqueryEvaluator | None
) -> Any:
    """Evaluate non-aggregate functions; aggregates are handled by SQL GROUP BY."""
    if call.is_aggregate:
        raise ExprError(
            f"aggregate {call.name.upper()} cannot be evaluated on a single row; "
            "it must appear in a SELECT list or HAVING clause"
        )
    args = [eval_expr(a, scope, subquery_eval) for a in call.args]
    name = call.name
    if name == "abs":
        return None if args[0] is None else abs(args[0])
    if name == "lower":
        return None if args[0] is None else str(args[0]).lower()
    if name == "upper":
        return None if args[0] is None else str(args[0]).upper()
    if name == "length":
        return None if args[0] is None else len(str(args[0]))
    if name == "coalesce":
        for value in args:
            if value is not None:
                return value
        return None
    raise ExprError(f"unknown function {call.name!r}")


def eval_predicate(
    expr: Expr,
    scope: Scope,
    subquery_eval: SubqueryEvaluator | None = None,
) -> bool:
    """Evaluate a predicate under WHERE-clause semantics (UNKNOWN → False)."""
    return eval_expr(expr, scope, subquery_eval) is True


def compute_aggregate(call: FuncCall, rows: Sequence[Scope],
                      subquery_eval: SubqueryEvaluator | None = None) -> Any:
    """Compute an aggregate over a group of row scopes.

    ``COUNT(*)`` counts rows; other aggregates skip NULL inputs, per SQL.
    """
    if not call.is_aggregate:
        raise ExprError(f"{call.name} is not an aggregate function")
    if call.name == "count" and call.args and isinstance(call.args[0], Star):
        return len(rows)
    if not call.args:
        raise ExprError(f"aggregate {call.name.upper()} needs an argument")
    values = []
    for scope in rows:
        value = eval_expr(call.args[0], scope, subquery_eval)
        if value is not None:
            values.append(value)
    if call.distinct:
        seen = []
        for v in values:
            if v not in seen:
                seen.append(v)
        values = seen
    if call.name == "count":
        return len(values)
    if not values:
        return None
    if call.name == "sum":
        return sum(values)
    if call.name == "avg":
        return sum(values) / len(values)
    if call.name == "min":
        return min(values)
    if call.name == "max":
        return max(values)
    raise ExprError(f"unknown aggregate {call.name!r}")  # pragma: no cover
