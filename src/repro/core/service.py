"""A thread-safe query service: the paper's serving loop under concurrency.

The Fig. 1/2 interaction is a *serving* loop — text in, answers out — and the
roadmap's north star is heavy concurrent traffic.
:class:`QueryVisualizationPipeline` is single-threaded by design;
:class:`QueryService` wraps one pipeline and makes the loop safe and fast
under concurrent readers and writers:

* **Frozen answers.**  Every relation the service returns is
  :meth:`~repro.data.relation.Relation.freeze`-d before it enters the shared
  result cache, so the cache-aliasing bug class (one caller mutates its
  answers, everyone else reads the poisoned object) raises at the mutation
  site instead of corrupting the cache.  Callers wanting a private mutable
  instance take ``.copy()``.
* **Lock-guarded caches, lock-free reads.**  The result cache is a bounded
  LRU keyed on ``(query fingerprint, database version)`` behind an internal
  lock; warm requests are one locked dictionary lookup and never serialize
  against each other or against execution.
* **Snapshot-validated misses.**  A cache miss executes *optimistically*:
  the database version is read before and after execution, and the answer is
  published (and returned) only if no write interleaved.  A torn execution
  is retried; after :attr:`max_retries` collisions the request runs once
  under the write lock, which excludes writers and guarantees a consistent
  snapshot.  Either way every answer the service returns equals a
  single-threaded evaluation at some database version ≥ the request's start
  — the invariant ``tests/test_service.py`` hammers.
* **Write API.**  Writers mutate through :meth:`add_row` /
  :meth:`add_rows` / the :meth:`writing` context manager, all of which hold
  the service's write lock.  Writes outside the service are tolerated by the
  optimistic readers (the storage layer publishes version bumps last) but
  forfeit the serialized-fallback guarantee — keep them out of hot paths.
* **Prepared queries.**  :meth:`prepare` parses once, compiles the plan into
  the pipeline's plan cache, and returns a :class:`PreparedQuery` handle
  whose :meth:`~PreparedQuery.answer` skips language detection and
  fingerprinting on every subsequent request — the repeated-serving fast
  path.
* **Versioned statistics.**  :meth:`table_stats` / :meth:`stats_snapshot`
  expose the optimizer's per-relation profiles from a thread-safe,
  version-tagged :class:`~repro.engine.stats.StatsCatalog`, so monitoring
  never races the optimizer.

Backend choice is per service: ``backend="parallel"`` serves each request
through the partitioned parallel executor (`repro.engine.parallel`), which
keeps large hash-join probes and group-bys off a single core.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.core.pipeline import (
    _MISS,
    PIPELINE_LANGUAGES,
    _LRUCache,
    QueryVisualizationPipeline,
    fingerprint_query,
)
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.stats import StatsCatalog, TableStats


@dataclass
class ServiceStats:
    """Counters for the service's serving behaviour (lock-protected)."""

    requests: int = 0
    result_hits: int = 0
    result_misses: int = 0
    validation_retries: int = 0
    serialized_runs: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + by)


class PreparedQuery:
    """A handle for repeated serving of one query (from :meth:`QueryService.prepare`).

    Holds the resolved language and fingerprint, so :meth:`answer` goes
    straight to the cache lookup; the plan was compiled at prepare time.
    """

    __slots__ = ("service", "text", "language", "fingerprint")

    def __init__(self, service: "QueryService", text: str, language: str,
                 fingerprint: str) -> None:
        self.service = service
        self.text = text
        self.language = language
        self.fingerprint = fingerprint

    def answer(self, *, warnings: list[str] | None = None) -> Relation:
        """Serve this query's answers (frozen; take ``.copy()`` to mutate)."""
        return self.service._serve(self.text, self.language, self.fingerprint,
                                   warnings)

    def __repr__(self) -> str:
        return f"PreparedQuery({self.language}: {self.text!r})"


class QueryService:
    """Thread-safe serving of the five-language pipeline (see module docs)."""

    def __init__(self, db: Database | None = None, *,
                 backend: str = "vectorized",
                 plan_cache_size: int = 256,
                 result_cache_size: int = 1024,
                 max_retries: int = 4) -> None:
        # The pipeline's own result cache is disabled: the service owns
        # result caching so entries are only published after snapshot
        # validation.  The (row-content-independent) plan cache stays on.
        self.pipeline = QueryVisualizationPipeline(
            db, backend=backend, plan_cache_size=plan_cache_size,
            result_cache_size=0)
        self.db = self.pipeline.db
        self.max_retries = max_retries
        self.stats = ServiceStats()
        self.table_statistics = StatsCatalog(self.db)
        self._results = _LRUCache(result_cache_size)
        self._write_lock = threading.RLock()

    # -- serving -----------------------------------------------------------

    def answer(self, text: str, *, language: str | None = None,
               warnings: list[str] | None = None) -> Relation:
        """Any-language text in, frozen answers out — safe under concurrency.

        Engine-fallback reasons are appended to the optional ``warnings``
        out-list, exactly like :meth:`QueryVisualizationPipeline.answer`
        (cached alongside the answer, so warm hits report them too).
        """
        resolved = self._resolve_language(text, language)
        return self._serve(text, resolved, fingerprint_query(text, resolved),
                           warnings)

    def prepare(self, text: str, language: str | None = None) -> PreparedQuery:
        """Parse + plan one query now; serve it repeatedly via the handle.

        Syntax errors surface here.  Queries outside the engine fragment
        still return a handle — their requests take the interpreter
        fallback, like unprepared serving.
        """
        resolved = self._resolve_language(text, language)
        self.pipeline.prepare_plan(text, resolved)  # parses; seeds plan cache
        return PreparedQuery(self, text, resolved,
                             fingerprint_query(text, resolved))

    def _resolve_language(self, text: str, language: str | None) -> str:
        from repro.engine import detect_language

        resolved = (language or detect_language(text)).lower()
        if resolved not in PIPELINE_LANGUAGES:
            raise ValueError(
                f"unknown language {resolved!r}; expected one of {PIPELINE_LANGUAGES}"
            )
        return resolved

    def _serve(self, text: str, language: str, fingerprint: str,
               warnings: list[str] | None) -> Relation:
        """Cache lookup + snapshot-validated execution (see module docs)."""
        self.stats.bump("requests")
        for attempt in range(self.max_retries):
            version = self.db.version
            key = (fingerprint, version)
            cached = self._results.get(key, _MISS)
            if cached is not _MISS:
                answers, cached_warnings = cached
                if warnings is not None:
                    warnings.extend(cached_warnings)
                self.stats.bump("result_hits")
                return answers
            # Each attempt collects its own warnings; only the attempt that
            # wins publishes them, so retries never duplicate messages.
            attempt_warnings: list[str] = []
            try:
                answers = self.pipeline.answer(text, language=language,
                                               warnings=attempt_warnings)
            except Exception:
                # Lock-free readers can observe a write mid-add (the row
                # published, the column-store append or version bump not
                # yet), which can surface as a transient executor error.
                # Retry; a *genuine* error reproduces deterministically in
                # the serialized run below and propagates from there.
                self.stats.bump("validation_retries")
                continue
            if self.db.version == version:
                return self._publish(key, answers, attempt_warnings, warnings)
            # A write interleaved: the answer may be torn across relations.
            self.stats.bump("validation_retries")
        # Contended: run once with writers excluded — guaranteed consistent.
        with self._write_lock:
            self.stats.bump("serialized_runs")
            key = (fingerprint, self.db.version)
            cached = self._results.get(key, _MISS)
            if cached is not _MISS:
                answers, cached_warnings = cached
                if warnings is not None:
                    warnings.extend(cached_warnings)
                self.stats.bump("result_hits")
                return answers
            attempt_warnings = []
            answers = self.pipeline.answer(text, language=language,
                                           warnings=attempt_warnings)
            return self._publish(key, answers, attempt_warnings, warnings)

    def _publish(self, key: tuple, answers: Relation,
                 attempt_warnings: list[str],
                 warnings: list[str] | None) -> Relation:
        self.stats.bump("result_misses")
        self._results.put(key, (answers.freeze(), tuple(attempt_warnings)))
        if warnings is not None:
            warnings.extend(attempt_warnings)
        return answers

    # -- writing -----------------------------------------------------------

    @contextmanager
    def writing(self) -> Iterator[Database]:
        """Exclusive write section: ``with service.writing() as db: ...``."""
        with self._write_lock:
            yield self.db

    def add_row(self, relation: str, row: Sequence[Any], *,
                validate: bool = True) -> int:
        """Append one row under the write lock; returns the new db version."""
        with self._write_lock:
            self.db.relation(relation).add(row, validate=validate)
            return self.db.version

    def add_rows(self, relation: str, rows: Iterable[Sequence[Any]], *,
                 validate: bool = True) -> int:
        """Append many rows as one exclusive write; returns the new version."""
        with self._write_lock:
            target = self.db.relation(relation)
            for row in rows:
                target.add(row, validate=validate)
            return self.db.version

    # -- statistics and introspection --------------------------------------

    def table_stats(self, relation: str) -> TableStats | None:
        """The optimizer's profile of one relation at its current version."""
        return self.table_statistics.table(relation)

    def stats_snapshot(self) -> tuple[int, dict[str, TableStats]]:
        """``(version, {relation: stats})`` — consistent across relations.

        Validated like a query: retried if a write interleaves, then taken
        under the write lock, so every profile in the dict describes the
        same database version.
        """
        for attempt in range(self.max_retries):
            version = self.db.version
            snapshot = {name: self.table_statistics.table(name)
                        for name in self.db.relation_names}
            if self.db.version == version:
                return version, snapshot
        with self._write_lock:
            version = self.db.version
            return version, {name: self.table_statistics.table(name)
                             for name in self.db.relation_names}

    def cache_info(self) -> dict[str, int]:
        """Service result-cache counters merged with the pipeline's plan cache."""
        pipeline_info = self.pipeline.cache_info()
        return {
            "requests": self.stats.requests,
            "result_entries": len(self._results),
            "result_hits": self.stats.result_hits,
            "result_misses": self.stats.result_misses,
            "validation_retries": self.stats.validation_retries,
            "serialized_runs": self.stats.serialized_runs,
            "plan_entries": pipeline_info["plan_entries"],
            "plan_hits": pipeline_info["plan_hits"],
            "plan_misses": pipeline_info["plan_misses"],
        }

    def clear_caches(self) -> None:
        self._results.clear()
        self.pipeline.clear_caches()
        self.stats = ServiceStats()
