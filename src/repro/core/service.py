"""A thread-safe query service: the paper's serving loop under concurrency.

The Fig. 1/2 interaction is a *serving* loop — text in, answers out — and the
roadmap's north star is heavy concurrent traffic.
:class:`QueryVisualizationPipeline` is single-threaded by design;
:class:`QueryService` wraps one pipeline and makes the loop safe and fast
under concurrent readers and writers:

* **Frozen answers.**  Every relation the service returns is
  :meth:`~repro.data.relation.Relation.freeze`-d before it enters the shared
  result cache, so the cache-aliasing bug class (one caller mutates its
  answers, everyone else reads the poisoned object) raises at the mutation
  site instead of corrupting the cache.  Callers wanting a private mutable
  instance take ``.copy()``.
* **Lock-guarded caches, lock-free reads.**  The result cache is a bounded
  LRU keyed on ``(query fingerprint, database version)`` behind an internal
  lock; warm requests are one locked dictionary lookup and never serialize
  against each other or against execution.
* **Snapshot-validated misses.**  A cache miss executes *optimistically*:
  the database version is read before and after execution, and the answer is
  published (and returned) only if no write interleaved.  A torn execution
  is retried; after :attr:`max_retries` collisions the request runs once
  under the write lock, which excludes writers and guarantees a consistent
  snapshot.  Either way every answer the service returns equals a
  single-threaded evaluation at some database version ≥ the request's start
  — the invariant ``tests/test_service.py`` hammers.
* **Write API.**  Writers mutate through :meth:`add_row` /
  :meth:`add_rows` / the :meth:`writing` context manager, all of which hold
  the service's write lock.  Writes outside the service are tolerated by the
  optimistic readers (the storage layer publishes version bumps last) but
  forfeit the serialized-fallback guarantee — keep them out of hot paths.
* **Prepared queries.**  :meth:`prepare` parses once, compiles the plan into
  the pipeline's plan cache, and returns a :class:`PreparedQuery` handle
  whose :meth:`~PreparedQuery.answer` skips language detection and
  fingerprinting on every subsequent request — the repeated-serving fast
  path.
* **Versioned statistics.**  :meth:`table_stats` / :meth:`stats_snapshot`
  expose the optimizer's per-relation profiles from a thread-safe,
  version-tagged :class:`~repro.engine.stats.StatsCatalog`, so monitoring
  never races the optimizer.

Backend choice is per service: ``backend="parallel"`` serves each request
through the partitioned parallel executor (`repro.engine.parallel`), which
keeps large hash-join probes and group-bys off a single core.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.core.pipeline import (
    _MISS,
    PIPELINE_LANGUAGES,
    _LRUCache,
    QueryVisualizationPipeline,
    fingerprint_query,
)
from repro.core.service_api import (
    QueryResult,
    ServiceBase,
    UnknownLanguageError,
    UnknownViewError,
    ViewConflictError,
)
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.kernels import cache_stats as kernel_cache_stats
from repro.engine.stats import StatsCatalog, TableStats


@dataclass
class ServiceStats:
    """Counters for the service's serving behaviour (lock-protected)."""

    requests: int = 0
    result_hits: int = 0
    result_misses: int = 0
    validation_retries: int = 0
    serialized_runs: int = 0
    view_hits: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + by)


class PreparedQuery:
    """A handle for repeated serving of one query (from :meth:`QueryService.prepare`).

    Holds the resolved language and fingerprint, so :meth:`answer` goes
    straight to the cache lookup; the plan was compiled at prepare time.
    """

    __slots__ = ("service", "text", "language", "fingerprint")

    def __init__(self, service: "QueryService", text: str, language: str,
                 fingerprint: str) -> None:
        self.service = service
        self.text = text
        self.language = language
        self.fingerprint = fingerprint

    def answer(self, *, warnings: list[str] | None = None) -> Relation:
        """Serve this query's answers (frozen; take ``.copy()`` to mutate)."""
        return self.service._serve(self.text, self.language, self.fingerprint,
                                   warnings)

    def query(self) -> QueryResult:
        """Serve as a structured envelope (see :meth:`QueryService.query`)."""
        warnings: list[str] = []
        relation = self.answer(warnings=warnings)
        return self.service._envelope(relation, self.language,
                                      self.fingerprint, warnings)

    def __repr__(self) -> str:
        return f"PreparedQuery({self.language}: {self.text!r})"


class MaterializedView:
    """One registered query, materialized once and maintained under appends.

    Obtained from :meth:`QueryService.register_view`.  The view always
    answers at a **single database version**: the frozen relation it serves
    was computed (or incrementally caught up) at :attr:`version`, and every
    refresh runs under the service's write lock, so a refresh can never
    observe half a batch.  Writes the view has absorbed do not invalidate it
    — that is the point: where the plain result cache keys on
    ``(fingerprint, version)`` and misses after every write, a registered
    view answers warm by executing only the *delta plans* of the appends.

    Maintenance strategy (chosen at registration, re-chosen on rebuild):

    * engine plans with a maintainable core — delta-plan maintenance via
      :mod:`repro.engine.delta` (bag, ``DISTINCT``, or per-group aggregate
      accumulators), with any finishing operators re-applied to the small
      core output;
    * recursive Datalog without negation — semi-naive evaluation resumed
      from the new frontier;
    * everything else — rebuild on refresh (correct, never incremental).

    A view also rebuilds when the database structure changes or a relation's
    bounded delta log no longer covers the window (it fell too far behind).

    ``refresh``: ``"lazy"`` (default) catches up on first access after a
    write; ``"eager"`` refreshes inside every service write call, so reads
    never pay refresh latency.
    """

    def __init__(self, service: "QueryService", name: str, text: str,
                 language: str, fingerprint: str, refresh: str) -> None:
        if refresh not in ("lazy", "eager"):
            raise ValueError(f"unknown refresh policy {refresh!r}; "
                             "expected 'lazy' or 'eager'")
        self.service = service
        self.name = name
        self.text = text
        self.language = language
        self.fingerprint = fingerprint
        self.refresh_policy = refresh
        self.refreshes = 0
        self.incremental_refreshes = 0
        self.rebuilds = 0
        self._plan: Any = None          # engine plan (non-Datalog views)
        self._core: Any = None          # maintainable core subplan
        self._program: Any = None       # parsed Datalog program
        self._maintainer: Any = None    # None => rebuild-on-refresh
        self._base_rels: tuple[str, ...] = ()
        self._anchors: dict[str, int] = {}
        self._warnings: tuple[str, ...] = ()
        self._structure_version = -1
        self._relation: Relation | None = None
        self._version = -1

    # -- serving -----------------------------------------------------------

    @property
    def version(self) -> int:
        """The database version the served relation is consistent at."""
        return self._version

    @property
    def strategy(self) -> str:
        """``"bag"`` / ``"distinct"`` / ``"aggregate"`` / ``"datalog"`` /
        ``"rebuild"`` — how refreshes are computed right now."""
        return self._maintainer.kind if self._maintainer is not None else "rebuild"

    def answer(self, *, warnings: list[str] | None = None) -> Relation:
        """The materialized answers (frozen), catching up first if stale."""
        # Read the version *first*: a refresh publishes the relation before
        # the version, so observing a current version guarantees the relation
        # read afterwards is at least that fresh.
        if self._version == self.service.db.version \
                and self._relation is not None:
            relation = self._relation
            if warnings is not None:
                warnings.extend(self._warnings)
            return relation
        with self.service._write_lock:
            relation = self._refresh_locked()
        if warnings is not None:
            warnings.extend(self._warnings)
        return relation

    def refresh(self) -> Relation:
        """Force a catch-up now (no-op when already current)."""
        with self.service._write_lock:
            return self._refresh_locked()

    def rebuild(self) -> Relation:
        """Force a from-scratch rematerialization now."""
        with self.service._write_lock:
            self.refreshes += 1
            return self._rebuild_locked()

    def info(self) -> dict[str, Any]:
        """Introspection: strategy, freshness, refresh counters."""
        relation = self._relation
        return {
            "name": self.name,
            "language": self.language,
            "strategy": self.strategy,
            "refresh_policy": self.refresh_policy,
            "version": self._version,
            "current": self._version == self.service.db.version,
            "rows": len(relation) if relation is not None else 0,
            "refreshes": self.refreshes,
            "incremental_refreshes": self.incremental_refreshes,
            "rebuilds": self.rebuilds,
            "base_relations": self._base_rels,
        }

    # -- maintenance (service write lock held) ------------------------------

    def _refresh_locked(self) -> Relation:
        db = self.service.db
        if self._relation is not None and self._version == db.version:
            return self._relation
        self.refreshes += 1
        if self._maintainer is None \
                or self._structure_version != db.structure_version:
            return self._rebuild_locked()
        changed = set()
        for rel in self._base_rels:
            if db.relation_version(rel) > self._anchors.get(rel, -1):
                changed.add(rel)
        if not changed:
            # Writes elsewhere in the database: output cannot have changed.
            self._version = db.version
            return self._relation
        from repro.engine.delta import DeltaRewriteError
        from repro.engine.lower import LoweringError
        from repro.engine.plan import DeltaUnavailable, PlanError

        try:
            self._maintainer.apply_delta(db, self._anchors, changed,
                                         self.service.backend)
        except (DeltaUnavailable, DeltaRewriteError, LoweringError, PlanError):
            # Fell behind the bounded delta log (or the program/plan turned
            # out unmaintainable after all): start over from scratch.
            return self._rebuild_locked()
        self.incremental_refreshes += 1
        self._publish(db)
        return self._relation

    def _rebuild_locked(self) -> Relation:
        from repro.engine.delta import (
            DatalogMaintainer,
            DeltaRewriteError,
            base_relations,
            build_maintainer,
        )

        db = self.service.db
        self.rebuilds += 1
        self._maintainer = None
        self._plan = self._core = None
        self._base_rels = ()
        # Warnings describe the *current* build: a rebuild that lands on a
        # maintainer strategy must not keep reporting an earlier fallback.
        self._warnings = ()
        warnings: list[str] = []
        pipeline = self.service.pipeline
        if self.language == "datalog":
            from repro.core.pipeline import _parse

            if self._program is None:
                self._program = _parse(self.text, "datalog")
            try:
                maintainer = DatalogMaintainer(self._program, db)
                maintainer.initialize(db, self.service.backend)
            except DeltaRewriteError:
                maintainer = None
            if maintainer is not None:
                self._maintainer = maintainer
                self._base_rels = maintainer.base_relations()
                self._finish_publish(db, maintainer.result_relation(), ())
                return self._relation
            relation = pipeline.answer(self.text, language="datalog",
                                       warnings=warnings)
            self._finish_publish(db, relation, tuple(warnings))
            return self._relation
        plan = pipeline.prepare_plan(self.text, self.language)
        if plan is not None:
            self._plan = plan
            try:
                maintainer, core = build_maintainer(plan, db)
                maintainer.initialize(db, self.service.backend)
                self._maintainer = maintainer
                self._core = core
                self._base_rels = base_relations(core)
                self._publish(db)
                return self._relation
            except DeltaRewriteError:
                pass
        relation = pipeline.answer(self.text, language=self.language,
                                   warnings=warnings)
        self._finish_publish(db, relation, tuple(warnings))
        return self._relation

    def _publish(self, db: Database) -> None:
        """Repackage the maintained state and publish (version set last)."""
        from repro.engine.delta import finish_rows, view_result_relation

        maintainer = self._maintainer
        if maintainer is not None and maintainer.kind == "datalog":
            relation = maintainer.result_relation()
        else:
            rows = finish_rows(db, self._plan, self._core, maintainer.rows())
            relation = view_result_relation(self._plan, rows)
        self._finish_publish(db, relation, self._warnings)

    def _finish_publish(self, db: Database, relation: Relation,
                        warnings: tuple[str, ...]) -> None:
        self._warnings = warnings
        self._anchors = {rel: db.relation_version(rel)
                         for rel in self._base_rels}
        self._structure_version = db.structure_version
        self._relation = relation.freeze()
        # Version last: a lock-free reader that observes the new version is
        # then guaranteed to observe the new relation too.
        self._version = db.version

    def __repr__(self) -> str:
        return (f"MaterializedView({self.name!r}, {self.language}: "
                f"{self.text!r}, strategy={self.strategy})")


class QueryService(ServiceBase):
    """Thread-safe serving of the five-language pipeline (see module docs).

    Implements :class:`~repro.core.service_api.ServiceAPI`; protocol front
    ends (the HTTP tier in :mod:`repro.server`) are written against that
    protocol, not this class.
    """

    def __init__(self, db: Database | None = None, *,
                 backend: str = "vectorized",
                 plan_cache_size: int = 256,
                 result_cache_size: int = 1024,
                 max_retries: int = 4) -> None:
        # The pipeline's own result cache is disabled: the service owns
        # result caching so entries are only published after snapshot
        # validation.  The (row-content-independent) plan cache stays on.
        self.pipeline = QueryVisualizationPipeline(
            db, backend=backend, plan_cache_size=plan_cache_size,
            result_cache_size=0)
        self.db = self.pipeline.db
        self.backend = self.pipeline.backend
        self.max_retries = max_retries
        self.stats = ServiceStats()
        self.table_statistics = StatsCatalog(self.db)
        self._results = _LRUCache(result_cache_size)
        self._write_lock = threading.RLock()
        self._views: dict[str, MaterializedView] = {}  # keyed by fingerprint
        self._views_by_name: dict[str, MaterializedView] = {}

    # -- serving -----------------------------------------------------------

    def answer(self, text: str, *, language: str | None = None,
               warnings: list[str] | None = None) -> Relation:
        """Any-language text in, frozen answers out — safe under concurrency.

        Engine-fallback reasons are appended to the optional ``warnings``
        out-list, exactly like :meth:`QueryVisualizationPipeline.answer`
        (cached alongside the answer, so warm hits report them too).
        """
        resolved = self._resolve_language(text, language)
        return self._serve(text, resolved, fingerprint_query(text, resolved),
                           warnings)

    def prepare(self, text: str, *, language: str | None = None) -> PreparedQuery:
        """Parse + plan one query now; serve it repeatedly via the handle.

        Syntax errors surface here.  Queries outside the engine fragment
        still return a handle — their requests take the interpreter
        fallback, like unprepared serving.
        """
        resolved = self._resolve_language(text, language)
        self.pipeline.prepare_plan(text, resolved)  # parses; seeds plan cache
        return PreparedQuery(self, text, resolved,
                             fingerprint_query(text, resolved))

    def _resolve_language(self, text: str, language: str | None) -> str:
        from repro.engine import detect_language

        resolved = (language or detect_language(text)).lower()
        if resolved not in PIPELINE_LANGUAGES:
            raise UnknownLanguageError(
                f"unknown language {resolved!r}; expected one of {PIPELINE_LANGUAGES}",
                detail={"language": resolved,
                        "expected": list(PIPELINE_LANGUAGES)},
            )
        return resolved

    def _cache_version(self) -> Any:
        """The version token the result cache keys on (hashable, equatable).

        The base service uses the database's scalar version counter;
        :class:`~repro.core.sharded_service.ShardedQueryService` overrides
        this with the per-shard version *vector*, so its cache keys record
        exactly which shard states an answer was computed against.
        Snapshot validation compares tokens by equality, so any override
        must change whenever a write lands.
        """
        return self.db.version

    def _serve(self, text: str, language: str, fingerprint: str,
               warnings: list[str] | None) -> Relation:
        """Cache lookup + snapshot-validated execution (see module docs)."""
        self.stats.bump("requests")
        view = self._views.get(fingerprint)
        if view is not None:
            # Registered views are served from their materialization: writes
            # they have absorbed never invalidate, and a stale view catches
            # up by delta plans instead of recomputing.
            self.stats.bump("view_hits")
            return view.answer(warnings=warnings)
        for _attempt in range(self.max_retries):
            version = self._cache_version()
            key = (fingerprint, version)
            cached = self._results.get(key, _MISS)
            if cached is not _MISS:
                answers, cached_warnings = cached
                if warnings is not None:
                    warnings.extend(cached_warnings)
                self.stats.bump("result_hits")
                return answers
            # Each attempt collects its own warnings; only the attempt that
            # wins publishes them, so retries never duplicate messages.
            attempt_warnings: list[str] = []
            try:
                answers = self.pipeline.answer(text, language=language,
                                               warnings=attempt_warnings)
            except Exception:
                # Lock-free readers can observe a write mid-add (the row
                # published, the column-store append or version bump not
                # yet), which can surface as a transient executor error.
                # Retry; a *genuine* error reproduces deterministically in
                # the serialized run below and propagates from there.
                self.stats.bump("validation_retries")
                continue
            if self._cache_version() == version:
                return self._publish(key, answers, attempt_warnings, warnings)
            # A write interleaved: the answer may be torn across relations.
            self.stats.bump("validation_retries")
        # Contended: run once with writers excluded — guaranteed consistent.
        with self._write_lock:
            self.stats.bump("serialized_runs")
            key = (fingerprint, self._cache_version())
            cached = self._results.get(key, _MISS)
            if cached is not _MISS:
                answers, cached_warnings = cached
                if warnings is not None:
                    warnings.extend(cached_warnings)
                self.stats.bump("result_hits")
                return answers
            attempt_warnings = []
            answers = self.pipeline.answer(text, language=language,
                                           warnings=attempt_warnings)
            return self._publish(key, answers, attempt_warnings, warnings)

    def _publish(self, key: tuple, answers: Relation,
                 attempt_warnings: list[str],
                 warnings: list[str] | None) -> Relation:
        self.stats.bump("result_misses")
        self._results.put(key, (answers.freeze(), tuple(attempt_warnings)))
        if warnings is not None:
            warnings.extend(attempt_warnings)
        return answers

    # -- materialized views -------------------------------------------------

    def register_view(self, text: str, *, language: str | None = None,
                      name: str | None = None,
                      refresh: str = "lazy") -> MaterializedView:
        """Materialize a query once and keep it maintained under appends.

        Returns a :class:`MaterializedView` handle (also reachable via
        :meth:`view` by name).  Registering the same query text again
        returns the existing handle — unless the call asks for a different
        ``name`` or ``refresh`` policy, which raises instead of silently
        ignoring the request.  ``refresh`` is ``"lazy"`` (catch up on first
        stale read) or ``"eager"`` (catch up inside every service write).
        Subsequent :meth:`answer` / prepared-handle requests for this query
        are served from the view.
        """
        resolved = self._resolve_language(text, language)
        fingerprint = fingerprint_query(text, resolved)
        with self._write_lock:
            existing = self._views.get(fingerprint)
            if existing is not None:
                if (name is not None and name != existing.name) \
                        or refresh != existing.refresh_policy:
                    raise ViewConflictError(
                        f"query already registered as view {existing.name!r} "
                        f"with refresh={existing.refresh_policy!r}; "
                        "unregister it first to change name or policy",
                        detail={"name": existing.name,
                                "refresh": existing.refresh_policy},
                    )
                return existing
            view_name = name if name is not None else f"view_{fingerprint[:8]}"
            if view_name in self._views_by_name:
                raise ViewConflictError(
                    f"a view named {view_name!r} already exists",
                    detail={"name": view_name})
            view = self._make_view(view_name, text, resolved, fingerprint,
                                   refresh)
            view.refreshes += 1
            view._rebuild_locked()  # initial materialization
            self._views[fingerprint] = view
            self._views_by_name[view_name] = view
            return view

    def _make_view(self, name: str, text: str, language: str,
                   fingerprint: str, refresh: str) -> MaterializedView:
        """Construct the (unmaterialized) view object for :meth:`register_view`.

        :class:`~repro.core.sharded_service.ShardedQueryService` overrides
        this to substitute its shard-aware view class; the registration
        bookkeeping above is shared.
        """
        return MaterializedView(self, name, text, language, fingerprint,
                                refresh)

    def view(self, name: str) -> MaterializedView:
        """Look up a registered view by name.

        Raises :class:`~repro.core.service_api.UnknownViewError` (a
        ``KeyError`` subclass) when absent.
        """
        try:
            return self._views_by_name[name]
        except KeyError:
            raise UnknownViewError(f"no view named {name!r}",
                                   detail={"name": name}) from None

    def views(self) -> tuple[MaterializedView, ...]:
        """All registered views, in registration order."""
        return tuple(self._views.values())

    def unregister_view(self, view: "MaterializedView | str") -> None:
        """Drop a view (by handle or name); its query serves normally again."""
        with self._write_lock:
            if isinstance(view, str):
                view = self.view(view)
            self._views.pop(view.fingerprint, None)
            self._views_by_name.pop(view.name, None)

    def _refresh_eager_views_locked(self) -> None:
        for view in self._views.values():
            if view.refresh_policy == "eager":
                view._refresh_locked()

    # -- writing -----------------------------------------------------------

    @contextmanager
    def writing(self) -> Iterator[Database]:
        """Exclusive write section: ``with service.writing() as db: ...``.

        Eagerly registered views catch up before the lock is released, so
        they are already current when the first post-write read arrives.
        """
        with self._write_lock:
            yield self.db
            self._refresh_eager_views_locked()

    def add_row(self, relation: str, row: Sequence[Any], *,
                validate: bool = True) -> int:
        """Append one row under the write lock; returns the new db version."""
        with self._write_lock:
            self.db.relation(relation).add(row, validate=validate)
            self._refresh_eager_views_locked()
            return self.db.version

    def add_rows(self, relation: str, rows: Iterable[Sequence[Any]], *,
                 validate: bool = True) -> int:
        """Append many rows as one exclusive write; returns the new version.

        The batch publishes a **single** version bump (via
        :meth:`Relation.add_rows`), so version-window arithmetic counts one
        write per batch instead of one per row.
        """
        with self._write_lock:
            self.db.relation(relation).add_rows(rows, validate=validate)
            self._refresh_eager_views_locked()
            return self.db.version

    # -- statistics and introspection --------------------------------------

    @property
    def backend_name(self) -> str:
        """The executor backend's name, whether stored by name or instance.

        The base service keeps the backend as its registry *name* (the
        pipeline resolves it per call); the sharded services pin a private
        backend *instance*.  This property reconciles the two shapes for
        introspection/metrics.
        """
        backend = self.backend
        return backend if isinstance(backend, str) else backend.name

    def table_stats(self, relation: str) -> TableStats | None:
        """The optimizer's profile of one relation at its current version."""
        return self.table_statistics.table(relation)

    def stats_snapshot(self) -> tuple[int, dict[str, TableStats]]:
        """``(version, {relation: stats})`` — consistent across relations.

        Validated like a query: retried if a write interleaves, then taken
        under the write lock, so every profile in the dict describes the
        same database version.
        """
        for _attempt in range(self.max_retries):
            version = self.db.version
            snapshot = {name: self.table_statistics.table(name)
                        for name in self.db.relation_names}
            if self.db.version == version:
                return version, snapshot
        with self._write_lock:
            version = self.db.version
            return version, {name: self.table_statistics.table(name)
                             for name in self.db.relation_names}

    def cache_info(self) -> dict[str, int]:
        """Service result-cache counters merged with the pipeline's plan cache.

        The ``kernel_cache_*`` keys snapshot the **process-wide** derived-
        structure cache of :mod:`repro.engine.kernels` (build tables, code
        translations): unlike the per-service result/plan counters they are
        shared by every executor in the process — for per-backend
        attribution use ``execution_counts()`` on the sharded/process
        services.
        """
        pipeline_info = self.pipeline.cache_info()
        kernel_info = kernel_cache_stats()
        return {
            "requests": self.stats.requests,
            "result_entries": len(self._results),
            "result_hits": self.stats.result_hits,
            "result_misses": self.stats.result_misses,
            "validation_retries": self.stats.validation_retries,
            "serialized_runs": self.stats.serialized_runs,
            "views": len(self._views),
            "view_hits": self.stats.view_hits,
            "plan_entries": pipeline_info["plan_entries"],
            "plan_hits": pipeline_info["plan_hits"],
            "plan_misses": pipeline_info["plan_misses"],
            "kernel_cache_entries": kernel_info["entries"],
            "kernel_cache_bytes": kernel_info["bytes"],
            "kernel_cache_hits": kernel_info["hits"],
            "kernel_cache_misses": kernel_info["misses"],
            "kernel_cache_evictions": kernel_info["evictions"],
        }

    def clear_caches(self) -> None:
        self._results.clear()
        self.pipeline.clear_caches()
        self.stats = ServiceStats()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the backend's and database's OS resources.

        Worker pools (``"parallel"`` threads, ``"process"`` workers) shut
        down and shared-memory page segments are unlinked.  Idempotent, and
        the service stays usable — pools and segments are recreated lazily
        on the next request — so closing is about prompt resource release
        (the interpreter-exit hooks in :mod:`repro.engine.lifecycle` cover
        services that are never closed).  Note that named backends resolve
        to process-wide singletons whose pools are shared across services.
        """
        close_backend = getattr(self.backend, "close", None)
        if callable(close_backend):
            close_backend()
        close_db = getattr(self.db, "close", None)
        if callable(close_db):
            close_db()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
