"""Standalone SVG rendering of diagrams (no external dependencies)."""

from __future__ import annotations

import html

from repro.core.diagram import Diagram
from repro.core.layout import LINE_HEIGHT, NODE_PADDING, compute_layout

_GROUP_COLORS = {
    "solid": ("#f8f8f8", "#666666", "4,0"),
    "dashed": ("none", "#999999", "6,4"),
    "negation": ("#fdf2f2", "#b03030", "4,0"),
    "cut": ("#f4f4fb", "#404080", "4,0"),
    "shaded": ("#d9d9d9", "#666666", "4,0"),
}

_EDGE_DASH = {"solid": None, "dashed": "6,4", "bold": None, "double": None}


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def render_svg(diagram: Diagram) -> str:
    """Render a diagram as a self-contained SVG document string."""
    layout = compute_layout(diagram)
    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{layout.width:.0f}" '
        f'height="{layout.height:.0f}" viewBox="0 0 {layout.width:.0f} {layout.height:.0f}" '
        f'font-family="Menlo, Consolas, monospace" font-size="12">'
    )
    parts.append(
        "<defs><marker id='arrow' viewBox='0 0 10 10' refX='9' refY='5' "
        "markerWidth='7' markerHeight='7' orient='auto-start-reverse'>"
        "<path d='M 0 0 L 10 5 L 0 10 z' fill='#333'/></marker></defs>"
    )
    parts.append(f"<title>{_esc(diagram.name)} ({_esc(diagram.formalism)})</title>")
    parts.append(
        f'<rect x="0" y="0" width="{layout.width:.0f}" height="{layout.height:.0f}" '
        'fill="white"/>'
    )

    # Groups first (outermost first so inner boxes draw on top).
    ordered_groups = sorted(diagram.groups.values(), key=lambda g: diagram.group_depth(g.id))
    for group in ordered_groups:
        box = layout.group_boxes.get(group.id)
        if box is None:
            continue
        fill, stroke, dash = _GROUP_COLORS.get(group.style, _GROUP_COLORS["solid"])
        dash_attr = f' stroke-dasharray="{dash}"' if dash != "4,0" else ""
        double = ""
        if group.style == "negation":
            double = (
                f'<rect x="{box.x + 3:.1f}" y="{box.y + 3:.1f}" '
                f'width="{box.width - 6:.1f}" height="{box.height - 6:.1f}" '
                f'fill="none" stroke="{stroke}" stroke-width="1"/>'
            )
        parts.append(
            f'<rect x="{box.x:.1f}" y="{box.y:.1f}" width="{box.width:.1f}" '
            f'height="{box.height:.1f}" rx="6" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="1.5"{dash_attr}/>' + double
        )
        if group.label:
            parts.append(
                f'<text x="{box.x + 6:.1f}" y="{box.y + 13:.1f}" fill="{stroke}" '
                f'font-weight="bold">{_esc(group.label)}</text>'
            )

    # Edges under nodes so boxes stay crisp.
    for edge in diagram.edges:
        x1, y1 = layout.anchor(diagram, edge.source, edge.source_port)
        x2, y2 = layout.anchor(diagram, edge.target, edge.target_port)
        dash = _EDGE_DASH.get(edge.style)
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        width = 2.4 if edge.style == "bold" else 1.3
        marker = ' marker-end="url(#arrow)"' if edge.directed else ""
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="#333" stroke-width="{width}"{dash_attr}{marker}/>'
        )
        if edge.label:
            mx, my = (x1 + x2) / 2.0, (y1 + y2) / 2.0 - 3
            parts.append(
                f'<text x="{mx:.1f}" y="{my:.1f}" text-anchor="middle" '
                f'fill="#222">{_esc(edge.label)}</text>'
            )

    # Nodes.
    for node in diagram.nodes.values():
        box = layout.node_boxes.get(node.id)
        if box is None:
            continue
        if node.shape == "point":
            cx, cy = box.center
            parts.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="4" fill="#111"/>')
            if node.label:
                parts.append(
                    f'<text x="{cx + 7:.1f}" y="{cy + 4:.1f}" fill="#111">{_esc(node.label)}</text>'
                )
            continue
        if node.shape == "plaintext":
            parts.append(
                f'<text x="{box.x:.1f}" y="{box.y + LINE_HEIGHT - 4:.1f}" '
                f'fill="#111">{_esc(node.label)}</text>'
            )
            for i, row in enumerate(node.rows):
                parts.append(
                    f'<text x="{box.x:.1f}" y="{box.y + (i + 2) * LINE_HEIGHT - 4:.1f}" '
                    f'fill="#333">{_esc(row)}</text>'
                )
            continue
        shape_attrs = 'rx="10"' if node.shape == "ellipse" else 'rx="3"'
        fill = "#ffffff" if node.kind != "operator" else "#eef4ff"
        parts.append(
            f'<rect x="{box.x:.1f}" y="{box.y:.1f}" width="{box.width:.1f}" '
            f'height="{box.height:.1f}" {shape_attrs} fill="{fill}" stroke="#222" '
            'stroke-width="1.2"/>'
        )
        text_y = box.y + LINE_HEIGHT - 4
        if node.label:
            parts.append(
                f'<text x="{box.x + box.width / 2:.1f}" y="{text_y:.1f}" '
                f'text-anchor="middle" font-weight="bold">{_esc(node.label)}</text>'
            )
            if node.rows:
                parts.append(
                    f'<line x1="{box.x:.1f}" y1="{box.y + LINE_HEIGHT + 1:.1f}" '
                    f'x2="{box.x + box.width:.1f}" y2="{box.y + LINE_HEIGHT + 1:.1f}" '
                    'stroke="#222" stroke-width="0.8"/>'
                )
            text_y += LINE_HEIGHT
        for row in node.rows:
            parts.append(
                f'<text x="{box.x + NODE_PADDING:.1f}" y="{text_y:.1f}">{_esc(row)}</text>'
            )
            text_y += LINE_HEIGHT

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(diagram: Diagram, path: str) -> str:
    """Render and write the SVG to ``path``; returns the path."""
    svg = render_svg(diagram)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    return path
