"""Core query-visualization framework: diagram model, layout, renderers,
pipeline, query patterns, principles, formalism registry, and metrics."""

from repro.core.diagram import (
    Diagram,
    DiagramEdge,
    DiagramError,
    DiagramGroup,
    DiagramNode,
    merge_side_by_side,
)
from repro.core.layout import Box, Layout, compute_layout
from repro.core.metrics import DiagramMetrics, compare, measure, size_table
from repro.core.patterns import (
    PatternError,
    PatternPredicate,
    PatternVariable,
    QueryPattern,
    isomorphic,
    normalize_trc,
    pattern_of,
    same_pattern,
)
from repro.core.pipeline import (
    PIPELINE_LANGUAGES,
    CacheStats,
    PipelineResult,
    QueryVisualizationPipeline,
    answer_any,
    explain_calculus,
    explain_query,
    explain_sql,
    fingerprint_query,
    visualize_sql,
)
from repro.core.service import (
    MaterializedView,
    PreparedQuery,
    QueryService,
    ServiceStats,
)
from repro.core.service_api import (
    OverloadedError,
    QueryResult,
    ServiceAPI,
    ServiceError,
    wrap_service_error,
)
from repro.core.sharded_service import ShardedQueryService
from repro.core.principles import (
    PRINCIPLES,
    Principle,
    PrincipleScore,
    principles_table,
    score_formalism,
)
from repro.core.registry import (
    FEATURES,
    REGISTRY,
    FormalismInfo,
    coverage_matrix,
    formalism,
    implemented_formalisms,
)
from repro.core.render_dot import render_dot
from repro.core.render_svg import render_svg, save_svg
from repro.core.render_text import render_text

__all__ = [
    "Box",
    "Diagram",
    "DiagramEdge",
    "DiagramError",
    "DiagramGroup",
    "DiagramMetrics",
    "DiagramNode",
    "FEATURES",
    "FormalismInfo",
    "Layout",
    "MaterializedView",
    "PRINCIPLES",
    "PIPELINE_LANGUAGES",
    "PatternError",
    "PatternPredicate",
    "PatternVariable",
    "CacheStats",
    "PipelineResult",
    "PreparedQuery",
    "answer_any",
    "fingerprint_query",
    "explain_calculus",
    "Principle",
    "PrincipleScore",
    "OverloadedError",
    "QueryPattern",
    "QueryResult",
    "QueryService",
    "QueryVisualizationPipeline",
    "ServiceAPI",
    "ServiceError",
    "ServiceStats",
    "ShardedQueryService",
    "wrap_service_error",
    "REGISTRY",
    "compare",
    "compute_layout",
    "coverage_matrix",
    "explain_query",
    "explain_sql",
    "formalism",
    "implemented_formalisms",
    "isomorphic",
    "measure",
    "merge_side_by_side",
    "normalize_trc",
    "pattern_of",
    "principles_table",
    "render_dot",
    "render_svg",
    "render_text",
    "same_pattern",
    "save_svg",
    "score_formalism",
    "size_table",
    "visualize_sql",
]
