"""A small containment-aware layout engine.

The layout problem for query diagrams is dominated by *nesting*: groups
(query blocks, negation boxes, Peirce cuts) contain nodes and other groups,
and the containment must be visually exact.  The engine lays out each group's
direct children left-to-right in rows (a simple shelf packing), sizes the
group to its contents, and recurses.  Edges are drawn as straight lines
between node (or row) anchor points; no crossing minimisation is attempted —
good enough for the diagram sizes of the tutorial, and entirely dependency
free.

All dimensions are in abstract pixels; the SVG renderer uses them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.diagram import Diagram, DiagramNode

#: Font metrics for the default 12px monospace-ish font.
CHAR_WIDTH = 7.2
LINE_HEIGHT = 18.0
NODE_PADDING = 8.0
GROUP_PADDING = 16.0
GROUP_LABEL_HEIGHT = 18.0
SIBLING_GAP = 24.0
ROW_GAP = 24.0
MAX_ROW_WIDTH = 720.0


@dataclass
class Box:
    """An axis-aligned rectangle with absolute coordinates."""

    x: float = 0.0
    y: float = 0.0
    width: float = 0.0
    height: float = 0.0

    @property
    def right(self) -> float:
        return self.x + self.width

    @property
    def bottom(self) -> float:
        return self.y + self.height

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)


@dataclass
class Layout:
    """Computed geometry: one box per node and per group, plus total size."""

    node_boxes: dict[str, Box] = field(default_factory=dict)
    group_boxes: dict[str, Box] = field(default_factory=dict)
    width: float = 0.0
    height: float = 0.0

    def anchor(self, diagram: Diagram, node_id: str, port: str | None) -> tuple[float, float]:
        """The point an edge should attach to (node centre or row centre)."""
        box = self.node_boxes[node_id]
        node = diagram.nodes[node_id]
        if port and port in node.rows:
            index = node.rows.index(port)
            header = LINE_HEIGHT if node.label else 0.0
            y = box.y + header + (index + 0.5) * LINE_HEIGHT + NODE_PADDING / 2
            return (box.x + box.width / 2.0, min(y, box.bottom - 2))
        return box.center


def node_size(node: DiagramNode) -> tuple[float, float]:
    """Intrinsic size of a node based on its text."""
    if node.shape == "point":
        return (10.0, 10.0)
    lines = [node.label] if node.label else []
    lines.extend(node.rows)
    if not lines:
        lines = [" "]
    width = max(len(line) for line in lines) * CHAR_WIDTH + 2 * NODE_PADDING
    height = len(lines) * LINE_HEIGHT + NODE_PADDING
    return (max(width, 30.0), max(height, 22.0))


def compute_layout(diagram: Diagram) -> Layout:
    """Compute absolute positions for every node and group of ``diagram``."""
    layout = Layout()

    def place(group_id: str | None, origin_x: float, origin_y: float) -> tuple[float, float]:
        """Lay out the children of ``group_id`` starting at the given origin.

        Returns the (width, height) of the laid-out content.
        """
        nodes, groups = diagram.children_of(group_id)
        items: list[tuple[str, str]] = [("node", n.id) for n in nodes]
        items.extend(("group", g.id) for g in groups)

        cursor_x, cursor_y = origin_x, origin_y
        row_height = 0.0
        max_width = 0.0

        for kind, item_id in items:
            if kind == "node":
                width, height = node_size(diagram.nodes[item_id])
            else:
                width, height = _measure_group(item_id)

            if cursor_x > origin_x and cursor_x + width > origin_x + MAX_ROW_WIDTH:
                cursor_x = origin_x
                cursor_y += row_height + ROW_GAP
                row_height = 0.0

            if kind == "node":
                layout.node_boxes[item_id] = Box(cursor_x, cursor_y, width, height)
            else:
                _place_group(item_id, cursor_x, cursor_y)

            cursor_x += width + SIBLING_GAP
            row_height = max(row_height, height)
            max_width = max(max_width, cursor_x - origin_x - SIBLING_GAP)

        total_height = (cursor_y - origin_y) + row_height
        return (max_width, total_height)

    # Measuring is place() without committing coordinates; easiest correct
    # implementation is to place into scratch space and then translate.
    measured: dict[str, tuple[float, float]] = {}

    def _measure_group(group_id: str) -> tuple[float, float]:
        if group_id in measured:
            return measured[group_id]
        nodes, groups = diagram.children_of(group_id)
        width = 0.0
        height = 0.0
        cursor_x = 0.0
        cursor_y = 0.0
        row_height = 0.0
        for kind, item_id in [("node", n.id) for n in nodes] + [("group", g.id) for g in groups]:
            if kind == "node":
                w, h = node_size(diagram.nodes[item_id])
            else:
                w, h = _measure_group(item_id)
            if cursor_x > 0 and cursor_x + w > MAX_ROW_WIDTH:
                cursor_x = 0.0
                cursor_y += row_height + ROW_GAP
                row_height = 0.0
            cursor_x += w + SIBLING_GAP
            row_height = max(row_height, h)
            width = max(width, cursor_x - SIBLING_GAP)
            height = cursor_y + row_height
        group = diagram.groups[group_id]
        label_height = GROUP_LABEL_HEIGHT if group.label else 0.0
        size = (width + 2 * GROUP_PADDING,
                height + 2 * GROUP_PADDING + label_height)
        measured[group_id] = size
        return size

    def _place_group(group_id: str, x: float, y: float) -> None:
        width, height = _measure_group(group_id)
        layout.group_boxes[group_id] = Box(x, y, width, height)
        group = diagram.groups[group_id]
        label_height = GROUP_LABEL_HEIGHT if group.label else 0.0
        place(group_id, x + GROUP_PADDING, y + GROUP_PADDING + label_height)

    content_width, content_height = place(None, GROUP_PADDING, GROUP_PADDING)
    # The top-level place() already positioned nested groups via _place_group.
    layout.width = max(
        [content_width + 2 * GROUP_PADDING]
        + [box.right + GROUP_PADDING for box in layout.node_boxes.values()]
        + [box.right + GROUP_PADDING for box in layout.group_boxes.values()]
        or [100.0]
    )
    layout.height = max(
        [content_height + 2 * GROUP_PADDING]
        + [box.bottom + GROUP_PADDING for box in layout.node_boxes.values()]
        + [box.bottom + GROUP_PADDING for box in layout.group_boxes.values()]
        or [60.0]
    )
    return layout
