"""ASCII rendering of diagrams.

Terminal-friendly output: nested groups are drawn as indented, bordered
blocks containing their nodes; edges (which are hard to draw as lines in
plain text) are listed underneath in a "connections" section, written in
terms of node labels and attribute rows.  The result is deterministic, which
makes it convenient for golden tests.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramGroup, DiagramNode

_GROUP_MARK = {
    "solid": " ",
    "dashed": "~",
    "negation": "NOT",
    "cut": "NOT",
    "shaded": "#",
}


def _node_lines(node: DiagramNode) -> list[str]:
    if node.shape == "point":
        return [f"* {node.label}".rstrip()]
    content = [node.label] if node.label else []
    content.extend(f"  {row}" for row in node.rows)
    if not content:
        content = [node.id]
    width = max(len(line) for line in content)
    top = "+" + "-" * (width + 2) + "+"
    out = [top]
    for index, line in enumerate(content):
        out.append(f"| {line.ljust(width)} |")
        if index == 0 and node.label and node.rows:
            out.append("|" + "-" * (width + 2) + "|")
    out.append(top)
    return out


def _block(lines: list[str], label: str, marker: str) -> list[str]:
    width = max([len(line) for line in lines] + [len(label) + len(marker) + 4, 8])
    header = f"={marker}= {label} ".ljust(width + 4, "=") if (label or marker.strip()) \
        else "=" * (width + 4)
    out = [header]
    for line in lines:
        out.append(f"| {line.ljust(width)} |")
    out.append("=" * (width + 4))
    return out


def render_text(diagram: Diagram) -> str:
    """Render the diagram as ASCII art plus a textual connection list."""
    def render_group_content(group_id: str | None) -> list[str]:
        nodes, groups = diagram.children_of(group_id)
        lines: list[str] = []
        for node in nodes:
            if lines:
                lines.append("")
            lines.extend(_node_lines(node))
        for group in groups:
            if lines:
                lines.append("")
            lines.extend(render_group(group))
        return lines or ["(empty)"]

    def render_group(group: DiagramGroup) -> list[str]:
        content = render_group_content(group.id)
        marker = _GROUP_MARK.get(group.style, " ")
        return _block(content, group.label, marker)

    lines = [f"[{diagram.formalism}] {diagram.name}",
             "=" * max(30, len(diagram.name) + len(diagram.formalism) + 4)]
    lines.extend(render_group_content(None))

    if diagram.edges:
        lines.append("")
        lines.append("connections:")
        for edge in diagram.edges:
            source = diagram.nodes[edge.source]
            target = diagram.nodes[edge.target]
            source_text = source.label or source.id
            target_text = target.label or target.id
            if edge.source_port:
                source_text += f".{edge.source_port}"
            if edge.target_port:
                target_text += f".{edge.target_port}"
            arrow = "-->" if edge.directed else "---"
            if edge.style == "dashed":
                arrow = "-->" if edge.directed else "- -"
            label = f"  [{edge.label}]" if edge.label else ""
            lines.append(f"  {source_text} {arrow} {target_text}{label}")
    return "\n".join(lines)
