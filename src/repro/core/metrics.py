"""Diagram metrics, including the "three abuses of the line" analysis.

Part 6 of the tutorial distils a design lesson: many formalisms overload the
humble line as a geometric mark with several unrelated meanings —

1. *identity / join*: a line asserts that two things denote the same value
   (Peirce's Line of Identity, QueryVis join edges);
2. *membership / predication*: a line attaches an element to a set or a
   predicate to its argument (conceptual graphs, constraint-diagram spiders);
3. *reading order / flow*: a line merely sequences the reading of the diagram
   (QueryVis arrows, DFQL dataflow edges).

Diagrams built by this project tag every edge with a ``kind``; this module
aggregates those tags so experiment T7 can report, per formalism, how many
distinct jobs the line is doing — a quantitative rendering of the lesson.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.diagram import Diagram

#: Edge-kind → which of the three "line jobs" it performs.
LINE_ROLES = {
    "join": "identity",
    "identity": "identity",
    "equality": "identity",
    "predicate": "identity",
    "membership": "membership",
    "attachment": "membership",
    "spider": "membership",
    "argument": "membership",
    "reading-order": "flow",
    "dataflow": "flow",
    "flow": "flow",
    "edge": "other",
}


@dataclass
class DiagramMetrics:
    """Aggregated statistics for one diagram."""

    formalism: str
    name: str
    counts: dict[str, int] = field(default_factory=dict)
    line_roles: dict[str, int] = field(default_factory=dict)
    total_ink: int = 0

    @property
    def distinct_line_roles(self) -> int:
        """How many different jobs lines perform in this diagram (the "abuse" count)."""
        return sum(1 for role, count in self.line_roles.items()
                   if count > 0 and role != "other")


def measure(diagram: Diagram) -> DiagramMetrics:
    """Compute metrics for one diagram."""
    roles: dict[str, int] = {"identity": 0, "membership": 0, "flow": 0, "other": 0}
    for edge in diagram.edges:
        role = LINE_ROLES.get(edge.kind, "other")
        roles[role] += 1
    return DiagramMetrics(
        formalism=diagram.formalism,
        name=diagram.name,
        counts=diagram.element_counts(),
        line_roles=roles,
        total_ink=diagram.total_ink(),
    )


def compare(diagrams: dict[str, Diagram]) -> dict[str, DiagramMetrics]:
    """Measure several diagrams (keyed by any label, e.g. formalism name)."""
    return {label: measure(diagram) for label, diagram in diagrams.items()}


def size_table(metrics: dict[str, DiagramMetrics]) -> str:
    """A plain-text table of diagram sizes (used by examples and benches)."""
    headers = ["formalism", "nodes", "rows", "edges", "groups", "depth", "ink", "line roles"]
    rows = []
    for label, metric in metrics.items():
        counts = metric.counts
        rows.append([
            label,
            str(counts.get("nodes", 0)),
            str(counts.get("attribute_rows", 0)),
            str(counts.get("edges", 0)),
            str(counts.get("groups", 0)),
            str(counts.get("max_nesting_depth", 0)),
            str(metric.total_ink),
            str(metric.distinct_line_roles),
        ])
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
              for i in range(len(headers))]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
