"""The formalism registry: every diagrammatic representation the tutorial surveys.

Each entry records the metadata the tutorial uses when comparing formalisms
(community, year, underlying textual language, relational completeness) plus
a *capability vector*: which query features the formalism can represent with
a dedicated visual element.  For the formalisms implemented in
:mod:`repro.diagrams`, the entry also names the builder module so the
coverage experiment (T2) can actually generate the diagrams instead of
trusting the literature table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The query features used by the coverage matrix (experiment T2).
FEATURES = (
    "join",
    "selection",
    "negation",
    "universal",
    "disjunction",
    "nesting",
    "union",
    "division",
)


@dataclass(frozen=True)
class FormalismInfo:
    """Metadata + capability vector of one diagrammatic formalism."""

    key: str
    name: str
    family: str                # "early" (pre-database) or "modern" (database community)
    year: int
    based_on: str              # RA | TRC | DRC | propositional | monadic | SQL | ER
    relationally_complete: bool
    supports: dict[str, bool] = field(default_factory=dict)
    builder: str | None = None  # dotted module path of the implemented builder
    implemented: bool = False
    notes: str = ""

    def can_represent(self, features: tuple[str, ...]) -> bool:
        """True iff every feature of a query has visual support in this formalism."""
        relevant = [f for f in features if f in FEATURES]
        return all(self.supports.get(f, False) for f in relevant)


def _supports(**kwargs: bool) -> dict[str, bool]:
    base = {feature: False for feature in FEATURES}
    base.update(kwargs)
    return base


REGISTRY: tuple[FormalismInfo, ...] = (
    # ----------------------------------------------------------------- early
    FormalismInfo(
        "euler", "Euler circles", "early", 1768, "monadic", False,
        _supports(selection=True, negation=True),
        builder="repro.diagrams.euler", implemented=True,
        notes="Set-containment diagrams for syllogisms; monadic predicates only.",
    ),
    FormalismInfo(
        "venn", "Venn diagrams", "early", 1880, "monadic", False,
        _supports(selection=True, negation=True, disjunction=False),
        builder="repro.diagrams.venn", implemented=True,
        notes="All region combinations drawn; shading denotes emptiness.",
    ),
    FormalismInfo(
        "venn_peirce", "Venn–Peirce diagrams", "early", 1897, "monadic", False,
        _supports(selection=True, negation=True, disjunction=True),
        builder="repro.diagrams.venn", implemented=True,
        notes="Adds x-sequences so disjunctive information becomes representable.",
    ),
    FormalismInfo(
        "peirce_alpha", "Peirce existential graphs (alpha)", "early", 1896,
        "propositional", False,
        _supports(negation=True, disjunction=True),
        builder="repro.diagrams.peirce_alpha", implemented=True,
        notes="Propositional logic: juxtaposition = AND, cut = NOT.",
    ),
    FormalismInfo(
        "peirce_beta", "Peirce existential graphs (beta)", "early", 1896, "DRC", True,
        _supports(join=True, selection=True, negation=True, universal=True,
                  disjunction=True, nesting=True, union=True, division=True),
        builder="repro.diagrams.peirce_beta", implemented=True,
        notes="Lines of identity + cuts; maps imperfectly onto the Boolean "
              "fragment of DRC (no free variables).",
    ),
    FormalismInfo(
        "constraint", "Constraint diagrams", "early", 1997, "monadic", False,
        _supports(selection=True, negation=True, universal=True),
        builder="repro.diagrams.constraint", implemented=True,
        notes="Spider/arrow notation over Euler diagrams; aimed at UML invariants.",
    ),
    FormalismInfo(
        "conceptual", "Sowa's conceptual graphs", "early", 1976, "DRC", True,
        _supports(join=True, selection=True, negation=True, universal=True,
                  nesting=True, disjunction=True, union=True, division=True),
        builder="repro.diagrams.conceptual", implemented=True,
        notes="Concept and relation nodes; negation via nested contexts.",
    ),
    FormalismInfo(
        "higraph", "Higraphs / UML-style notations", "early", 1988, "monadic", False,
        _supports(selection=True),
        notes="Blobs with Cartesian products and containment; not query-oriented.",
    ),
    # ---------------------------------------------------------------- modern
    FormalismInfo(
        "qbe", "Query-By-Example", "modern", 1977, "DRC", True,
        _supports(join=True, selection=True, negation=True, universal=True,
                  nesting=True, disjunction=True, union=True, division=True),
        builder="repro.diagrams.qbe", implemented=True,
        notes="Skeleton tables with example elements; division needs two steps "
              "and a temporary relation (the Datalog pattern).",
    ),
    FormalismInfo(
        "query_builders", "Interactive query builders (dbForge, SSMS, ...)", "modern",
        2019, "SQL", False,
        _supports(join=True, selection=True),
        notes="Conjunctive queries only; no single visual element for NOT EXISTS "
              "or FOR ALL; nested queries live on separate screens.",
    ),
    FormalismInfo(
        "dfql", "DFQL dataflow diagrams", "modern", 1994, "RA", True,
        _supports(join=True, selection=True, negation=True, universal=True,
                  disjunction=True, nesting=True, union=True, division=True),
        builder="repro.diagrams.dfql", implemented=True,
        notes="Visualizes the RA operator tree top-down; relationally complete "
              "because RA is.",
    ),
    FormalismInfo(
        "qbd", "Query By Diagram (QBD*)", "modern", 1990, "ER", False,
        _supports(join=True, selection=True, nesting=True),
        notes="ER-based navigation; recursion extensions exist.",
    ),
    FormalismInfo(
        "tabletalk", "TableTalk", "modern", 1991, "SQL", False,
        _supports(join=True, selection=True, negation=True),
        notes="Tiles for logical conditions, top-down flow.",
    ),
    FormalismInfo(
        "visual_sql", "Visual SQL", "modern", 2003, "SQL", True,
        _supports(join=True, selection=True, negation=True, universal=True,
                  disjunction=True, nesting=True, union=True, division=True),
        builder="repro.diagrams.visual_sql", implemented=True,
        notes="One-to-one with SQL syntax: syntactic variants yield different "
              "diagrams (fails the invariance principle).",
    ),
    FormalismInfo(
        "sqlvis", "SQLVis", "modern", 2021, "SQL", True,
        _supports(join=True, selection=True, negation=True, universal=True,
                  disjunction=True, nesting=True, union=True, division=True),
        builder="repro.diagrams.sqlvis", implemented=True,
        notes="Visualizes the syntactic structure of the SQL query for learners.",
    ),
    FormalismInfo(
        "queryvis", "QueryVis", "modern", 2011, "TRC", True,
        _supports(join=True, selection=True, negation=True, universal=True,
                  disjunction=False, nesting=True, union=False, division=True),
        builder="repro.diagrams.queryvis", implemented=True,
        notes="Table boxes, predicate edges, grouping boxes per nesting level, "
              "arrows for the default reading order; general disjunction is the "
              "known gap.",
    ),
    FormalismInfo(
        "dataplay", "DataPlay", "modern", 2012, "SQL", False,
        _supports(join=True, selection=True, universal=True, negation=True,
                  nesting=True),
        notes="Quantifier query trees over a nested universal relation.",
    ),
    FormalismInfo(
        "sieuferd", "SIEUFERD", "modern", 2016, "SQL", False,
        _supports(join=True, selection=True, nesting=True),
        notes="Direct manipulation of nested relational results.",
    ),
    FormalismInfo(
        "string_diagrams", "String diagrams", "modern", 2020, "DRC", True,
        _supports(join=True, selection=True, negation=True, universal=True,
                  disjunction=True, nesting=True, union=True, division=True),
        builder="repro.diagrams.string_diagrams", implemented=True,
        notes="A compositional variant of beta graphs that allows free variables "
              "(bound variable wires end in a dot).",
    ),
    FormalismInfo(
        "relational_diagrams", "Relational Diagrams", "modern", 2024, "TRC", False,
        _supports(join=True, selection=True, negation=True, universal=True,
                  disjunction=False, nesting=True, union=True, division=True),
        builder="repro.diagrams.relational_diagrams", implemented=True,
        notes="Nested negated bounding boxes instead of arrows; represents the "
              "logical union of diagrams for disjunctions; pattern-complete for "
              "the disjunction-free fragment.",
    ),
)


def formalism(key: str) -> FormalismInfo:
    """Look up a formalism by its registry key."""
    for info in REGISTRY:
        if info.key == key:
            return info
    raise KeyError(f"unknown formalism {key!r}")


def implemented_formalisms() -> list[FormalismInfo]:
    """Formalisms with a programmatic diagram builder in :mod:`repro.diagrams`."""
    return [info for info in REGISTRY if info.implemented]


def coverage_matrix(queries=None) -> dict[str, dict[str, bool]]:
    """The T2 matrix: formalism × canonical query → representable?

    Coverage is decided from the capability vectors; for implemented
    formalisms the benchmark additionally builds the diagram to confirm.
    """
    from repro.queries import CANONICAL_QUERIES

    queries = queries if queries is not None else CANONICAL_QUERIES
    matrix: dict[str, dict[str, bool]] = {}
    for info in REGISTRY:
        matrix[info.key] = {
            query.id: info.can_represent(query.features) for query in queries
        }
    return matrix
