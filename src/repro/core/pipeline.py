"""The query-visualization pipeline of Figs. 1 and 2 — for all five languages.

The paper's two figures sketch the intended interaction: a user states a
query (spoken, typed, or LLM-generated), the system parses it, *shows the
query back* as a diagram (and in other textual languages), and returns the
answers, so the user can verify that the system understood the right query.
This module is that loop, minus the microphone: text in, diagram + answers +
explanation out.

Queries may be stated in any of the five textual languages of the tutorial
(SQL, RA, TRC, DRC, Datalog).  Answers are computed by the unified plan
engine (:mod:`repro.engine`) — parse → lower → optimize → execute — with the
per-language reference interpreters as a fallback for constructs outside the
engine fragment, so ``run`` never rejects a query the interpreters accept.
"""

from __future__ import annotations

import hashlib
import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.core.diagram import Diagram
from repro.core.patterns import QueryPattern, pattern_of
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.sailors import sailors_database
from repro.trc.ast import TRCQuery, relation_atoms
from repro.trc.format import format_trc_query

#: The languages ``QueryVisualizationPipeline.run`` accepts.
PIPELINE_LANGUAGES = ("sql", "ra", "trc", "drc", "datalog")

_logger = logging.getLogger(__name__)

#: Cache-miss sentinel.  ``None`` (or any falsy value) must be a cacheable
#: value — using it as the miss marker would re-miss legitimate entries
#: forever and miscount ``cache_stats``.
_MISS = object()

#: Default diagram formalism per input language (only formalisms that can
#: represent that language's ASTs directly).
_DEFAULT_FORMALISMS = {
    "sql": "queryvis",
    "ra": "dfql",
    "trc": "queryvis",
    "drc": "peirce_beta",
    "datalog": "dfql",
}


def fingerprint_query(text: str, language: str) -> str:
    """A stable fingerprint of one query: language + query text.

    Only outer whitespace is stripped — interior whitespace can be
    significant (string literals), so two texts share a fingerprint only if
    they are byte-identical apart from leading/trailing space.  This keys
    both pipeline caches: the plan cache maps a fingerprint to its optimized
    plan, and the result cache maps ``(fingerprint, db.version)`` to the
    answer relation — so any write to the database (which bumps
    :attr:`repro.data.database.Database.version`) invalidates results
    without touching the plans.
    """
    digest = hashlib.sha256(f"{language.lower()}\n{text.strip()}".encode())
    return digest.hexdigest()[:24]


class _LRUCache:
    """A bounded mapping with least-recently-used eviction (capacity 0 = off).

    Thread-safe: every operation holds one internal lock, so concurrent
    get/put/clear interleave without corrupting the recency order.  ``get``
    distinguishes a miss from a cached falsy value via the ``default``
    argument (pass a private sentinel) instead of overloading ``None``.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            try:
                value = self._data.pop(key)
            except KeyError:
                return default
            self._data[key] = value
            return value

    def put(self, key: Any, value: Any) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


@dataclass
class CacheStats:
    """Hit/miss counters for the pipeline's plan and result caches.

    Counter updates go through :meth:`record` under an internal lock so
    concurrent requests never lose increments.
    """

    plan_hits: int = 0
    plan_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, cache: str, *, hit: bool) -> None:
        """Atomically bump ``{cache}_hits`` or ``{cache}_misses``."""
        name = f"{cache}_{'hits' if hit else 'misses'}"
        with self._lock:
            setattr(self, name, getattr(self, name) + 1)


@dataclass
class PipelineResult:
    """Everything the pipeline produces for one query."""

    sql: str  # the original query text (named for backward compatibility)
    query: Any
    diagram: Diagram
    language: str = "sql"
    answers: Relation | None = None
    trc: TRCQuery | None = None
    pattern: QueryPattern | None = None
    languages: dict[str, str] = field(default_factory=dict)
    explanation: str = ""
    warnings: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    plan: Any = None  # the optimized engine plan, when the engine was used

    @property
    def text(self) -> str:
        """The query text as given (alias of the legacy ``sql`` field)."""
        return self.sql

    @property
    def used_engine(self) -> bool:
        return self.plan is not None

    def summary(self, *, max_rows: int = 10) -> str:
        """A terminal-friendly rendering of the whole interaction (Fig. 1)."""
        label = self.language.upper() if self.language != "datalog" else "Datalog"
        parts = [f"{label}: {self.sql}", ""]
        if self.explanation:
            parts.append("Interpretation:")
            parts.append(self.explanation)
            parts.append("")
        parts.append(self.diagram.to_ascii())
        if self.answers is not None:
            parts.append("")
            parts.append(f"Answers ({len(self.answers)} rows):")
            parts.append(self.answers.to_table(max_rows=max_rows))
        if self.warnings:
            parts.append("")
            parts.extend(f"note: {w}" for w in self.warnings)
        return "\n".join(parts)


class QueryVisualizationPipeline:
    """Parse → lower → optimize → execute → visualize, per Figs. 1–2.

    ``backend`` picks the physical executor (``"vectorized"`` — the default
    columnar engine — or ``"row"``, the reference executor).  Two bounded
    caches keep repeated queries cheap: a plan cache (query fingerprint →
    optimized plan, so a repeated query skips parse/lower/optimize) and an
    LRU result cache (fingerprint + database version → answers, so a
    repeated query against unchanged data skips execution entirely;
    ``Relation.add`` bumps the version and thereby invalidates).  Set either
    size to 0 to disable that cache.
    """

    def __init__(self, db: Database | None = None, *, formalism: str = "queryvis",
                 use_engine: bool = True, backend: str = "vectorized",
                 plan_cache_size: int = 128,
                 result_cache_size: int = 256) -> None:
        from repro.engine import get_backend

        self.db = db if db is not None else sailors_database()
        self.formalism = formalism
        self.use_engine = use_engine
        self.backend = get_backend(backend).name  # validates the name
        self._plan_cache = _LRUCache(plan_cache_size)
        self._result_cache = _LRUCache(result_cache_size)
        self.cache_stats = CacheStats()

    # -- cache plumbing --------------------------------------------------

    def cache_info(self) -> dict[str, int]:
        """Sizes and hit/miss counters of both caches (for tests/benchmarks)."""
        return {
            "plan_entries": len(self._plan_cache),
            "result_entries": len(self._result_cache),
            "plan_hits": self.cache_stats.plan_hits,
            "plan_misses": self.cache_stats.plan_misses,
            "result_hits": self.cache_stats.result_hits,
            "result_misses": self.cache_stats.result_misses,
        }

    def clear_caches(self) -> None:
        self._plan_cache.clear()
        self._result_cache.clear()
        self.cache_stats = CacheStats()

    def run(self, text: str, *, language: str = "sql", evaluate: bool = True,
            formalism: str | None = None) -> PipelineResult:
        """Run the full pipeline for one query in any of the five languages."""
        language = language.lower()
        if language not in PIPELINE_LANGUAGES:
            raise ValueError(
                f"unknown language {language!r}; expected one of {PIPELINE_LANGUAGES}"
            )
        timings: dict[str, float] = {}
        warnings: list[str] = []

        start = time.perf_counter()
        query = _parse(text, language)
        timings["parse"] = time.perf_counter() - start

        start = time.perf_counter()
        trc, pattern, languages, explanation = self._interpret(
            text, query, language, warnings)
        timings["translate"] = time.perf_counter() - start

        start = time.perf_counter()
        diagram = self._build_diagram(query, language, formalism, warnings)
        timings["diagram"] = time.perf_counter() - start

        answers: Relation | None = None
        plan = None
        if evaluate:
            start = time.perf_counter()
            answers, plan = self._evaluate(text, query, language, warnings, timings)
            timings["evaluate"] = time.perf_counter() - start

        return PipelineResult(
            sql=text, query=query, diagram=diagram, language=language,
            answers=answers, trc=trc, pattern=pattern, languages=languages,
            explanation=explanation, warnings=warnings, timings=timings,
            plan=plan,
        )

    # -- stages ----------------------------------------------------------

    def _interpret(self, text: str, query: Any, language: str,
                   warnings: list[str]):
        """Recover the TRC form / query pattern and the textual explanation."""
        from repro.translate.sql_to_trc import UnsupportedSQL, sql_to_trc

        trc: TRCQuery | None = None
        pattern: QueryPattern | None = None
        label = {"sql": "SQL", "ra": "RA", "trc": "TRC", "drc": "DRC",
                 "datalog": "Datalog"}[language]
        languages: dict[str, str] = {label: text}
        explanation = ""
        if language == "sql":
            try:
                trc = sql_to_trc(query, self.db.schema)
                languages["TRC"] = format_trc_query(trc)
                pattern = pattern_of(trc)
            except UnsupportedSQL as exc:
                warnings.append(f"TRC translation unavailable: {exc}")
            explanation = explain_query(query, trc)
        elif language == "trc":
            trc = query
            try:
                pattern = pattern_of(trc)
            except Exception as exc:  # pattern extraction is best-effort
                warnings.append(f"pattern extraction unavailable: {exc}")
            explanation = explain_calculus(trc)
        elif language == "drc":
            from repro.logic.formula import atoms_of

            atoms = atoms_of(query.body)
            relations = sorted({a.predicate for a in atoms})
            explanation = (
                f"- ranges over {len(relations)} relation(s): {', '.join(relations)}\n"
                f"- the query pattern has {len(atoms)} relation atom(s)"
            )
        elif language == "ra":
            explanation = f"- an RA operator tree with {query.operator_count()} node(s)"
        elif language == "datalog":
            explanation = (
                f"- a Datalog program with {len(query)} rule(s)"
                + (" (recursive)" if query.is_recursive() else "")
            )
        return trc, pattern, languages, explanation

    def _build_diagram(self, query: Any, language: str, formalism: str | None,
                       warnings: list[str]) -> Diagram:
        from repro.diagrams import build_diagram

        if formalism is None:
            formalism = self.formalism if language == "sql" \
                else _DEFAULT_FORMALISMS[language]
        target: Any = query
        if language == "datalog":
            # DFQL draws RA trees; non-recursive programs translate exactly.
            from repro.translate.ra_datalog import datalog_to_ra

            try:
                target = datalog_to_ra(query, self.db.schema)
            except Exception as exc:
                warnings.append(f"diagram unavailable: {exc}")
                return Diagram("datalog program", formalism="dfql")
        if language == "sql":
            # Preserve the original single-language behavior: SQL diagram
            # failures (including CannotRepresent) are real errors, not
            # degradable warnings.
            return build_diagram(formalism, target, self.db.schema)
        try:
            return build_diagram(formalism, target, self.db.schema)
        except Exception as exc:  # CannotRepresent, translation gaps, builder bugs
            warnings.append(f"{formalism} diagram unavailable: {exc}")
            return Diagram(f"{language} query", formalism=formalism)

    def _evaluate(self, text: str, query: Any, language: str,
                  warnings: list[str], timings: dict[str, float]):
        """Answer the query: unified engine first, reference interpreter fallback."""
        from repro.engine import LoweringError, PlanError
        from repro.expr.ast import ExprError

        if self.use_engine:
            try:
                return self._evaluate_engine(text, query, language, timings)
            except (LoweringError, PlanError, ExprError) as exc:
                # ExprError covers runtime divergences (the engine compiles
                # comparisons with SQL's raising semantics; the calculi treat
                # type mismatches as FALSE) — the reference decides.
                for stage in ("lower", "optimize", "execute"):
                    timings.pop(stage, None)  # stages of the failed attempt
                warnings.append(
                    f"engine fallback to the {language.upper()} interpreter: {exc}"
                )
        return self._evaluate_reference(query, language), None

    def _evaluate_engine(self, text: str, query: Any, language: str,
                         timings: dict[str, float]):
        from repro.engine import execute_datalog, execute_plan, lower, optimize

        fingerprint = fingerprint_query(text, language)
        result_key = (fingerprint, self.db.version)
        cached = self._result_cache.get(result_key, _MISS)
        if cached is not _MISS:
            self.cache_stats.record("result", hit=True)
            timings["execute"] = 0.0
            plan, answers = cached
            return answers, plan
        self.cache_stats.record("result", hit=False)

        if language == "datalog":
            start = time.perf_counter()
            answers = execute_datalog(query, self.db)
            timings["execute"] = time.perf_counter() - start
            self._cache_result(result_key, query, answers)
            return answers, query

        # Plans depend on the schema (column resolution) but not on row
        # contents, so the key includes the coarser structure version:
        # add_relation/drop_relation invalidates plans, plain adds do not.
        plan_key = (fingerprint, self.db.structure_version)
        plan = self._plan_cache.get(plan_key, _MISS)
        if plan is _MISS:
            self.cache_stats.record("plan", hit=False)
            start = time.perf_counter()
            plan = lower(query, self.db.schema, language)
            timings["lower"] = time.perf_counter() - start
            start = time.perf_counter()
            plan = optimize(plan, self.db)
            timings["optimize"] = time.perf_counter() - start
            self._plan_cache.put(plan_key, plan)
        else:
            self.cache_stats.record("plan", hit=True)
        start = time.perf_counter()
        answers = execute_plan(plan, self.db, backend=self.backend)
        timings["execute"] = time.perf_counter() - start
        self._cache_result(result_key, plan, answers)
        return answers, plan

    def _cache_result(self, result_key: tuple, plan: Any,
                      answers: Relation) -> None:
        """Publish one answer into the shared result cache — *frozen*.

        The cache hands the very same :class:`Relation` object to every
        subsequent hit, so a mutable cached answer would let one caller
        silently poison everyone else's results.  Freezing before the put
        turns that aliasing bug into an immediate ``RelationError`` at the
        mutation site; callers that need a private mutable copy take
        ``answers.copy()``.
        """
        if self._result_cache.capacity > 0:
            answers.freeze()
            self._result_cache.put(result_key, (plan, answers))

    def answer(self, text: str, *, language: str | None = None,
               warnings: list[str] | None = None) -> Relation:
        """The serving path: any-language text in, answers out — no diagram.

        Warm requests never parse: a result-cache hit is two dictionary
        lookups, and a plan-cache hit skips parse/lower/optimize and goes
        straight to the executor.  Falls back to the reference interpreter
        exactly like :meth:`run` for queries outside the engine fragment.
        The fallback *reason* is never swallowed: it is appended to the
        optional ``warnings`` out-list (same format as
        :attr:`PipelineResult.warnings`) and logged on this module's logger,
        so serving-path divergences stay diagnosable.
        """
        from repro.engine import LoweringError, PlanError, detect_language
        from repro.expr.ast import ExprError

        resolved = (language or detect_language(text)).lower()
        if resolved not in PIPELINE_LANGUAGES:
            raise ValueError(
                f"unknown language {resolved!r}; expected one of {PIPELINE_LANGUAGES}"
            )
        if self.use_engine:
            try:
                answers, _plan = self._evaluate_engine(text, text, resolved, {})
                return answers
            except (LoweringError, PlanError, ExprError) as exc:
                message = (
                    f"engine fallback to the {resolved.upper()} interpreter: {exc}"
                )
                if warnings is not None:
                    warnings.append(message)
                _logger.info("%s", message)
        return self._evaluate_reference(_parse(text, resolved), resolved)

    def prepare_plan(self, text: str, language: str) -> Any | None:
        """Compile one query into the plan cache ahead of serving.

        Parses eagerly (syntax errors surface here, not on the first
        request), lowers + optimizes, and seeds the plan cache under the
        current structure version.  Returns the optimized plan, or ``None``
        when the query is outside the engine fragment (its requests will use
        the interpreter fallback) or is Datalog (executed by the semi-naive
        fixpoint, which plans per stratum).  ``QueryService.prepare`` builds
        its prepared-query handles on this.
        """
        from repro.engine import LoweringError, PlanError, lower, optimize

        language = language.lower()
        query = _parse(text, language)
        if language == "datalog":
            return None
        fingerprint = fingerprint_query(text, language)
        plan_key = (fingerprint, self.db.structure_version)
        plan = self._plan_cache.get(plan_key, _MISS)
        if plan is not _MISS:
            return plan
        try:
            plan = optimize(lower(query, self.db.schema, language), self.db)
        except (LoweringError, PlanError):
            return None
        self._plan_cache.put(plan_key, plan)
        return plan

    def _evaluate_reference(self, query: Any, language: str) -> Relation:
        del language  # dispatch is by AST type
        from repro.translate.equivalence import answer_relation

        return answer_relation(query, self.db)

    def round_trip_consistent(self, sql_a: str, sql_b: str) -> bool:
        """Fig. 2's verification step: do two phrasings show the same pattern?"""
        from repro.core.patterns import isomorphic

        result_a = self.run(sql_a, evaluate=False)
        result_b = self.run(sql_b, evaluate=False)
        if result_a.pattern is None or result_b.pattern is None:
            return False
        return isomorphic(result_a.pattern, result_b.pattern)


def _parse(text: str, language: str) -> Any:
    if language == "sql":
        from repro.sql.parser import parse_sql

        return parse_sql(text)
    if language == "ra":
        from repro.ra.parser import parse_ra

        return parse_ra(text)
    if language == "trc":
        from repro.trc.parser import parse_trc

        return parse_trc(text)
    if language == "drc":
        from repro.drc.parser import parse_drc

        return parse_drc(text)
    from repro.datalog.parser import parse_datalog

    return parse_datalog(text)


def explain_query(query: Any, trc: TRCQuery | None = None) -> str:
    """A short natural-language-ish reading of the query structure.

    This is the textual complement of the diagram: which tables participate,
    how deep the nesting goes, and which quantifier pattern is in play.
    """
    from repro.sql.ast import SetOpQuery, base_tables, count_table_occurrences

    lines: list[str] = []
    tables = base_tables(query)
    occurrences = count_table_occurrences(query)
    lines.append(
        f"- uses {len(tables)} table(s): {', '.join(tables)}"
        + (f" ({occurrences} table references in total)" if occurrences != len(tables) else "")
    )
    if isinstance(query, SetOpQuery):
        lines.append(f"- combines two subqueries with {query.op.upper()}")
    depth = query.nesting_depth()
    if depth > 1:
        lines.append(f"- contains nested subqueries ({depth} levels)")
    if trc is not None:
        atoms = relation_atoms(trc.body)
        negations = format_trc_query(trc).count("not ")
        if negations >= 2:
            lines.append(
                "- double negation detected: this is the classic encoding of "
                "universal quantification (\"for all ...\")"
            )
        elif negations == 1:
            lines.append("- contains one negated subquery (\"... and not ...\")")
        lines.append(f"- the query pattern has {len(atoms)} table variable(s)")
    return "\n".join(lines)


def explain_calculus(trc: TRCQuery) -> str:
    """The TRC-side analogue of :func:`explain_query`."""
    atoms = relation_atoms(trc.body)
    relations = sorted({a.relation for a in atoms})
    lines = [f"- ranges over {len(relations)} relation(s): {', '.join(relations)}"]
    negations = format_trc_query(trc).count("not ")
    if negations >= 2:
        lines.append("- double negation: universal quantification in disguise")
    elif negations == 1:
        lines.append("- contains one negated subformula")
    lines.append(f"- the query pattern has {len(atoms)} table variable(s)")
    return "\n".join(lines)


def visualize_sql(sql: str, db: Database | None = None, *,
                  formalism: str = "queryvis") -> Diagram:
    """One-call convenience: SQL text in, diagram out (Fig. 1's visual reply)."""
    pipeline = QueryVisualizationPipeline(db, formalism=formalism)
    return pipeline.run(sql, evaluate=False).diagram


def explain_sql(sql: str, db: Database | None = None) -> str:
    """One-call convenience: SQL text in, textual interpretation out."""
    pipeline = QueryVisualizationPipeline(db)
    return pipeline.run(sql, evaluate=False).explanation


def answer_any(text: str, db: Database | None = None, *,
               language: str | None = None) -> Relation:
    """One-call convenience: any-language text in, answers out (engine path)."""
    return QueryVisualizationPipeline(db).answer(text, language=language)
