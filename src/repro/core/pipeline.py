"""The query-visualization pipeline of Figs. 1 and 2.

The paper's two figures sketch the intended interaction: a user states a
query (spoken, typed, or LLM-generated), the system parses it, *shows the
query back* as a diagram (and in other textual languages), and returns the
answers, so the user can verify that the system understood the right query.
This module is that loop, minus the microphone: text in, diagram + answers +
explanation out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.diagram import Diagram
from repro.core.patterns import QueryPattern, pattern_of
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.sailors import sailors_database
from repro.sql.ast import Query
from repro.sql.evaluate import evaluate_sql
from repro.sql.parser import parse_sql
from repro.translate.sql_to_trc import UnsupportedSQL, sql_to_trc
from repro.trc.ast import TRCQuery, relation_atoms
from repro.trc.format import format_trc_query


@dataclass
class PipelineResult:
    """Everything the pipeline produces for one query."""

    sql: str
    query: Query
    diagram: Diagram
    answers: Relation | None = None
    trc: TRCQuery | None = None
    pattern: QueryPattern | None = None
    languages: dict[str, str] = field(default_factory=dict)
    explanation: str = ""
    warnings: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def summary(self, *, max_rows: int = 10) -> str:
        """A terminal-friendly rendering of the whole interaction (Fig. 1)."""
        parts = [f"SQL: {self.sql}", ""]
        if self.explanation:
            parts.append("Interpretation:")
            parts.append(self.explanation)
            parts.append("")
        parts.append(self.diagram.to_ascii())
        if self.answers is not None:
            parts.append("")
            parts.append(f"Answers ({len(self.answers)} rows):")
            parts.append(self.answers.to_table(max_rows=max_rows))
        if self.warnings:
            parts.append("")
            parts.extend(f"note: {w}" for w in self.warnings)
        return "\n".join(parts)


class QueryVisualizationPipeline:
    """Parse → translate → visualize → answer, per Figs. 1–2 of the paper."""

    def __init__(self, db: Database | None = None, *, formalism: str = "queryvis") -> None:
        self.db = db if db is not None else sailors_database()
        self.formalism = formalism

    def run(self, sql: str, *, evaluate: bool = True,
            formalism: str | None = None) -> PipelineResult:
        """Run the full pipeline for one SQL query."""
        from repro.diagrams import build_diagram

        formalism = formalism or self.formalism
        timings: dict[str, float] = {}
        warnings: list[str] = []

        start = time.perf_counter()
        query = parse_sql(sql)
        timings["parse"] = time.perf_counter() - start

        trc: TRCQuery | None = None
        pattern: QueryPattern | None = None
        languages: dict[str, str] = {"SQL": sql}
        start = time.perf_counter()
        try:
            trc = sql_to_trc(query, self.db.schema)
            languages["TRC"] = format_trc_query(trc)
            pattern = pattern_of(trc)
        except UnsupportedSQL as exc:
            warnings.append(f"TRC translation unavailable: {exc}")
        timings["translate"] = time.perf_counter() - start

        start = time.perf_counter()
        diagram = build_diagram(formalism, query, self.db.schema)
        timings["diagram"] = time.perf_counter() - start

        answers: Relation | None = None
        if evaluate:
            start = time.perf_counter()
            answers = evaluate_sql(query, self.db)
            timings["evaluate"] = time.perf_counter() - start

        explanation = explain_query(query, trc)
        return PipelineResult(
            sql=sql, query=query, diagram=diagram, answers=answers, trc=trc,
            pattern=pattern, languages=languages, explanation=explanation,
            warnings=warnings, timings=timings,
        )

    def round_trip_consistent(self, sql_a: str, sql_b: str) -> bool:
        """Fig. 2's verification step: do two phrasings show the same pattern?"""
        from repro.core.patterns import isomorphic

        result_a = self.run(sql_a, evaluate=False)
        result_b = self.run(sql_b, evaluate=False)
        if result_a.pattern is None or result_b.pattern is None:
            return False
        return isomorphic(result_a.pattern, result_b.pattern)


def explain_query(query: Query, trc: TRCQuery | None = None) -> str:
    """A short natural-language-ish reading of the query structure.

    This is the textual complement of the diagram: which tables participate,
    how deep the nesting goes, and which quantifier pattern is in play.
    """
    from repro.sql.ast import SelectQuery, SetOpQuery, base_tables, count_table_occurrences

    lines: list[str] = []
    tables = base_tables(query)
    occurrences = count_table_occurrences(query)
    lines.append(
        f"- uses {len(tables)} table(s): {', '.join(tables)}"
        + (f" ({occurrences} table references in total)" if occurrences != len(tables) else "")
    )
    if isinstance(query, SetOpQuery):
        lines.append(f"- combines two subqueries with {query.op.upper()}")
    depth = query.nesting_depth()
    if depth > 1:
        lines.append(f"- contains nested subqueries ({depth} levels)")
    if trc is not None:
        atoms = relation_atoms(trc.body)
        negations = format_trc_query(trc).count("not ")
        if negations >= 2:
            lines.append(
                "- double negation detected: this is the classic encoding of "
                "universal quantification (\"for all ...\")"
            )
        elif negations == 1:
            lines.append("- contains one negated subquery (\"... and not ...\")")
        lines.append(f"- the query pattern has {len(atoms)} table variable(s)")
    return "\n".join(lines)


def visualize_sql(sql: str, db: Database | None = None, *,
                  formalism: str = "queryvis") -> Diagram:
    """One-call convenience: SQL text in, diagram out (Fig. 1's visual reply)."""
    pipeline = QueryVisualizationPipeline(db, formalism=formalism)
    return pipeline.run(sql, evaluate=False).diagram


def explain_sql(sql: str, db: Database | None = None) -> str:
    """One-call convenience: SQL text in, textual interpretation out."""
    pipeline = QueryVisualizationPipeline(db)
    return pipeline.run(sql, evaluate=False).explanation
