"""Relational query patterns and pattern isomorphism.

The "correspondence principle" of query visualization asks that a diagram
determine the query's *relational query pattern* — the structure that remains
when one abstracts away variable names and the syntactic order of conjuncts:
which table variables exist, over which relations, inside which
negation/quantification scopes, connected by which predicates, and what is
projected out.  Two SQL texts that differ only syntactically (``NOT IN`` vs.
``NOT EXISTS``, reordered WHERE conjuncts, renamed aliases) share a pattern;
queries with different logic do not.

Patterns are extracted from TRC queries (the language of QueryVis and
Relational Diagrams).  Extraction normalises the formula first: implications
and universal quantifiers are rewritten into ∃/∧/¬ form and nested
existentials in the same negation scope are flattened, which is what makes
the NOT IN / NOT EXISTS variants collapse to the same pattern.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.trc.ast import (
    AttrRef,
    ConstTerm,
    RelAtom,
    TRCAnd,
    TRCCompare,
    TRCExists,
    TRCForAll,
    TRCFormula,
    TRCImplies,
    TRCNot,
    TRCOr,
    TRCQuery,
    TRCTrue,
    TupleVar,
    conjunction,
)


class PatternError(Exception):
    """Raised when a pattern cannot be extracted (e.g. disjunctive bodies)."""


# ---------------------------------------------------------------------------
# Normalisation
# ---------------------------------------------------------------------------

def normalize_trc(formula: TRCFormula) -> TRCFormula:
    """Rewrite into ∃/∧/¬ form (∨ is kept) and flatten nested existentials.

    * ``∀x φ``    →  ``¬∃x ¬φ``
    * ``φ → ψ``   →  ``¬(φ ∧ ¬ψ)``
    * ``¬¬φ``     →  ``φ``
    * ``∃x (φ ∧ ∃y ψ)`` → ``∃x, y (φ ∧ ψ)``  (same negation scope)
    """
    def rewrite(node: TRCFormula) -> TRCFormula:
        if isinstance(node, (TRCTrue, RelAtom, TRCCompare)):
            return node
        if isinstance(node, TRCAnd):
            return conjunction([rewrite(o) for o in node.operands])
        if isinstance(node, TRCOr):
            return TRCOr(tuple(rewrite(o) for o in node.operands))
        if isinstance(node, TRCNot):
            inner = rewrite(node.operand)
            if isinstance(inner, TRCNot):
                return inner.operand
            return TRCNot(inner)
        if isinstance(node, TRCImplies):
            return rewrite(TRCNot(TRCAnd((node.antecedent, TRCNot(node.consequent)))))
        if isinstance(node, TRCForAll):
            return rewrite(TRCNot(TRCExists(node.variables, TRCNot(node.body))))
        if isinstance(node, TRCExists):
            body = rewrite(node.body)
            variables = list(node.variables)
            body = _flatten_exists_into(variables, body)
            return TRCExists(tuple(variables), body)
        raise PatternError(f"normalize: unhandled node {type(node).__name__}")

    return _flatten_top(rewrite(formula))


def _flatten_exists_into(variables: list[TupleVar], body: TRCFormula) -> TRCFormula:
    """Pull directly-nested existentials (not under ¬) into ``variables``."""
    changed = True
    while changed:
        changed = False
        if isinstance(body, TRCExists):
            variables.extend(body.variables)
            body = body.body
            changed = True
        elif isinstance(body, TRCAnd):
            new_parts = []
            for part in body.operands:
                if isinstance(part, TRCExists):
                    variables.extend(part.variables)
                    new_parts.append(part.body)
                    changed = True
                else:
                    new_parts.append(part)
            body = conjunction(new_parts)
    return body


def _flatten_top(formula: TRCFormula) -> TRCFormula:
    """Flatten ∃ nested directly under the (positive) top level conjunction."""
    variables: list[TupleVar] = []
    body = _flatten_exists_into(variables, formula)
    if variables:
        return TRCExists(tuple(variables), body)
    return body


# ---------------------------------------------------------------------------
# Pattern structure
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PatternVariable:
    """A table variable of the pattern: relation + scope."""

    name: str
    relation: str
    scope: int
    negation_depth: int


@dataclass(frozen=True)
class PatternPredicate:
    """A comparison predicate, endpoints canonicalised as (var, attr) or constants."""

    op: str
    left: tuple[str, str] | Any
    right: tuple[str, str] | Any


@dataclass
class QueryPattern:
    """The relational query pattern of a TRC query."""

    variables: list[PatternVariable] = field(default_factory=list)
    predicates: list[PatternPredicate] = field(default_factory=list)
    head: list[tuple[str, str] | Any] = field(default_factory=list)
    scopes: dict[int, tuple[int | None, bool]] = field(default_factory=dict)
    has_disjunction: bool = False

    # -- derived ------------------------------------------------------------
    def variable(self, name: str) -> PatternVariable:
        for var in self.variables:
            if var.name == name:
                return var
        raise KeyError(name)

    def signature(self) -> tuple:
        """An isomorphism-invariant fingerprint (necessary, not sufficient)."""
        var_multiset = sorted(
            (v.relation.lower(), v.negation_depth) for v in self.variables
        )
        predicate_shapes = sorted(
            _canonical_shape(p, self) for p in self.predicates
        )
        head_shape = tuple(_endpoint_shape(h, self) for h in self.head)
        return (tuple(var_multiset), tuple(predicate_shapes), head_shape,
                self.has_disjunction)

    def size(self) -> dict[str, int]:
        return {
            "variables": len(self.variables),
            "predicates": len(self.predicates),
            "scopes": len(self.scopes),
            "negation_scopes": sum(1 for _, negated in self.scopes.values() if negated),
            "max_negation_depth": max(
                (v.negation_depth for v in self.variables), default=0
            ),
        }


def _canonical_shape(predicate: PatternPredicate, pattern: QueryPattern) -> tuple:
    """A name-independent, orientation-independent shape for one predicate."""
    left = _endpoint_shape(predicate.left, pattern)
    right = _endpoint_shape(predicate.right, pattern)
    op = predicate.op
    flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}
    if right < left:
        if op in ("=", "<>"):
            left, right = right, left
        elif op in flip:
            left, right = right, left
            op = flip[op]
    return (op, left, right)


def _endpoint_shape(endpoint, pattern: QueryPattern):
    if isinstance(endpoint, tuple):
        var_name, attr = endpoint
        try:
            var = pattern.variable(var_name)
            return ("attr", var.relation.lower(), attr.lower(), var.negation_depth)
        except KeyError:
            return ("attr", "?", attr.lower(), -1)
    return ("const", repr(endpoint))


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------

def pattern_of(query: TRCQuery) -> QueryPattern:
    """Extract the relational query pattern of a TRC query."""
    pattern = QueryPattern()
    body = normalize_trc(query.body)
    scope_counter = itertools.count(1)
    pattern.scopes[0] = (None, False)

    def visit(node: TRCFormula, scope: int, depth: int) -> None:
        if isinstance(node, TRCTrue):
            return
        if isinstance(node, RelAtom):
            pattern.variables.append(
                PatternVariable(node.var.name, node.relation, scope, depth)
            )
            return
        if isinstance(node, TRCCompare):
            pattern.predicates.append(
                PatternPredicate(*_canonical_predicate(node))
            )
            return
        if isinstance(node, TRCAnd):
            for operand in node.operands:
                visit(operand, scope, depth)
            return
        if isinstance(node, TRCOr):
            pattern.has_disjunction = True
            for operand in node.operands:
                visit(operand, scope, depth)
            return
        if isinstance(node, TRCNot):
            new_scope = next(scope_counter)
            pattern.scopes[new_scope] = (scope, True)
            inner = node.operand
            # A negation scope usually wraps an ∃ block; flatten it in place.
            if isinstance(inner, TRCExists):
                visit(inner.body, new_scope, depth + 1)
            else:
                visit(inner, new_scope, depth + 1)
            return
        if isinstance(node, TRCExists):
            visit(node.body, scope, depth)
            return
        raise PatternError(f"pattern extraction: unhandled node {type(node).__name__}")

    visit(body, 0, 0)

    for item in query.head:
        if isinstance(item.term, AttrRef):
            pattern.head.append((item.term.var.name, item.term.attr))
        elif isinstance(item.term, ConstTerm):
            pattern.head.append(item.term.value)
    return pattern


def _canonical_predicate(compare: TRCCompare) -> tuple:
    left = _endpoint(compare.left)
    right = _endpoint(compare.right)
    op = compare.op
    # Orient symmetric/antisymmetric operators deterministically.
    flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}
    if repr(right) < repr(left):
        if op in ("=", "<>"):
            left, right = right, left
        elif op in flip:
            left, right = right, left
            op = flip[op]
    return (op, left, right)


def _endpoint(term) -> tuple[str, str] | Any:
    if isinstance(term, AttrRef):
        return (term.var.name, term.attr)
    if isinstance(term, ConstTerm):
        return term.value
    raise PatternError(f"unexpected predicate endpoint {term!r}")


# ---------------------------------------------------------------------------
# Isomorphism
# ---------------------------------------------------------------------------

def isomorphic(left: QueryPattern, right: QueryPattern) -> bool:
    """Decide whether two patterns are the same up to renaming of variables.

    The bijection must preserve relations, negation depth, the same-scope
    relation among variables, all predicates, and the head.  The search is
    brute force over per-(relation, depth) groups, which is fine for the
    hand-sized queries diagrams are meant for.
    """
    if left.signature() != right.signature():
        return False
    left_vars = left.variables
    right_vars = right.variables
    if len(left_vars) != len(right_vars):
        return False

    groups: dict[tuple[str, int], tuple[list[str], list[str]]] = {}
    for var in left_vars:
        groups.setdefault((var.relation.lower(), var.negation_depth), ([], []))[0].append(var.name)
    for var in right_vars:
        key = (var.relation.lower(), var.negation_depth)
        if key not in groups:
            return False
        groups[key][1].append(var.name)
    for left_names, right_names in groups.values():
        if len(left_names) != len(right_names):
            return False

    group_items = list(groups.values())

    def mappings(index: int, current: dict[str, str]):
        if index == len(group_items):
            yield dict(current)
            return
        left_names, right_names = group_items[index]
        for permutation in itertools.permutations(right_names):
            for l, r in zip(left_names, permutation):
                current[l] = r
            yield from mappings(index + 1, current)
        for l in left_names:
            current.pop(l, None)

    left_predicates = {_mapped_predicate(p, None) for p in left.predicates}
    for mapping in mappings(0, {}):
        if not _scope_consistent(left, right, mapping):
            continue
        mapped = {_mapped_predicate(p, mapping) for p in left.predicates}
        target = {_mapped_predicate(p, None) for p in right.predicates}
        if mapped != target:
            continue
        mapped_head = [_mapped_endpoint(h, mapping) for h in left.head]
        target_head = [_mapped_endpoint(h, None) for h in right.head]
        if mapped_head == target_head:
            return True
    del left_predicates
    return False


def _mapped_endpoint(endpoint, mapping: dict[str, str] | None):
    if isinstance(endpoint, tuple):
        var, attr = endpoint
        return ((mapping.get(var, var) if mapping else var), attr.lower())
    return ("const", repr(endpoint))


def _mapped_predicate(predicate: PatternPredicate, mapping: dict[str, str] | None) -> tuple:
    left = _mapped_endpoint(predicate.left, mapping)
    right = _mapped_endpoint(predicate.right, mapping)
    op = predicate.op
    flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}
    if repr(right) < repr(left):
        if op in ("=", "<>"):
            left, right = right, left
        elif op in flip:
            left, right = right, left
            op = flip[op]
    return (op, left, right)


def _scope_consistent(left: QueryPattern, right: QueryPattern,
                      mapping: dict[str, str]) -> bool:
    """The bijection must map same-scope variables to same-scope variables."""
    right_scope = {v.name: v.scope for v in right.variables}
    left_scope = {v.name: v.scope for v in left.variables}
    names = list(mapping)
    for a, b in itertools.combinations(names, 2):
        same_left = left_scope[a] == left_scope[b]
        same_right = right_scope[mapping[a]] == right_scope[mapping[b]]
        if same_left != same_right:
            return False
    return True


def same_pattern(sql_or_trc_a, sql_or_trc_b, schema=None) -> bool:
    """Convenience: compare the patterns of two queries given as SQL text or TRC.

    SQL inputs require ``schema`` for translation.
    """
    from repro.translate.sql_to_trc import sql_to_trc

    def to_pattern(query) -> QueryPattern:
        if isinstance(query, TRCQuery):
            return pattern_of(query)
        if isinstance(query, str) and not query.strip().startswith("{"):
            if schema is None:
                raise PatternError("a database schema is required to compare SQL queries")
            return pattern_of(sql_to_trc(query, schema))
        if isinstance(query, str):
            from repro.trc.parser import parse_trc

            return pattern_of(parse_trc(query))
        raise PatternError(f"cannot extract a pattern from {type(query).__name__}")

    return isomorphic(to_pattern(sql_or_trc_a), to_pattern(sql_or_trc_b))
