"""A formalism-agnostic diagram model.

Every diagrammatic formalism in this project (QueryVis, Relational Diagrams,
Peirce graphs, Euler/Venn, QBE, DFQL, ...) builds the same kind of object: a
:class:`Diagram` made of *nodes* (table boxes, predicates, dots, operator
bubbles), *edges* (lines and arrows, optionally attached to a specific
attribute row of a table node), and *groups* (nested bounding boxes: query
blocks, negation boxes, Peirce cuts).  The renderers in
:mod:`repro.core.render_svg`, :mod:`repro.core.render_dot`, and
:mod:`repro.core.render_text` consume this model, so each formalism only has
to worry about *what* to draw, not *how*.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterable, Iterator


class DiagramError(Exception):
    """Raised for malformed diagrams (dangling edges, cyclic groups, ...)."""


@dataclass(frozen=True)
class DiagramNode:
    """One visual node.

    ``kind`` is a free-form tag used by metrics and by formalism-specific
    post-processing; the renderers only look at ``shape``, ``label``, and
    ``rows``.  Table-style nodes have a header (``label``) and one text row
    per attribute (``rows``); edges may attach to a row by name (ports).
    """

    id: str
    kind: str = "node"
    label: str = ""
    rows: tuple[str, ...] = ()
    group: str | None = None
    shape: str = "box"  # box | ellipse | point | plaintext | table

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(self.rows))

    def with_group(self, group: str | None) -> "DiagramNode":
        return replace(self, group=group)


@dataclass(frozen=True)
class DiagramEdge:
    """A line or arrow between two nodes (optionally between specific rows)."""

    source: str
    target: str
    label: str = ""
    style: str = "solid"  # solid | dashed | bold | double
    directed: bool = False
    source_port: str | None = None
    target_port: str | None = None
    kind: str = "edge"


@dataclass(frozen=True)
class DiagramGroup:
    """A (possibly nested) bounding box.

    ``style`` distinguishes plain grouping boxes from negation boxes
    (``"negation"``), Peirce cuts (``"cut"``), and dashed annotation frames.
    """

    id: str
    label: str = ""
    parent: str | None = None
    style: str = "solid"  # solid | dashed | negation | cut | shaded
    kind: str = "group"


class Diagram:
    """A container of nodes, edges, and nested groups."""

    def __init__(self, name: str = "diagram", *, formalism: str = "generic") -> None:
        self.name = name
        self.formalism = formalism
        self.nodes: dict[str, DiagramNode] = {}
        self.edges: list[DiagramEdge] = []
        self.groups: dict[str, DiagramGroup] = {}
        self._id_counter = itertools.count(1)

    # -- construction ------------------------------------------------------
    def fresh_id(self, prefix: str = "n") -> str:
        while True:
            candidate = f"{prefix}{next(self._id_counter)}"
            if candidate not in self.nodes and candidate not in self.groups:
                return candidate

    def add_node(self, node: "DiagramNode | None" = None, **kwargs) -> DiagramNode:
        """Add a node (either a prebuilt node or keyword arguments)."""
        if node is None:
            kwargs.setdefault("id", self.fresh_id())
            node = DiagramNode(**kwargs)
        if node.id in self.nodes:
            raise DiagramError(f"duplicate node id {node.id!r}")
        if node.group is not None and node.group not in self.groups:
            raise DiagramError(f"node {node.id!r} references unknown group {node.group!r}")
        self.nodes[node.id] = node
        return node

    def add_group(self, group: "DiagramGroup | None" = None, **kwargs) -> DiagramGroup:
        if group is None:
            kwargs.setdefault("id", self.fresh_id("g"))
            group = DiagramGroup(**kwargs)
        if group.id in self.groups:
            raise DiagramError(f"duplicate group id {group.id!r}")
        if group.parent is not None and group.parent not in self.groups:
            raise DiagramError(f"group {group.id!r} references unknown parent {group.parent!r}")
        self.groups[group.id] = group
        return group

    def add_edge(self, edge: "DiagramEdge | None" = None, **kwargs) -> DiagramEdge:
        if edge is None:
            edge = DiagramEdge(**kwargs)
        for endpoint in (edge.source, edge.target):
            if endpoint not in self.nodes:
                raise DiagramError(f"edge endpoint {endpoint!r} is not a node")
        self.edges.append(edge)
        return edge

    # -- structure ---------------------------------------------------------
    def children_of(self, group_id: str | None) -> tuple[list[DiagramNode], list[DiagramGroup]]:
        """Direct member nodes and direct child groups of a group (None = top level)."""
        nodes = [n for n in self.nodes.values() if n.group == group_id]
        groups = [g for g in self.groups.values() if g.parent == group_id]
        return nodes, groups

    def group_depth(self, group_id: str) -> int:
        depth = 0
        current = self.groups.get(group_id)
        seen = set()
        while current is not None and current.parent is not None:
            if current.id in seen:
                raise DiagramError("cyclic group nesting")
            seen.add(current.id)
            depth += 1
            current = self.groups.get(current.parent)
        return depth

    def max_nesting_depth(self) -> int:
        """Deepest group nesting (e.g. Peirce cut depth)."""
        if not self.groups:
            return 0
        return max(self.group_depth(g) for g in self.groups) + 1

    def ancestors_of_node(self, node_id: str) -> list[str]:
        """Group ids containing the node, innermost first."""
        node = self.nodes[node_id]
        out: list[str] = []
        current = node.group
        while current is not None:
            out.append(current)
            current = self.groups[current].parent
        return out

    def walk_groups(self) -> Iterator[DiagramGroup]:
        return iter(self.groups.values())

    def edges_between(self, source: str, target: str) -> list[DiagramEdge]:
        return [e for e in self.edges
                if (e.source == source and e.target == target)
                or (e.source == target and e.target == source)]

    def validate(self) -> list[str]:
        """Structural problems (empty list means the diagram is well-formed)."""
        problems = []
        for edge in self.edges:
            if edge.source not in self.nodes or edge.target not in self.nodes:
                problems.append(f"dangling edge {edge.source}->{edge.target}")
            if edge.source_port and edge.source in self.nodes \
                    and edge.source_port not in self.nodes[edge.source].rows:
                problems.append(
                    f"edge references unknown row {edge.source_port!r} of {edge.source}"
                )
            if edge.target_port and edge.target in self.nodes \
                    and edge.target_port not in self.nodes[edge.target].rows:
                problems.append(
                    f"edge references unknown row {edge.target_port!r} of {edge.target}"
                )
        for group in self.groups.values():
            try:
                self.group_depth(group.id)
            except DiagramError:
                problems.append(f"cyclic group nesting at {group.id}")
        return problems

    # -- statistics (used by experiment T7) ----------------------------------
    def element_counts(self) -> dict[str, int]:
        """Counts of the visual vocabulary used by this diagram."""
        return {
            "nodes": len(self.nodes),
            "table_nodes": sum(1 for n in self.nodes.values() if n.kind == "table"),
            "attribute_rows": sum(len(n.rows) for n in self.nodes.values()),
            "edges": len(self.edges),
            "directed_edges": sum(1 for e in self.edges if e.directed),
            "labelled_edges": sum(1 for e in self.edges if e.label),
            "groups": len(self.groups),
            "negation_groups": sum(
                1 for g in self.groups.values() if g.style in ("negation", "cut")
            ),
            "max_nesting_depth": self.max_nesting_depth(),
        }

    def total_ink(self) -> int:
        """A single-number size proxy: nodes + rows + edges + groups."""
        counts = self.element_counts()
        return (counts["nodes"] + counts["attribute_rows"]
                + counts["edges"] + counts["groups"])

    # -- rendering -----------------------------------------------------------
    def to_dot(self) -> str:
        from repro.core.render_dot import render_dot

        return render_dot(self)

    def to_svg(self) -> str:
        from repro.core.render_svg import render_svg

        return render_svg(self)

    def to_ascii(self) -> str:
        from repro.core.render_text import render_text

        return render_text(self)

    def __repr__(self) -> str:
        return (f"Diagram({self.name!r}, formalism={self.formalism!r}, "
                f"{len(self.nodes)} nodes, {len(self.edges)} edges, "
                f"{len(self.groups)} groups)")


def merge_side_by_side(diagrams: Iterable[Diagram], name: str = "combined",
                       *, labels: Iterable[str] | None = None) -> Diagram:
    """Combine several diagrams into one (used for "union of diagrams").

    Each input diagram is wrapped in its own top-level group so the renderers
    place them next to each other; node ids are prefixed to avoid collisions.
    """
    combined = Diagram(name, formalism="union")
    labels = list(labels) if labels is not None else []
    for index, diagram in enumerate(diagrams):
        prefix = f"d{index}_"
        label = labels[index] if index < len(labels) else diagram.name
        wrapper = combined.add_group(DiagramGroup(f"{prefix}wrapper", label=label,
                                                  style="dashed"))
        for group in diagram.groups.values():
            combined.add_group(DiagramGroup(
                prefix + group.id, group.label,
                prefix + group.parent if group.parent else wrapper.id,
                group.style, group.kind,
            ))
        for node in diagram.nodes.values():
            combined.add_node(DiagramNode(
                prefix + node.id, node.kind, node.label, node.rows,
                prefix + node.group if node.group else wrapper.id, node.shape,
            ))
        for edge in diagram.edges:
            combined.add_edge(DiagramEdge(
                prefix + edge.source, prefix + edge.target, edge.label, edge.style,
                edge.directed, edge.source_port, edge.target_port, edge.kind,
            ))
    return combined
