"""Graphviz DOT rendering of diagrams.

The DOT output uses clusters for groups, record-ish HTML labels for table
nodes, and the usual edge attributes.  It is plain text — rendering it to an
image requires Graphviz, which is intentionally *not* a dependency; the DOT
text itself is useful for inspection, diffing, and as an interchange format.
"""

from __future__ import annotations

from repro.core.diagram import Diagram, DiagramGroup

_GROUP_STYLE = {
    "solid": ("solid", "gray40"),
    "dashed": ("dashed", "gray60"),
    "negation": ("bold", "red3"),
    "cut": ("solid", "blue4"),
    "shaded": ("filled", "gray80"),
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _html_escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;"))


def _node_statement(node) -> str:
    if node.shape == "point":
        label = f' xlabel="{_escape(node.label)}"' if node.label else ""
        return f'"{node.id}" [shape=point, width=0.08{label}];'
    if node.shape == "plaintext":
        lines = [node.label] + list(node.rows) if node.label else list(node.rows)
        return f'"{node.id}" [shape=plaintext, label="{_escape(chr(10).join(lines))}"];'
    if node.rows:
        cells = "".join(
            f'<TR><TD ALIGN="LEFT" PORT="r{i}">{_html_escape(row)}</TD></TR>'
            for i, row in enumerate(node.rows)
        )
        header = (f'<TR><TD BGCOLOR="lightgrey"><B>{_html_escape(node.label)}</B></TD></TR>'
                  if node.label else "")
        return (f'"{node.id}" [shape=none, label=<'
                f'<TABLE BORDER="1" CELLBORDER="0" CELLSPACING="0" CELLPADDING="3">'
                f"{header}{cells}</TABLE>>];")
    shape = "ellipse" if node.shape == "ellipse" else "box"
    return f'"{node.id}" [shape={shape}, label="{_escape(node.label)}"];'


def render_dot(diagram: Diagram) -> str:
    """Render the diagram as Graphviz DOT text."""
    lines = [f'digraph "{_escape(diagram.name)}" {{']
    lines.append('  graph [compound=true, rankdir=LR, fontname="Helvetica"];')
    lines.append('  node [fontname="Helvetica", fontsize=11];')
    lines.append('  edge [fontname="Helvetica", fontsize=10];')

    def emit_group(group: DiagramGroup, indent: str) -> list[str]:
        style, color = _GROUP_STYLE.get(group.style, _GROUP_STYLE["solid"])
        out = [f'{indent}subgraph "cluster_{group.id}" {{']
        out.append(f'{indent}  label="{_escape(group.label)}";')
        out.append(f'{indent}  style={style}; color={color};')
        nodes, subgroups = diagram.children_of(group.id)
        for node in nodes:
            out.append(indent + "  " + _node_statement(node))
        for subgroup in subgroups:
            out.extend(emit_group(subgroup, indent + "  "))
        out.append(f"{indent}}}")
        return out

    top_nodes, top_groups = diagram.children_of(None)
    for node in top_nodes:
        lines.append("  " + _node_statement(node))
    for group in top_groups:
        lines.extend(emit_group(group, "  "))

    for edge in diagram.edges:
        source = f'"{edge.source}"'
        target = f'"{edge.target}"'
        source_node = diagram.nodes[edge.source]
        target_node = diagram.nodes[edge.target]
        if edge.source_port and edge.source_port in source_node.rows:
            source += f":r{source_node.rows.index(edge.source_port)}"
        if edge.target_port and edge.target_port in target_node.rows:
            target += f":r{target_node.rows.index(edge.target_port)}"
        attrs = []
        if edge.label:
            attrs.append(f'label="{_escape(edge.label)}"')
        if edge.style == "dashed":
            attrs.append("style=dashed")
        elif edge.style == "bold":
            attrs.append("style=bold")
        if not edge.directed:
            attrs.append("dir=none")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {source} -> {target}{attr_text};")

    lines.append("}")
    return "\n".join(lines)
