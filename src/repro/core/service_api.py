"""The unified service API: one surface for every deployment shape.

Serving grew in layers — :class:`~repro.core.service.QueryService` (PR 3),
materialized views (PR 4), :class:`~repro.core.sharded_service.ShardedQueryService`
(PR 5), the process backend (PR 6) — and each layer accreted its own kwargs
and result conventions.  The HTTP tier (:mod:`repro.server`) must be
writable against *one* abstract surface so a single code path serves
single-node, sharded, and process-backend deployments.  This module is that
surface:

* :class:`ServiceAPI` — a :class:`typing.Protocol` naming the methods every
  service implementation provides, with identical signatures and return
  shapes.  The HTTP layer (and any future protocol front end) depends on
  this protocol alone, never on a concrete service class.
* :class:`QueryResult` — the structured answer envelope.  Where
  ``answer()`` returns a bare :class:`~repro.data.relation.Relation` and
  surfaces engine-fallback warnings only through an optional out-param,
  :meth:`ServiceBase.query` always returns columns + rows + the version
  token the answer was computed against + the warnings list — the shape a
  wire format can serialize without knowing service internals.
* :class:`ServiceError` — a JSON-serializable structured error hierarchy
  (``code`` / ``message`` / ``detail``).  :func:`wrap_service_error`
  classifies the zoo of parser, plan, storage, and view exceptions into it,
  so no bare traceback ever crosses a protocol boundary; each subclass
  carries the HTTP status its code maps to (400 / 404 / 409 / 503).
* :class:`ServiceBase` — the shared mixin implementing the envelope path
  (:meth:`~ServiceBase.query`) and the default
  :meth:`~ServiceBase.execution_counts` on top of the primitives the
  concrete services already provide.

Several error classes deliberately multiple-inherit the stdlib type the
services historically raised (``ValueError`` for an unknown language or a
view conflict, ``KeyError`` for an unknown view, ``NotImplementedError``
for genuinely unsupported operations), so existing callers catching the
stdlib type keep working while protocol layers catch
:class:`ServiceError`.  The view surface itself — register / list /
refresh / unregister, plus the 409 conflict and 404 unknown-view
contracts — behaves identically on single-node and sharded services.
"""

from __future__ import annotations

from contextlib import AbstractContextManager
from dataclasses import dataclass
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

from repro.data.relation import Relation, Row

#: Version token of one answer: the scalar database version (single node)
#: or the ``(generation, structure, v0, v1, ...)`` shard-version vector
#: (sharded; the leading epoch changes on reshard).
VersionToken = "int | tuple[int, ...]"


# ---------------------------------------------------------------------------
# Structured errors
# ---------------------------------------------------------------------------

class ServiceError(Exception):
    """A structured, JSON-serializable serving error.

    ``code`` is a stable machine-readable identifier, ``message`` the
    human-readable one-liner, ``detail`` a JSON-safe dict of extra context
    (offending value, exception type, ...).  ``http_status`` is the status
    a protocol layer maps the code to; it never leaks server internals —
    :meth:`to_payload` is the entire wire representation.
    """

    code = "internal"
    http_status = 500

    def __init__(self, message: str, *, detail: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.detail = dict(detail or {})

    def to_payload(self) -> dict[str, Any]:
        """The JSON body of this error: ``{"code", "message", "detail"}``."""
        return {"code": self.code, "message": self.message,
                "detail": self.detail}

    def __str__(self) -> str:
        return self.message


class QueryParseError(ServiceError):
    """The query text does not parse (or fails language-level semantics)."""

    code = "parse_error"
    http_status = 400


class UnknownLanguageError(ServiceError, ValueError):
    """The requested query language is not one of the five served."""

    code = "unknown_language"
    http_status = 400


class PlanRejectedError(ServiceError):
    """The engine rejected the plan (lowering, planning, or verification)."""

    code = "plan_error"
    http_status = 400


class InvalidRequestError(ServiceError):
    """A structurally invalid request (bad JSON, missing fields, bad row)."""

    code = "invalid_request"
    http_status = 400


class UnsupportedOperationError(ServiceError, NotImplementedError):
    """The operation is not supported by this deployment shape."""

    code = "unsupported"
    http_status = 400


class UnknownViewError(ServiceError, KeyError):
    """No registered view with the requested name."""

    code = "unknown_view"
    http_status = 404


class UnknownRelationError(ServiceError, KeyError):
    """No relation with the requested name in the database."""

    code = "unknown_relation"
    http_status = 404


class UnknownHandleError(ServiceError, KeyError):
    """No prepared-statement handle with the requested id."""

    code = "unknown_handle"
    http_status = 404


class ViewConflictError(ServiceError, ValueError):
    """A view registration conflicts with an existing registration."""

    code = "view_conflict"
    http_status = 409


class FrozenMutationError(ServiceError):
    """A write targeted a frozen relation (cached answer / merged view)."""

    code = "frozen_mutation"
    http_status = 409


class OverloadedError(ServiceError):
    """Admission control shed the request; retry after ``retry_after`` s."""

    code = "overloaded"
    http_status = 503

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 detail: dict[str, Any] | None = None) -> None:
        super().__init__(message, detail=detail)
        self.retry_after = retry_after


def wrap_service_error(exc: BaseException) -> ServiceError:
    """Classify an arbitrary serving exception into the structured hierarchy.

    Protocol layers call this at their boundary: whatever a service call
    raised, the caller gets back a :class:`ServiceError` whose
    ``code``/``http_status`` encode the class of failure and whose
    ``detail`` records the original exception type — never a traceback.
    """
    if isinstance(exc, ServiceError):
        return exc
    from repro.data.relation import RelationError
    from repro.datalog.ast import DatalogError
    from repro.drc.ast import DRCError
    from repro.engine.lower import LoweringError
    from repro.engine.plan import PlanError
    from repro.engine.verify import PlanVerificationError
    from repro.data.schema import SchemaError
    from repro.ra.ast import RAError
    from repro.sql.evaluate import SQLEvaluationError
    from repro.sql.lexer import SQLSyntaxError
    from repro.trc.ast import TRCError

    detail = {"exception": type(exc).__name__}
    message = str(exc) or type(exc).__name__
    if isinstance(exc, (SQLSyntaxError, SQLEvaluationError, RAError,
                        TRCError, DRCError, DatalogError)):
        return QueryParseError(message, detail=detail)
    if isinstance(exc, PlanVerificationError):
        detail["rule"] = exc.rule
        return PlanRejectedError(message, detail=detail)
    if isinstance(exc, (PlanError, LoweringError)):
        return PlanRejectedError(message, detail=detail)
    if isinstance(exc, RelationError):
        # The storage layer raises one error type for both shapes; frozen
        # mutations self-identify in the message (see Relation.freeze).
        if "frozen" in message:
            return FrozenMutationError(message, detail=detail)
        return InvalidRequestError(message, detail=dict(detail, code_hint="invalid_row"))
    if isinstance(exc, SchemaError):
        # One error type for both shapes here too: name lookups on the
        # database say "has no relation", everything else is a malformed
        # schema/row problem.
        if "has no relation" in message:
            return UnknownRelationError(message, detail=detail)
        return InvalidRequestError(message, detail=detail)
    if isinstance(exc, NotImplementedError):
        return UnsupportedOperationError(message, detail=detail)
    if isinstance(exc, KeyError):
        # Bare KeyErrors out of a service call are name lookups (the
        # typed lookups raise UnknownViewError/UnknownHandleError already).
        name = exc.args[0] if exc.args else ""
        return UnknownRelationError(f"unknown relation {name!r}",
                                    detail=dict(detail, name=str(name)))
    if isinstance(exc, ValueError):
        return InvalidRequestError(message, detail=detail)
    return ServiceError(f"internal error: {type(exc).__name__}", detail=detail)


# ---------------------------------------------------------------------------
# The structured answer envelope
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class QueryResult:
    """One query's structured answer: the wire-ready result envelope.

    ``version`` is the service's cache-version token at publication time —
    a scalar database version on a single-node service, the shard-version
    vector on a sharded one.  ``warnings`` always has the same shape on
    every service: a tuple of engine-fallback messages (empty when the
    engine served the query), exactly what
    :meth:`~repro.core.pipeline.QueryVisualizationPipeline.answer` reports
    through its out-param.  ``relation`` is the frozen answer itself for
    in-process callers; it is not part of the wire payload.
    """

    columns: tuple[str, ...]
    rows: tuple[Row, ...]
    language: str
    fingerprint: str
    version: Any
    warnings: tuple[str, ...]
    relation: Relation

    def to_payload(self) -> dict[str, Any]:
        """The JSON-serializable wire form (no Relation objects)."""
        version = self.version
        if isinstance(version, tuple):
            version = list(version)
        return {
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "row_count": len(self.rows),
            "language": self.language,
            "fingerprint": self.fingerprint,
            "version": version,
            "warnings": list(self.warnings),
        }


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------

@runtime_checkable
class ServiceAPI(Protocol):
    """What every query service exposes — the HTTP tier's whole world.

    :class:`~repro.core.service.QueryService` and
    :class:`~repro.core.sharded_service.ShardedQueryService` both satisfy
    this protocol; :mod:`repro.server` is written against it alone, so one
    server codebase fronts single-node, sharded, and process-backend
    deployments (and test doubles).
    """

    def query(self, text: str, *, language: str | None = None) -> QueryResult:
        """Serve one query as a structured :class:`QueryResult` envelope."""
        ...

    def answer(self, text: str, *, language: str | None = None,
               warnings: "list[str] | None" = None) -> Relation:
        """Serve one query as a frozen relation (in-process fast path)."""
        ...

    def prepare(self, text: str, *, language: str | None = None) -> Any:
        """Parse + plan now; returns a reusable prepared-query handle."""
        ...

    def add_row(self, relation: str, row: Sequence[Any], *,
                validate: bool = True) -> int:
        """Append one row; returns the new database version."""
        ...

    def add_rows(self, relation: str, rows: Iterable[Sequence[Any]], *,
                 validate: bool = True) -> int:
        """Append a batch under one version bump; returns the new version."""
        ...

    def writing(self) -> AbstractContextManager[Any]:
        """Exclusive write section (context manager yielding the database)."""
        ...

    def register_view(self, text: str, *, language: str | None = None,
                      name: str | None = None, refresh: str = "lazy") -> Any:
        """Materialize + maintain one query; returns the view handle."""
        ...

    def unregister_view(self, view: Any) -> None:
        """Drop a view by handle or name."""
        ...

    def view(self, name: str) -> Any:
        """Look up a registered view by name (raises unknown-view)."""
        ...

    def views(self) -> tuple[Any, ...]:
        """All registered views, in registration order."""
        ...

    def stats_snapshot(self) -> tuple[int, dict[str, Any]]:
        """``(version, {relation: stats})``, version-consistent."""
        ...

    def cache_info(self) -> dict[str, int]:
        """Result/plan/kernel cache counters, flat ints."""
        ...

    def execution_counts(self) -> dict[str, int]:
        """Backend routing + plan-verification counters, flat ints."""
        ...

    def close(self) -> None:
        """Release pools / shared-memory resources (idempotent)."""
        ...


# ---------------------------------------------------------------------------
# The shared base
# ---------------------------------------------------------------------------

class ServiceBase:
    """Mixin implementing the envelope path shared by every service.

    Concrete services provide ``answer`` / ``_resolve_language`` /
    ``_cache_version``; this base turns them into the uniform
    :meth:`query` envelope and the default :meth:`execution_counts`, so the
    warnings shape and error classification cannot drift between
    deployments.
    """

    def query(self, text: str, *, language: str | None = None) -> QueryResult:
        """Any-language text in, structured :class:`QueryResult` out.

        Unlike :meth:`answer`, the fallback ``warnings`` are always in the
        envelope (no out-param required) and every failure is raised as a
        structured :class:`ServiceError` — the behaviour is identical on
        every :class:`ServiceAPI` implementation.
        """
        from repro.core.pipeline import fingerprint_query

        warnings: list[str] = []
        try:
            resolved = self._resolve_language(text, language)  # type: ignore[attr-defined]
            relation = self.answer(text, language=resolved,  # type: ignore[attr-defined]
                                   warnings=warnings)
        except ServiceError:
            raise
        except Exception as exc:
            raise wrap_service_error(exc) from exc
        return self._envelope(relation, resolved,
                              fingerprint_query(text, resolved), warnings)

    def _envelope(self, relation: Relation, language: str, fingerprint: str,
                  warnings: list[str]) -> QueryResult:
        """Package one served relation as a :class:`QueryResult`."""
        return QueryResult(
            columns=relation.attribute_names,
            rows=tuple(relation.rows()),
            language=language,
            fingerprint=fingerprint,
            version=self._cache_version(),  # type: ignore[attr-defined]
            warnings=tuple(warnings),
            relation=relation,
        )

    def execution_counts(self) -> dict[str, int]:
        """Default backend counters: the process-wide verifier tallies.

        Single-node backends keep no routing counters; sharded services
        override this with their private backend's scatter/single-shard/
        fallback and kernel-cache counts (which already merge the verifier
        tallies), so the return shape — a flat ``dict[str, int]`` — is the
        same everywhere.
        """
        from repro.engine.verify import verification_counts

        return dict(verification_counts())


__all__ = [
    "FrozenMutationError",
    "InvalidRequestError",
    "OverloadedError",
    "PlanRejectedError",
    "QueryParseError",
    "QueryResult",
    "ServiceAPI",
    "ServiceBase",
    "ServiceError",
    "UnknownHandleError",
    "UnknownLanguageError",
    "UnknownRelationError",
    "UnknownViewError",
    "UnsupportedOperationError",
    "ViewConflictError",
    "wrap_service_error",
]
