"""Thread-safe serving over a hash-partitioned database.

:class:`ShardedQueryService` is :class:`~repro.core.service.QueryService`
pointed at a :class:`~repro.data.sharded.ShardedDatabase` and the
``"sharded"`` scatter-gather backend (:mod:`repro.engine.sharded`).  Four
things change relative to the base service:

* **Writes route to owning shards.**  :meth:`add_row` / :meth:`add_rows`
  hash each row's shard-key values and append to the one shard that owns
  it (under the service write lock, like every service write).  The merged
  read views the pipeline and interpreters see are frozen, so an
  accidental un-routed write raises instead of silently unbalancing a
  shard.
* **The result cache keys on the shard-version vector.**  Where the base
  service keys answers on the scalar database version, this service keys
  on ``(generation, structure version, v₀, v₁, ..., vₙ₋₁)`` — one
  component per shard, prefixed by a reshard generation epoch.
  Invalidation behaviour is identical (any routed write moves its shard's
  component), but the key now records exactly which shard states an answer
  was computed against, and the epoch makes keys from different shard
  *layouts* incomparable (see :meth:`reshard`).
* **Materialized views are maintained per shard.**
  :class:`ShardedMaterializedView` scatters a view's maintainable core
  into one delta-maintained partial per shard (over the shard's live
  relations, whose delta logs work) and combines the partials at refresh
  time — ``DISTINCT`` re-deduplicates globally, split aggregates
  (AVG = SUM + COUNT, presence counters) re-combine globally.  A write
  refreshes only the shards it touched; a shard that falls behind its
  bounded delta log recomputes *its* partial only.  Non-distributable
  plans degrade to rebuild-on-refresh, never a wrong answer.
* **The cluster reshapes under live views.**  :meth:`reshard`
  re-partitions the database onto a new shard count/key layout atomically
  under the write lock, bumping the generation epoch and rematerializing
  every registered view against the new layout before any reader can
  observe it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.service import MaterializedView, QueryService
from repro.data.database import Database
from repro.data.sharded import (
    DEFAULT_N_SHARDS,
    ShardedDatabase,
    ShardKeySpec,
    reshard as reshard_database,
)

if TYPE_CHECKING:
    from repro.data.relation import Relation

#: Backend used for per-shard partial-view maintenance.  Shard-local plans
#: run single-node over one shard's (small) relations — routing them back
#: through the scatter-gather backend would re-shard the already-sharded.
_SHARD_LOCAL_BACKEND = "vectorized"


class ShardedMaterializedView(MaterializedView):
    """A materialized view maintained as one partial per shard.

    The registered plan's maintainable core (see
    :func:`~repro.engine.delta.find_core`) is compiled by
    :func:`~repro.engine.sharded.compile_view_scatter` into a per-shard
    scatter plan plus a gather-side combine, and each shard gets its own
    :class:`~repro.engine.delta.ViewMaintainer` running over a shard-local
    execution database (the shard's live relations plus frozen broadcast
    aliases).  Refresh semantics:

    * a routed write moves one shard's version component; only that
      shard's maintainer absorbs a delta, then the partials are
      re-combined and the finishing operators re-applied;
    * a shard whose bounded delta log no longer covers its window
      recomputes its own partial from scratch (siblings keep their
      incremental state) — counted in :attr:`shard_rebuilds`;
    * a write to a relation the plan reads via a **broadcast alias**
      invalidates every shard's partial (each partial joined against the
      full old copy), so all shards reinitialize;
    * recursive Datalog views keep one semi-naive maintainer over the
      merged database, fed per-predicate deltas gathered from the
      shard-local logs (merged views are rebuilt frozen copies with no
      usable logs of their own);
    * anything non-distributable or non-maintainable falls back to
      rebuild-on-refresh via the scatter-gather pipeline — correct, never
      incremental.

    A service :meth:`~ShardedQueryService.reshard` bumps the service
    generation; views stamped with an older generation refuse the
    lock-free fast path and rematerialize against the new layout.
    """

    def __init__(self, service: "ShardedQueryService", name: str, text: str,
                 language: str, fingerprint: str, refresh: str) -> None:
        super().__init__(service, name, text, language, fingerprint, refresh)
        self.shard_rebuilds = 0
        self._compiled: Any = None            # ShardedViewPlan | None
        self._shard_maintainers: list[Any] | None = None
        self._exec_dbs: list[Database] | None = None
        #: per shard: relation -> shard-local version last absorbed
        self._shard_anchors: list[dict[str, int]] = []
        #: broadcast-read relation -> merged version last captured
        self._broadcast_anchors: dict[str, int] = {}
        #: broadcast alias name -> alias version (as-of anchors for deltas)
        self._alias_anchors: dict[str, int] = {}
        self._generation = -1

    # -- serving -----------------------------------------------------------

    @property
    def strategy(self) -> str:
        """``"sharded-bag"`` / ``"sharded-distinct"`` /
        ``"sharded-aggregate"`` / ``"sharded-datalog"`` / ``"rebuild"``."""
        if self._shard_maintainers is not None and self._compiled is not None:
            return f"sharded-{self._compiled.kind}"
        if self._maintainer is not None:
            return f"sharded-{self._maintainer.kind}"
        return "rebuild"

    def answer(self, *, warnings: list[str] | None = None) -> Relation:
        service = self.service
        # Version first, then generation: a reshard bumps the generation
        # before swapping any state, and a refresh publishes the relation
        # before the version, so observing a current (version, generation)
        # pair guarantees the relation read afterwards matches the layout.
        if self._version == service.db.version \
                and self._generation == service._generation \
                and self._relation is not None:
            relation = self._relation
            if warnings is not None:
                warnings.extend(self._warnings)
            return relation
        with service._write_lock:
            relation = self._refresh_locked()
        if warnings is not None:
            warnings.extend(self._warnings)
        return relation

    def info(self) -> dict[str, Any]:
        info = super().info()
        info["current"] = (info["current"]
                           and self._generation == self.service._generation)
        info["n_shards"] = self.service.sharded_db.n_shards
        info["shard_rebuilds"] = self.shard_rebuilds
        info["generation"] = self._generation
        return info

    # -- maintenance (service write lock held) ------------------------------

    def _refresh_locked(self) -> Relation:
        service = self.service
        db = service.sharded_db
        if self._relation is not None and self._version == db.version \
                and self._generation == service._generation:
            return self._relation
        self.refreshes += 1
        if self._generation != service._generation \
                or self._structure_version != db.structure_version:
            # Resharded or schema changed: per-shard state describes a
            # layout that no longer exists.
            return self._rebuild_locked()
        if self._shard_maintainers is not None:
            return self._refresh_sharded_locked(db)
        if self._maintainer is not None and self._maintainer.kind == "datalog":
            return self._refresh_datalog_locked(db)
        return self._rebuild_locked()

    def _rebuild_locked(self) -> Relation:
        from repro.engine.delta import (
            DatalogMaintainer,
            DeltaRewriteError,
            base_relations,
            find_core,
        )
        from repro.engine.lower import LoweringError
        from repro.engine.plan import PlanError
        from repro.engine.sharded import (
            NotDistributable,
            compile_view_scatter,
            shard_execution_database,
        )

        service = self.service
        db = service.sharded_db
        self.rebuilds += 1
        self._maintainer = None
        self._plan = self._core = None
        self._compiled = None
        self._shard_maintainers = None
        self._exec_dbs = None
        self._shard_anchors = []
        self._broadcast_anchors = {}
        self._alias_anchors = {}
        self._base_rels = ()
        self._warnings = ()
        warnings: list[str] = []
        pipeline = service.pipeline
        if self.language == "datalog":
            from repro.core.pipeline import _parse

            if self._program is None:
                self._program = _parse(self.text, "datalog")
            try:
                maintainer = DatalogMaintainer(self._program, db)
                maintainer.initialize(db, _SHARD_LOCAL_BACKEND)
            except DeltaRewriteError:
                maintainer = None
            if maintainer is not None:
                self._maintainer = maintainer
                self._base_rels = maintainer.base_relations()
                self._record_anchors(db, self._base_rels, ())
                self._finish_publish(db, maintainer.result_relation(), ())
                return self._relation
            relation = pipeline.answer(self.text, language="datalog",
                                       warnings=warnings)
            self._finish_publish(db, relation, tuple(warnings))
            return self._relation
        plan = pipeline.prepare_plan(self.text, self.language)
        if plan is not None:
            self._plan = plan
            try:
                core, kind = find_core(plan)
                compiled = compile_view_scatter(core, kind, db,
                                                service.table_statistics)
                exec_dbs = [
                    shard_execution_database(db, i, compiled.partitioned,
                                             compiled.broadcast)
                    for i in range(db.n_shards)
                ]
                maintainers = [self._shard_maintainer(compiled, exec_db)
                               for exec_db in exec_dbs]
                for maintainer, exec_db in zip(maintainers, exec_dbs):
                    maintainer.initialize(exec_db, _SHARD_LOCAL_BACKEND)
                self._core = core
                self._compiled = compiled
                self._exec_dbs = exec_dbs
                self._shard_maintainers = maintainers
                self._base_rels = base_relations(core)
                self._record_anchors(db, compiled.partitioned,
                                     compiled.broadcast)
                self._publish_sharded(db)
                return self._relation
            except (DeltaRewriteError, NotDistributable, LoweringError,
                    PlanError):
                # Unmaintainable core or no safe scatter: serve by rebuild
                # (full scatter-gather recompute on every refresh).
                self._compiled = None
                self._shard_maintainers = None
                self._exec_dbs = None
        relation = pipeline.answer(self.text, language=self.language,
                                   warnings=warnings)
        self._finish_publish(db, relation, tuple(warnings))
        return self._relation

    @staticmethod
    def _shard_maintainer(compiled: Any, exec_db: Database) -> Any:
        from repro.engine.delta import (
            AggregateMaintainer,
            BagMaintainer,
            DistinctMaintainer,
        )

        if compiled.kind == "bag":
            return BagMaintainer(compiled.scatter, exec_db)
        if compiled.kind == "distinct":
            return DistinctMaintainer(compiled.scatter, exec_db)
        return AggregateMaintainer(compiled.scatter, exec_db)

    def _refresh_sharded_locked(self, db: ShardedDatabase) -> Relation:
        from repro.engine.delta import DeltaRewriteError
        from repro.engine.lower import LoweringError
        from repro.engine.plan import DeltaUnavailable, PlanError

        compiled = self._compiled
        for rel in sorted(compiled.broadcast):
            if db.relation_version(rel) != self._broadcast_anchors.get(rel, -1):
                # A broadcast-read relation grew somewhere: every shard's
                # partial joined against the full old copy, so every
                # shard's state is stale at once.
                return self._reinitialize_all_shards_locked(db)
        touched = False
        for i, maintainer in enumerate(self._shard_maintainers):
            anchors = self._shard_anchors[i]
            shard = db.shard(i)
            changed = {rel for rel in compiled.partitioned
                       if shard.relation(rel).version > anchors.get(rel, -1)}
            if not changed:
                continue
            touched = True
            window = dict(anchors)
            window.update(self._alias_anchors)
            try:
                maintainer.apply_delta(self._exec_dbs[i], window, changed,
                                       _SHARD_LOCAL_BACKEND)
            except (DeltaUnavailable, DeltaRewriteError, LoweringError,
                    PlanError):
                # This shard fell behind its bounded delta log: recompute
                # its partial only; sibling shards keep their state.
                maintainer.initialize(self._exec_dbs[i], _SHARD_LOCAL_BACKEND)
                self.shard_rebuilds += 1
            for rel in compiled.partitioned:
                anchors[rel] = shard.relation(rel).version
        if not touched:
            # Writes elsewhere in the database: output cannot have changed.
            self._version = db.version
            return self._relation
        self.incremental_refreshes += 1
        self._publish_sharded(db)
        return self._relation

    def _reinitialize_all_shards_locked(self, db: ShardedDatabase) -> Relation:
        from repro.engine.sharded import shard_execution_database

        compiled = self._compiled
        self._exec_dbs = [
            shard_execution_database(db, i, compiled.partitioned,
                                     compiled.broadcast)
            for i in range(db.n_shards)
        ]
        for maintainer, exec_db in zip(self._shard_maintainers,
                                       self._exec_dbs):
            maintainer.initialize(exec_db, _SHARD_LOCAL_BACKEND)
            self.shard_rebuilds += 1
        self._record_anchors(db, compiled.partitioned, compiled.broadcast)
        self._publish_sharded(db)
        return self._relation

    def _refresh_datalog_locked(self, db: ShardedDatabase) -> Relation:
        deltas: dict[str, list[tuple]] = {}
        for pred in self._base_rels:
            rows: list[tuple] = []
            pred_changed = False
            for i in range(db.n_shards):
                rel = db.shard(i).relation(pred)
                since = self._shard_anchors[i].get(pred, -1)
                if rel.version <= since:
                    continue
                pred_changed = True
                delta = rel.delta_since(since)
                if delta is None:
                    # One shard's log fell behind; the merged fixpoint
                    # cannot be resumed exactly — start over.
                    return self._rebuild_locked()
                rows.extend(delta)
            if pred_changed:
                deltas[pred] = rows
        if not deltas:
            self._version = db.version
            return self._relation
        # The union of per-shard appends is the merged delta (facts are
        # sets); db supplies the full current relations the resumed
        # fixpoint joins against.
        self._maintainer.apply_edb_deltas(db, deltas)
        self._record_anchors(db, self._base_rels, ())
        self.incremental_refreshes += 1
        self._finish_publish(db, self._maintainer.result_relation(), ())
        return self._relation

    def _publish_sharded(self, db: ShardedDatabase) -> None:
        from repro.engine.delta import finish_rows, view_result_relation

        parts = [maintainer.rows() for maintainer in self._shard_maintainers]
        rows = self._compiled.gather(parts)
        rows = finish_rows(db, self._plan, self._core, rows)
        self._finish_publish(db, view_result_relation(self._plan, rows),
                             self._warnings)

    def _record_anchors(self, db: ShardedDatabase,
                        partitioned: Iterable[str],
                        broadcast: Iterable[str]) -> None:
        from repro.data.sharded import BROADCAST_SUFFIX

        names = sorted(partitioned)
        self._shard_anchors = [
            {rel: db.shard(i).relation(rel).version for rel in names}
            for i in range(db.n_shards)
        ]
        self._broadcast_anchors = {}
        self._alias_anchors = {}
        for rel in sorted(broadcast):
            self._broadcast_anchors[rel] = db.relation_version(rel)
            # Broadcast aliases are frozen copies: anchoring an as-of scan
            # at the alias's own (current) version reads its full rows.
            alias = db.broadcast_relation(rel)
            self._alias_anchors[rel + BROADCAST_SUFFIX] = alias.version

    def _finish_publish(self, db: Database, relation: "Relation",
                        warnings: tuple[str, ...]) -> None:
        # Generation before version: the lock-free fast path trusts the
        # pair only when both are current.
        self._generation = self.service._generation
        super()._finish_publish(db, relation, warnings)


class ShardedQueryService(QueryService):
    """Serve the five-language pipeline over a sharded database.

    Parameters mirror :class:`QueryService`; additionally ``n_shards`` and
    ``shard_keys`` control the partitioning when ``db`` is a plain
    :class:`~repro.data.database.Database` (it is re-partitioned into a
    fresh :class:`ShardedDatabase`).  Pass an existing
    :class:`ShardedDatabase` to keep its layout.  ``backend`` selects the
    scatter-gather execution tier: ``"sharded"`` (default) runs shard
    subplans on threads, ``"process"`` runs them in worker processes over
    shared-memory column pages (:mod:`repro.engine.process`; ``workers``
    pins that pool's width).  Call :meth:`close` — or use the service as a
    context manager — to shut the worker pool down and unlink the page
    segments promptly.

    :meth:`register_view` works here: views materialize as per-shard
    partials (see :class:`ShardedMaterializedView`), and :meth:`reshard`
    re-partitions the cluster under live views without ever serving a
    stale-layout answer.
    """

    def __init__(self, db: Database | None = None, *,
                 backend: str = "sharded",
                 n_shards: int = DEFAULT_N_SHARDS,
                 shard_keys: ShardKeySpec | None = None,
                 workers: int | None = None,
                 plan_cache_size: int = 256,
                 result_cache_size: int = 1024,
                 max_retries: int = 4) -> None:
        if db is None:
            from repro.data.sailors import sailors_database

            db = sailors_database()
        if not isinstance(db, ShardedDatabase):
            db = ShardedDatabase.from_database(db, n_shards, shard_keys)
        super().__init__(db, backend="sharded",
                         plan_cache_size=plan_cache_size,
                         result_cache_size=result_cache_size,
                         max_retries=max_retries)
        self.sharded_db: ShardedDatabase = db
        #: Reshard epoch: bumped (under the write lock) every time the
        #: shard layout is replaced, so cache keys and view stamps from
        #: different layouts can never alias.
        self._generation = 0
        self._backend_kind = backend
        self._workers = workers
        self._sharded_backend = self._build_backend(db.n_shards)
        self.pipeline.backend = self._sharded_backend
        self.backend = self._sharded_backend

    def _build_backend(self, n_shards: int) -> Any:
        """A private backend instance for ``n_shards`` shards.

        Private (not the process-wide singleton) so ``execution_counts()``
        reports this service's traffic only, the compiled-plan cache is
        not shared with unrelated consumers, and ``close()`` tears down
        only this service's worker pool.
        """
        if self._backend_kind == "process":
            from repro.engine.process import ProcessBackend

            return ProcessBackend(n_shards, workers=self._workers)
        if self._backend_kind == "sharded":
            from repro.engine.sharded import ShardedBackend

            return ShardedBackend(n_shards)
        raise ValueError(
            f"unknown sharded-service backend {self._backend_kind!r}; "
            "expected 'sharded' or 'process'")

    # -- cache keying ------------------------------------------------------

    def _cache_version(self) -> tuple[int, ...]:
        """``(generation, structure version, per-shard versions...)``.

        A routed write bumps exactly one shard component; schema changes
        bump the structural component; :meth:`reshard` bumps the leading
        generation epoch.  The epoch is what makes the key sound: without
        it, two *layouts* (same shard count, different shard keys) can
        present identical version vectors while partitioning rows — and
        gathering answers — differently, so a cached answer from the old
        layout could validate against the new one.  Equality of vectors is
        the snapshot validation the base service's optimistic read path
        performs.
        """
        return (self._generation,
                self.sharded_db.structure_version,
                *self.sharded_db.shard_versions())

    # -- views -------------------------------------------------------------

    def _make_view(self, name: str, text: str, language: str,
                   fingerprint: str, refresh: str) -> MaterializedView:
        return ShardedMaterializedView(self, name, text, language,
                                       fingerprint, refresh)

    # -- routed writes -----------------------------------------------------

    def add_row(self, relation: str, row: Sequence[Any], *,
                validate: bool = True) -> int:
        """Append one row to its owning shard; returns the new db version."""
        with self._write_lock:
            self.sharded_db.add_row(relation, row, validate=validate)
            self._refresh_eager_views_locked()
            return self.db.version

    def add_rows(self, relation: str, rows: Iterable[Sequence[Any]], *,
                 validate: bool = True) -> int:
        """Append a batch, each row routed to its owning shard.

        Each touched shard absorbs its sub-batch as one version bump, so
        the cache-key vector moves by at most one per shard per batch.
        """
        with self._write_lock:
            self.sharded_db.add_rows(relation, rows, validate=validate)
            self._refresh_eager_views_locked()
            return self.db.version

    # -- elasticity --------------------------------------------------------

    def reshard(self, n_shards: int | None = None, *,
                shard_keys: ShardKeySpec | None = None) -> ShardedDatabase:
        """Re-partition the database onto a new shard layout, atomically.

        Runs entirely under the write lock: the merged contents are
        re-hashed into a fresh :class:`ShardedDatabase` (``n_shards``
        defaults to the current count; ``shard_keys`` overrides carry over
        otherwise), a new private backend sized for the new count replaces
        the old one, the result cache is cleared, and **every registered
        view is rematerialized against the new layout** before the lock is
        released.  The generation epoch is bumped *first*, so a lock-free
        reader that races the swap fails its generation check and
        serializes behind the lock instead of trusting a stale vector or a
        stale-layout view — the cache-version vector may change length or
        meaning across a reshard, and without the epoch equal-looking
        vectors from different layouts could alias.

        Returns the new database (also reachable as :attr:`sharded_db`).
        """
        with self._write_lock:
            old_db = self.sharded_db
            old_backend = self._sharded_backend
            count = n_shards if n_shards is not None else old_db.n_shards
            new_db = reshard_database(old_db, count, shard_keys)
            self._generation += 1
            self.sharded_db = new_db
            self.db = new_db
            self.pipeline.db = new_db
            from repro.engine.stats import StatsCatalog

            self.table_statistics = StatsCatalog(new_db)
            self._sharded_backend = self._build_backend(new_db.n_shards)
            self.pipeline.backend = self._sharded_backend
            self.backend = self._sharded_backend
            # Old-layout entries can never validate again (the generation
            # moved); clear them rather than let them age out.
            self._results.clear()
            for view in self._views.values():
                view.refreshes += 1
                view._rebuild_locked()
            if old_backend is not self._sharded_backend:
                close_backend = getattr(old_backend, "close", None)
                if callable(close_backend):
                    close_backend()
            old_db.close()
            return new_db

    # -- sharding introspection --------------------------------------------

    def shard_for(self, relation: str, row: Sequence[Any]) -> int:
        """The shard that owns (or would own) ``row`` of ``relation``."""
        return self.sharded_db.shard_of_row(relation, row)

    def execution_counts(self) -> dict[str, int]:
        """This service's backend counters: scatter / single-shard / fallback.

        Counted on the service's private backend instance, so concurrent
        services (or direct ``run_query(..., backend="sharded")`` calls
        elsewhere in the process) never bleed into the numbers.
        """
        return self._sharded_backend.execution_counts()

    def cache_info(self) -> dict[str, int]:
        info = super().cache_info()
        info["n_shards"] = self.sharded_db.n_shards
        info["generation"] = self._generation
        return info


__all__ = ["ShardedMaterializedView", "ShardedQueryService"]
