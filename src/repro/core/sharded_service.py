"""Thread-safe serving over a hash-partitioned database.

:class:`ShardedQueryService` is :class:`~repro.core.service.QueryService`
pointed at a :class:`~repro.data.sharded.ShardedDatabase` and the
``"sharded"`` scatter-gather backend (:mod:`repro.engine.sharded`).  Three
things change relative to the base service:

* **Writes route to owning shards.**  :meth:`add_row` / :meth:`add_rows`
  hash each row's shard-key values and append to the one shard that owns
  it (under the service write lock, like every service write).  The merged
  read views the pipeline and interpreters see are frozen, so an
  accidental un-routed write raises instead of silently unbalancing a
  shard.
* **The result cache keys on the shard-version vector.**  Where the base
  service keys answers on the scalar database version, this service keys
  on ``(structure version, v₀, v₁, ..., vₙ₋₁)`` — one component per shard.
  Invalidation behaviour is identical (any routed write moves its shard's
  component), but the key now records exactly which shard states an answer
  was computed against, which is the shape replication and rebalancing
  need later.
* **Point queries skip the gather step.**  A query whose filters pin a
  scattered relation's full shard key to constants is compiled by the
  backend to run on the single owning shard; :meth:`execution_counts`
  exposes how many requests took the single-shard path vs. a full
  scatter-gather or the single-node fallback.

Materialized views are **not** supported on a sharded service yet: the
delta logs live per shard while the view maintainers read the merged view,
so :meth:`register_view` raises instead of serving subtly stale answers.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.service import MaterializedView, QueryService
from repro.core.service_api import UnsupportedOperationError
from repro.data.database import Database
from repro.data.sharded import DEFAULT_N_SHARDS, ShardedDatabase, ShardKeySpec


class ShardedQueryService(QueryService):
    """Serve the five-language pipeline over a sharded database.

    Parameters mirror :class:`QueryService`; additionally ``n_shards`` and
    ``shard_keys`` control the partitioning when ``db`` is a plain
    :class:`~repro.data.database.Database` (it is re-partitioned into a
    fresh :class:`ShardedDatabase`).  Pass an existing
    :class:`ShardedDatabase` to keep its layout.  ``backend`` selects the
    scatter-gather execution tier: ``"sharded"`` (default) runs shard
    subplans on threads, ``"process"`` runs them in worker processes over
    shared-memory column pages (:mod:`repro.engine.process`; ``workers``
    pins that pool's width).  Call :meth:`close` — or use the service as a
    context manager — to shut the worker pool down and unlink the page
    segments promptly.
    """

    def __init__(self, db: Database | None = None, *,
                 backend: str = "sharded",
                 n_shards: int = DEFAULT_N_SHARDS,
                 shard_keys: ShardKeySpec | None = None,
                 workers: int | None = None,
                 plan_cache_size: int = 256,
                 result_cache_size: int = 1024,
                 max_retries: int = 4) -> None:
        if db is None:
            from repro.data.sailors import sailors_database

            db = sailors_database()
        if not isinstance(db, ShardedDatabase):
            db = ShardedDatabase.from_database(db, n_shards, shard_keys)
        super().__init__(db, backend="sharded",
                         plan_cache_size=plan_cache_size,
                         result_cache_size=result_cache_size,
                         max_retries=max_retries)
        self.sharded_db: ShardedDatabase = db
        # A private backend instance (not the process-wide singleton), so
        # execution_counts() reports this service's traffic only, the
        # compiled-plan cache is not shared with unrelated consumers, and
        # close() tears down only this service's worker pool.
        if backend == "process":
            from repro.engine.process import ProcessBackend

            self._sharded_backend: Any = ProcessBackend(db.n_shards,
                                                        workers=workers)
        elif backend == "sharded":
            from repro.engine.sharded import ShardedBackend

            self._sharded_backend = ShardedBackend(db.n_shards)
        else:
            raise ValueError(f"unknown sharded-service backend {backend!r}; "
                             "expected 'sharded' or 'process'")
        self.pipeline.backend = self._sharded_backend
        self.backend = self._sharded_backend

    # -- cache keying ------------------------------------------------------

    def _cache_version(self) -> tuple[int, ...]:
        """``(structure version, per-shard versions...)`` — the cache key.

        A routed write bumps exactly one component; schema changes bump the
        leading structural component.  Equality of vectors is the snapshot
        validation the base service's optimistic read path performs.
        """
        return (self.sharded_db.structure_version,
                *self.sharded_db.shard_versions())

    # -- routed writes -----------------------------------------------------

    def add_row(self, relation: str, row: Sequence[Any], *,
                validate: bool = True) -> int:
        """Append one row to its owning shard; returns the new db version."""
        with self._write_lock:
            self.sharded_db.add_row(relation, row, validate=validate)
            return self.db.version

    def add_rows(self, relation: str, rows: Iterable[Sequence[Any]], *,
                 validate: bool = True) -> int:
        """Append a batch, each row routed to its owning shard.

        Each touched shard absorbs its sub-batch as one version bump, so
        the cache-key vector moves by at most one per shard per batch.
        """
        with self._write_lock:
            self.sharded_db.add_rows(relation, rows, validate=validate)
            return self.db.version

    # -- sharding introspection --------------------------------------------

    def shard_for(self, relation: str, row: Sequence[Any]) -> int:
        """The shard that owns (or would own) ``row`` of ``relation``."""
        return self.sharded_db.shard_of_row(relation, row)

    def execution_counts(self) -> dict[str, int]:
        """This service's backend counters: scatter / single-shard / fallback.

        Counted on the service's private backend instance, so concurrent
        services (or direct ``run_query(..., backend="sharded")`` calls
        elsewhere in the process) never bleed into the numbers.
        """
        return self._sharded_backend.execution_counts()

    def cache_info(self) -> dict[str, int]:
        info = super().cache_info()
        info["n_shards"] = self.sharded_db.n_shards
        return info

    # -- unsupported surfaces ----------------------------------------------

    def register_view(self, text: str, *, language: str | None = None,
                      name: str | None = None,
                      refresh: str = "lazy") -> MaterializedView:
        """Materialized views are not supported over sharded storage yet.

        View maintenance reads per-relation delta logs, which live in the
        shard relations while queries read the (rebuilt-on-refresh) merged
        views — a maintainer anchored on one would silently miss the
        other's appends.  Raises
        :class:`~repro.core.service_api.UnsupportedOperationError` (a
        ``NotImplementedError`` subclass) until view maintenance is
        shard-aware; the plain result cache (vector-keyed) still serves
        repeated queries warm between writes.
        """
        raise UnsupportedOperationError(
            "materialized views are not supported on ShardedQueryService; "
            "use QueryService for view workloads or serve via the "
            "vector-keyed result cache",
            detail={"operation": "register_view"},
        )


__all__ = ["ShardedQueryService"]
