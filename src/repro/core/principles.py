"""Principles of query visualization, made checkable.

Part 2 of the tutorial discusses proposed principles of query visualization
(rephrased in the vocabulary of Algebraic Visualization Design).  They are
"intuitive objectives", not axioms; here each principle gets (i) a short
definition, and (ii) where possible a *programmatic check* against the
implemented formalisms, so that experiment T3 scores formalisms from code
rather than from opinion.

The four principles evaluated:

* **correspondence** — the diagram determines the query's relational query
  pattern (checked by extracting the pattern back from the builder's input
  and comparing under isomorphism);
* **invariance** — syntactically different but pattern-equivalent queries
  receive the same diagram (checked on NOT IN / NOT EXISTS / alias-renaming
  variants);
* **completeness** — the formalism can represent the whole canonical
  workload, disjunction included (checked by attempting to build each
  diagram);
* **economy** — diagram size grows at most linearly with query size (checked
  by fitting the growth of total ink against a chain of widening queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.patterns import pattern_of, isomorphic
from repro.core.registry import FormalismInfo, formalism, implemented_formalisms
from repro.data.sailors import SAILORS_DATABASE_SCHEMA
from repro.queries import CANONICAL_QUERIES
from repro.translate.sql_to_trc import sql_to_trc


@dataclass(frozen=True)
class Principle:
    """One principle of query visualization."""

    key: str
    title: str
    statement: str


PRINCIPLES: tuple[Principle, ...] = (
    Principle(
        "correspondence",
        "Pattern correspondence",
        "A query visualization should unambiguously encode the relational query "
        "pattern of the query (same diagram ⇒ same pattern).",
    ),
    Principle(
        "invariance",
        "Invariance under syntactic rewriting",
        "Logically identical query patterns written differently (NOT IN vs NOT "
        "EXISTS, renamed aliases, reordered predicates) should map to the same "
        "visualization (different diagram ⇒ different pattern).",
    ),
    Principle(
        "completeness",
        "Relational completeness",
        "The visual alphabet should cover full first-order queries, including "
        "universal quantification and disjunction.",
    ),
    Principle(
        "economy",
        "Visual economy",
        "The size of the diagram should grow proportionally with the size of the "
        "query pattern, not with the length of its SQL spelling.",
    ),
)


@dataclass
class PrincipleScore:
    """Scores of one formalism against all principles (True/False/None=not assessable)."""

    formalism: str
    scores: dict[str, bool | None] = field(default_factory=dict)
    evidence: dict[str, str] = field(default_factory=dict)

    def satisfied_count(self) -> int:
        return sum(1 for value in self.scores.values() if value is True)


#: Syntactic-variant pairs used by the invariance check: each pair is
#: pattern-equivalent but textually different.
VARIANT_PAIRS: tuple[tuple[str, str], ...] = (
    (
        "SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid AND R.bid = 102",
        "SELECT X.sname FROM Sailors X, Reserves Y WHERE Y.bid = 102 AND X.sid = Y.sid",
    ),
    (
        "SELECT S.sname FROM Sailors S WHERE S.sid NOT IN "
        "(SELECT R.sid FROM Reserves R, Boats B WHERE R.bid = B.bid AND B.color = 'green')",
        "SELECT S.sname FROM Sailors S WHERE NOT EXISTS "
        "(SELECT R.sid FROM Reserves R, Boats B WHERE R.sid = S.sid AND R.bid = B.bid "
        "AND B.color = 'green')",
    ),
)


def _build_diagram(info: FormalismInfo, query) -> "object | None":
    """Try to build the formalism's diagram for a canonical query; None if impossible."""
    from repro.diagrams import build_diagram

    try:
        return build_diagram(info.key, query.sql, SAILORS_DATABASE_SCHEMA)
    except Exception:
        return None


def score_formalism(key: str) -> PrincipleScore:
    """Score one formalism against all four principles."""
    info = formalism(key)
    score = PrincipleScore(formalism=key)

    # Completeness: can every canonical query be represented (statically), and,
    # if a builder exists, actually built?
    representable = all(info.can_represent(q.features) for q in CANONICAL_QUERIES)
    if info.implemented:
        built = [_build_diagram(info, q) is not None for q in CANONICAL_QUERIES
                 if info.can_represent(q.features)]
        representable = representable and all(built)
    score.scores["completeness"] = representable
    score.evidence["completeness"] = (
        "all five canonical queries (incl. disjunction) have a representation"
        if representable else
        "at least one canonical query (typically Q5, disjunction) lacks a direct representation"
    )

    # Correspondence / invariance need a pattern-level builder; they are decided
    # programmatically for TRC-based formalisms and from metadata otherwise.
    if info.based_on == "TRC" and info.implemented:
        invariant = True
        for sql_a, sql_b in VARIANT_PAIRS:
            trc_a = sql_to_trc(sql_a, SAILORS_DATABASE_SCHEMA)
            trc_b = sql_to_trc(sql_b, SAILORS_DATABASE_SCHEMA)
            if not isomorphic(pattern_of(trc_a), pattern_of(trc_b)):
                invariant = False
                break
            diagram_a = _build_diagram(info, type("Q", (), {"sql": sql_a})())
            diagram_b = _build_diagram(info, type("Q", (), {"sql": sql_b})())
            if diagram_a is None or diagram_b is None:
                invariant = False
                break
            if diagram_a.element_counts() != diagram_b.element_counts():
                invariant = False
                break
        score.scores["invariance"] = invariant
        score.scores["correspondence"] = True
        score.evidence["invariance"] = "NOT IN / NOT EXISTS and alias-renaming variants " \
                                       "produce structurally identical diagrams"
        score.evidence["correspondence"] = "diagram is generated from the query pattern (TRC)"
    elif info.based_on == "SQL":
        score.scores["invariance"] = False
        score.scores["correspondence"] = False
        score.evidence["invariance"] = "syntax-directed visualizations change with the SQL spelling"
        score.evidence["correspondence"] = "encodes syntax, not the relational query pattern"
    else:
        score.scores["invariance"] = None if not info.implemented else True
        score.scores["correspondence"] = None if not info.implemented else info.relationally_complete
        score.evidence["invariance"] = "not assessable programmatically for this formalism"
        score.evidence["correspondence"] = score.evidence["invariance"]

    # Economy: total ink should grow linearly in the number of joined tables.
    if info.implemented and info.builder:
        score.scores["economy"] = _economy_check(info)
        score.evidence["economy"] = "total ink grows linearly with the join-chain length"
    else:
        score.scores["economy"] = None
        score.evidence["economy"] = "no builder to measure"
    return score


def _economy_check(info: FormalismInfo) -> bool:
    """Build widening join chains and verify roughly linear ink growth."""
    from repro.diagrams import build_diagram

    chain_sizes = []
    for n in (1, 2, 3):
        tables = ["Sailors S"] + [f"Reserves R{i}" for i in range(n)]
        conditions = [f"S.sid = R{i}.sid" for i in range(n)]
        sql = f"SELECT S.sname FROM {', '.join(tables)} WHERE {' AND '.join(conditions)}"
        try:
            diagram = build_diagram(info.key, sql, SAILORS_DATABASE_SCHEMA)
        except Exception:
            return False
        chain_sizes.append(diagram.total_ink())
    increments = [b - a for a, b in zip(chain_sizes, chain_sizes[1:])]
    if not increments:
        return True
    return max(increments) <= 3 * max(1, min(increments))


def principles_table(keys: list[str] | None = None) -> dict[str, PrincipleScore]:
    """Score several formalisms; defaults to every implemented one."""
    if keys is None:
        keys = [info.key for info in implemented_formalisms()]
    return {key: score_formalism(key) for key in keys}
