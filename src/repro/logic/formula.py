"""First-order logic formulas over a relational signature.

The formula language is function-free FOL with equality and order
comparisons: atoms are relation atoms ``R(t1, ..., tn)`` or comparisons
``t1 op t2``; formulas are closed under the boolean connectives and the two
quantifiers.  Propositional logic is the quantifier-free, zero-arity-atom
fragment and is used by Peirce's alpha graphs and Venn diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro.logic.terms import Term, Var, term_of

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class LogicError(Exception):
    """Raised for malformed formulas."""


class Formula:
    """Base class of all formulas."""

    def children(self) -> tuple["Formula", ...]:
        return ()

    def walk(self) -> Iterator["Formula"]:
        yield self
        for child in self.children():
            yield from child.walk()

    # Convenience constructors so formulas compose with operators.
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Truth(Formula):
    """A logical constant TRUE or FALSE."""

    value: bool = True

    def __str__(self) -> str:
        return "TRUE" if self.value else "FALSE"


@dataclass(frozen=True)
class Atom(Formula):
    """A relation atom ``R(t1, ..., tn)``; with no terms it is a proposition."""

    predicate: str
    terms: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(term_of(t) for t in self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def __str__(self) -> str:
        if not self.terms:
            return self.predicate
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Compare(Formula):
    """A comparison atom ``t1 op t2``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        op = {"!=": "<>", "==": "="}.get(self.op, self.op)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", term_of(self.left))
        object.__setattr__(self, "right", term_of(self.right))
        if op not in COMPARISON_OPS:
            raise LogicError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction."""

    operands: tuple[Formula, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction."""

    operands: tuple[Formula, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula = Truth(True)

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"¬{self.operand}"


@dataclass(frozen=True)
class Implies(Formula):
    """Material implication ``antecedent → consequent``."""

    antecedent: Formula = Truth(True)
    consequent: Formula = Truth(True)

    def children(self) -> tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def __str__(self) -> str:
        return f"({self.antecedent} → {self.consequent})"


@dataclass(frozen=True)
class Iff(Formula):
    """Biconditional."""

    left: Formula = Truth(True)
    right: Formula = Truth(True)

    def children(self) -> tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ↔ {self.right})"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over one or more variables."""

    variables: tuple[Var, ...]
    body: Formula = Truth(True)

    def __post_init__(self) -> None:
        variables = self.variables
        if isinstance(variables, Var):
            variables = (variables,)
        object.__setattr__(self, "variables", tuple(variables))

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"∃{names}. {self.body}"


@dataclass(frozen=True)
class ForAll(Formula):
    """Universal quantification over one or more variables."""

    variables: tuple[Var, ...]
    body: Formula = Truth(True)

    def __post_init__(self) -> None:
        variables = self.variables
        if isinstance(variables, Var):
            variables = (variables,)
        object.__setattr__(self, "variables", tuple(variables))

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"∀{names}. {self.body}"


# ---------------------------------------------------------------------------
# Free variables, substitution, structural helpers
# ---------------------------------------------------------------------------

def free_variables(formula: Formula) -> list[Var]:
    """Free variables of a formula, in first-occurrence order."""
    out: list[Var] = []
    seen: set[str] = set()

    def visit(node: Formula, bound: frozenset[str]) -> None:
        if isinstance(node, Atom):
            for term in node.terms:
                if isinstance(term, Var) and term.name not in bound and term.name not in seen:
                    seen.add(term.name)
                    out.append(term)
        elif isinstance(node, Compare):
            for term in (node.left, node.right):
                if isinstance(term, Var) and term.name not in bound and term.name not in seen:
                    seen.add(term.name)
                    out.append(term)
        elif isinstance(node, (Exists, ForAll)):
            new_bound = bound | {v.name for v in node.variables}
            visit(node.body, new_bound)
        else:
            for child in node.children():
                visit(child, bound)

    visit(formula, frozenset())
    return out


def bound_variables(formula: Formula) -> list[Var]:
    """Variables that are bound by some quantifier, in quantifier order."""
    out: list[Var] = []
    seen: set[str] = set()
    for node in formula.walk():
        if isinstance(node, (Exists, ForAll)):
            for var in node.variables:
                if var.name not in seen:
                    seen.add(var.name)
                    out.append(var)
    return out


def all_variables(formula: Formula) -> list[Var]:
    """Every variable mentioned anywhere in the formula."""
    out: list[Var] = []
    seen: set[str] = set()

    def add(var: Var) -> None:
        if var.name not in seen:
            seen.add(var.name)
            out.append(var)

    for node in formula.walk():
        if isinstance(node, Atom):
            for term in node.terms:
                if isinstance(term, Var):
                    add(term)
        elif isinstance(node, Compare):
            for term in (node.left, node.right):
                if isinstance(term, Var):
                    add(term)
        elif isinstance(node, (Exists, ForAll)):
            for var in node.variables:
                add(var)
    return out


def is_sentence(formula: Formula) -> bool:
    """True iff the formula has no free variables (a logical statement)."""
    return not free_variables(formula)


def substitute(formula: Formula, mapping: Mapping[str, Term]) -> Formula:
    """Replace free occurrences of variables by terms.

    Bound variables shadow the substitution; no capture-avoidance renaming is
    attempted (callers standardize apart first when needed).
    """
    def sub_term(term: Term, bound: frozenset[str]) -> Term:
        if isinstance(term, Var) and term.name in mapping and term.name not in bound:
            return mapping[term.name]
        return term

    def visit(node: Formula, bound: frozenset[str]) -> Formula:
        if isinstance(node, (Truth,)):
            return node
        if isinstance(node, Atom):
            return Atom(node.predicate, tuple(sub_term(t, bound) for t in node.terms))
        if isinstance(node, Compare):
            return Compare(sub_term(node.left, bound), node.op, sub_term(node.right, bound))
        if isinstance(node, And):
            return And(tuple(visit(o, bound) for o in node.operands))
        if isinstance(node, Or):
            return Or(tuple(visit(o, bound) for o in node.operands))
        if isinstance(node, Not):
            return Not(visit(node.operand, bound))
        if isinstance(node, Implies):
            return Implies(visit(node.antecedent, bound), visit(node.consequent, bound))
        if isinstance(node, Iff):
            return Iff(visit(node.left, bound), visit(node.right, bound))
        if isinstance(node, Exists):
            new_bound = bound | {v.name for v in node.variables}
            return Exists(node.variables, visit(node.body, new_bound))
        if isinstance(node, ForAll):
            new_bound = bound | {v.name for v in node.variables}
            return ForAll(node.variables, visit(node.body, new_bound))
        raise LogicError(f"substitute: unhandled node {type(node).__name__}")

    return visit(formula, frozenset())


def rename_variables(formula: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename variables (both free and bound) according to ``mapping``."""
    def ren_term(term: Term) -> Term:
        if isinstance(term, Var) and term.name in mapping:
            return Var(mapping[term.name])
        return term

    def visit(node: Formula) -> Formula:
        if isinstance(node, Truth):
            return node
        if isinstance(node, Atom):
            return Atom(node.predicate, tuple(ren_term(t) for t in node.terms))
        if isinstance(node, Compare):
            return Compare(ren_term(node.left), node.op, ren_term(node.right))
        if isinstance(node, And):
            return And(tuple(visit(o) for o in node.operands))
        if isinstance(node, Or):
            return Or(tuple(visit(o) for o in node.operands))
        if isinstance(node, Not):
            return Not(visit(node.operand))
        if isinstance(node, Implies):
            return Implies(visit(node.antecedent), visit(node.consequent))
        if isinstance(node, Iff):
            return Iff(visit(node.left), visit(node.right))
        if isinstance(node, Exists):
            new_vars = tuple(Var(mapping.get(v.name, v.name)) for v in node.variables)
            return Exists(new_vars, visit(node.body))
        if isinstance(node, ForAll):
            new_vars = tuple(Var(mapping.get(v.name, v.name)) for v in node.variables)
            return ForAll(new_vars, visit(node.body))
        raise LogicError(f"rename_variables: unhandled node {type(node).__name__}")

    return visit(formula)


def atoms_of(formula: Formula) -> list[Atom]:
    """All relation atoms occurring in the formula."""
    return [node for node in formula.walk() if isinstance(node, Atom)]


def predicates_of(formula: Formula) -> list[str]:
    """Distinct predicate names, in first-occurrence order."""
    out: list[str] = []
    for atom in atoms_of(formula):
        if atom.predicate not in out:
            out.append(atom.predicate)
    return out


def map_formula(formula: Formula, fn: Callable[[Formula], Formula | None]) -> Formula:
    """Bottom-up rewrite: apply ``fn`` to every node; None keeps the rebuilt node."""
    def visit(node: Formula) -> Formula:
        if isinstance(node, (Truth, Atom, Compare)):
            rebuilt: Formula = node
        elif isinstance(node, And):
            rebuilt = And(tuple(visit(o) for o in node.operands))
        elif isinstance(node, Or):
            rebuilt = Or(tuple(visit(o) for o in node.operands))
        elif isinstance(node, Not):
            rebuilt = Not(visit(node.operand))
        elif isinstance(node, Implies):
            rebuilt = Implies(visit(node.antecedent), visit(node.consequent))
        elif isinstance(node, Iff):
            rebuilt = Iff(visit(node.left), visit(node.right))
        elif isinstance(node, Exists):
            rebuilt = Exists(node.variables, visit(node.body))
        elif isinstance(node, ForAll):
            rebuilt = ForAll(node.variables, visit(node.body))
        else:
            raise LogicError(f"map_formula: unhandled node {type(node).__name__}")
        replacement = fn(rebuilt)
        return rebuilt if replacement is None else replacement

    return visit(formula)


def conjunction(parts: Sequence[Formula]) -> Formula:
    """AND together formulas, flattening nested conjunctions."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.operands)
        elif isinstance(part, Truth) and part.value:
            continue
        else:
            flat.append(part)
    if not flat:
        return Truth(True)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(parts: Sequence[Formula]) -> Formula:
    """OR together formulas, flattening nested disjunctions."""
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, Or):
            flat.extend(part.operands)
        elif isinstance(part, Truth) and not part.value:
            continue
        else:
            flat.append(part)
    if not flat:
        return Truth(False)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))
