"""Finite-model (active domain) semantics for first-order formulas.

A :class:`Structure` is a finite interpretation: a domain of values plus one
finite relation per predicate name.  Quantifiers range over the domain, which
for database use is the *active domain* — exactly the semantics that make
safe relational calculus equivalent to relational algebra.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.data.database import Database
from repro.logic.formula import (
    And,
    Atom,
    Compare,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    LogicError,
    Not,
    Or,
    Truth,
    free_variables,
)
from repro.logic.terms import Const, Term, Var


class Structure:
    """A finite first-order structure (model)."""

    def __init__(
        self,
        domain: Iterable[Any],
        relations: Mapping[str, Iterable[tuple]] | None = None,
    ) -> None:
        self.domain: list[Any] = list(dict.fromkeys(domain))
        self.relations: dict[str, set[tuple]] = {}
        for name, rows in (relations or {}).items():
            self.relations[name.lower()] = {tuple(row) for row in rows}

    @classmethod
    def from_database(cls, db: Database) -> "Structure":
        """Interpret a database instance as a first-order structure."""
        relations = {rel.schema.name: rel.distinct_rows() for rel in db}
        return cls(sorted(db.active_domain(), key=lambda v: (str(type(v)), str(v))), relations)

    def relation(self, name: str) -> set[tuple]:
        return self.relations.get(name.lower(), set())

    def has_fact(self, name: str, row: tuple) -> bool:
        return tuple(row) in self.relation(name)

    def __repr__(self) -> str:
        rels = ", ".join(f"{k}:{len(v)}" for k, v in self.relations.items())
        return f"Structure(|domain|={len(self.domain)}, {rels})"


def _term_value(term: Term, assignment: Mapping[str, Any]) -> Any:
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        if term.name not in assignment:
            raise LogicError(f"unbound variable {term.name}")
        return assignment[term.name]
    raise LogicError(f"not a term: {term!r}")  # pragma: no cover


def _compare_values(left: Any, op: str, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise LogicError(f"unknown comparison {op!r}")  # pragma: no cover


def evaluate(
    formula: Formula,
    structure: Structure,
    assignment: Mapping[str, Any] | None = None,
) -> bool:
    """Evaluate ``formula`` in ``structure`` under ``assignment``.

    All free variables must be bound by ``assignment``.  Quantifiers range
    over the structure's domain.
    """
    env = dict(assignment or {})
    missing = [v.name for v in free_variables(formula) if v.name not in env]
    if missing:
        raise LogicError(f"unbound free variables: {', '.join(missing)}")
    return _eval(formula, structure, env)


def _eval(formula: Formula, structure: Structure, env: dict[str, Any]) -> bool:
    if isinstance(formula, Truth):
        return formula.value
    if isinstance(formula, Atom):
        row = tuple(_term_value(t, env) for t in formula.terms)
        return structure.has_fact(formula.predicate, row)
    if isinstance(formula, Compare):
        return _compare_values(
            _term_value(formula.left, env), formula.op, _term_value(formula.right, env)
        )
    if isinstance(formula, And):
        return all(_eval(o, structure, env) for o in formula.operands)
    if isinstance(formula, Or):
        return any(_eval(o, structure, env) for o in formula.operands)
    if isinstance(formula, Not):
        return not _eval(formula.operand, structure, env)
    if isinstance(formula, Implies):
        return (not _eval(formula.antecedent, structure, env)) or _eval(
            formula.consequent, structure, env
        )
    if isinstance(formula, Iff):
        return _eval(formula.left, structure, env) == _eval(formula.right, structure, env)
    if isinstance(formula, Exists):
        return _eval_quantifier(formula.variables, formula.body, structure, env, any_of=True)
    if isinstance(formula, ForAll):
        return _eval_quantifier(formula.variables, formula.body, structure, env, any_of=False)
    raise LogicError(f"evaluate: unhandled node {type(formula).__name__}")


def _eval_quantifier(
    variables: tuple[Var, ...],
    body: Formula,
    structure: Structure,
    env: dict[str, Any],
    *,
    any_of: bool,
) -> bool:
    """Evaluate ∃/∀ over the domain, one variable at a time."""
    if not variables:
        return _eval(body, structure, env)
    head, *rest = variables
    # Save any outer binding of the same name so that shadowing quantifiers
    # (∃x inside ∀x) restore it instead of clobbering it.
    shadowed = head.name in env
    saved = env.get(head.name)

    def restore() -> None:
        if shadowed:
            env[head.name] = saved
        else:
            env.pop(head.name, None)

    for value in structure.domain:
        env[head.name] = value
        result = _eval_quantifier(tuple(rest), body, structure, env, any_of=any_of)
        if any_of and result:
            restore()
            return True
        if not any_of and not result:
            restore()
            return False
    restore()
    return not any_of


def satisfying_assignments(
    formula: Formula,
    structure: Structure,
    variables: list[Var] | None = None,
) -> list[dict[str, Any]]:
    """All assignments of the free variables that satisfy the formula.

    This is the *query semantics* of a relational calculus formula: the answer
    relation is the set of satisfying assignments of its free variables,
    restricted to the active domain.
    """
    free = variables if variables is not None else free_variables(formula)
    results: list[dict[str, Any]] = []

    def extend(index: int, env: dict[str, Any]) -> None:
        if index == len(free):
            if _eval(formula, structure, dict(env)):
                results.append(dict(env))
            return
        var = free[index]
        for value in structure.domain:
            env[var.name] = value
            extend(index + 1, env)
        env.pop(var.name, None)

    extend(0, {})
    return results
