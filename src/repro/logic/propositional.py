"""Propositional logic utilities.

Peirce's *alpha* existential graphs, Venn diagrams, and Venn–Peirce diagrams
live in propositional (or monadic) logic.  Propositions are represented as
zero-arity :class:`~repro.logic.formula.Atom` nodes, so the whole formula
machinery is shared with FOL; this module adds truth-table based reasoning
which is feasible because the diagrams in the tutorial involve a handful of
propositional variables.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping

from repro.logic.formula import (
    And,
    Atom,
    Compare,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    LogicError,
    Not,
    Or,
    Truth,
)


def prop(name: str) -> Atom:
    """A propositional variable (zero-arity atom)."""
    return Atom(name, ())


def propositions(*names: str) -> list[Atom]:
    """Several propositional variables at once."""
    return [prop(name) for name in names]


def is_propositional(formula: Formula) -> bool:
    """True iff the formula contains no quantifiers, comparisons, or terms."""
    for node in formula.walk():
        if isinstance(node, (Exists, ForAll, Compare)):
            return False
        if isinstance(node, Atom) and node.terms:
            return False
    return True


def proposition_names(formula: Formula) -> list[str]:
    """Distinct propositional variable names, in first-occurrence order."""
    out: list[str] = []
    for node in formula.walk():
        if isinstance(node, Atom) and not node.terms and node.predicate not in out:
            out.append(node.predicate)
    return out


def eval_propositional(formula: Formula, valuation: Mapping[str, bool]) -> bool:
    """Evaluate a propositional formula under a truth-value assignment."""
    if isinstance(formula, Truth):
        return formula.value
    if isinstance(formula, Atom):
        if formula.terms:
            raise LogicError("not a propositional formula (atom has terms)")
        if formula.predicate not in valuation:
            raise LogicError(f"no truth value for proposition {formula.predicate!r}")
        return bool(valuation[formula.predicate])
    if isinstance(formula, And):
        return all(eval_propositional(o, valuation) for o in formula.operands)
    if isinstance(formula, Or):
        return any(eval_propositional(o, valuation) for o in formula.operands)
    if isinstance(formula, Not):
        return not eval_propositional(formula.operand, valuation)
    if isinstance(formula, Implies):
        return (not eval_propositional(formula.antecedent, valuation)) or eval_propositional(
            formula.consequent, valuation
        )
    if isinstance(formula, Iff):
        return eval_propositional(formula.left, valuation) == eval_propositional(
            formula.right, valuation
        )
    raise LogicError(f"not a propositional formula: {type(formula).__name__}")


def truth_table(formula: Formula, names: list[str] | None = None) -> list[tuple[dict[str, bool], bool]]:
    """The full truth table: (valuation, value) pairs in binary-counting order."""
    names = names if names is not None else proposition_names(formula)
    table = []
    for bits in itertools.product([False, True], repeat=len(names)):
        valuation = dict(zip(names, bits))
        table.append((valuation, eval_propositional(formula, valuation)))
    return table


def is_tautology(formula: Formula) -> bool:
    """True iff the formula is true under every valuation."""
    return all(value for _, value in truth_table(formula))


def is_satisfiable(formula: Formula) -> bool:
    """True iff some valuation makes the formula true."""
    return any(value for _, value in truth_table(formula))


def is_contradiction(formula: Formula) -> bool:
    """True iff no valuation makes the formula true."""
    return not is_satisfiable(formula)


def propositionally_equivalent(left: Formula, right: Formula) -> bool:
    """True iff the two formulas agree under every valuation of their variables."""
    names = sorted(set(proposition_names(left)) | set(proposition_names(right)))
    for bits in itertools.product([False, True], repeat=len(names)):
        valuation = dict(zip(names, bits))
        if eval_propositional(left, valuation) != eval_propositional(right, valuation):
            return False
    return True


def entails(premises: Iterable[Formula], conclusion: Formula) -> bool:
    """Propositional entailment by truth tables."""
    premises = list(premises)
    names: list[str] = []
    for formula in [*premises, conclusion]:
        for name in proposition_names(formula):
            if name not in names:
                names.append(name)
    for bits in itertools.product([False, True], repeat=len(names)):
        valuation = dict(zip(names, bits))
        if all(eval_propositional(p, valuation) for p in premises):
            if not eval_propositional(conclusion, valuation):
                return False
    return True


def models_of(formula: Formula) -> list[dict[str, bool]]:
    """All satisfying valuations."""
    return [valuation for valuation, value in truth_table(formula) if value]
