"""Normal-form transformations for first-order formulas.

The diagram translators need formulas in specific shapes: Peirce beta graphs
correspond to formulas built from ∃, ∧, ¬ only; Relational Diagrams need
negation normal form with ∨ eliminated or isolated; prenex form exposes the
quantifier prefix used by the "default reading order" of QueryVis.
"""

from __future__ import annotations

import itertools

from repro.logic.formula import (
    And,
    Atom,
    Compare,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    LogicError,
    Not,
    Or,
    Truth,
    all_variables,
    conjunction,
    disjunction,
    rename_variables,
)
from repro.logic.terms import Var, fresh_variable


def eliminate_implications(formula: Formula) -> Formula:
    """Rewrite → and ↔ in terms of ∧, ∨, ¬."""
    if isinstance(formula, (Truth, Atom, Compare)):
        return formula
    if isinstance(formula, And):
        return And(tuple(eliminate_implications(o) for o in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(eliminate_implications(o) for o in formula.operands))
    if isinstance(formula, Not):
        return Not(eliminate_implications(formula.operand))
    if isinstance(formula, Implies):
        return Or((Not(eliminate_implications(formula.antecedent)),
                   eliminate_implications(formula.consequent)))
    if isinstance(formula, Iff):
        left = eliminate_implications(formula.left)
        right = eliminate_implications(formula.right)
        return And((Or((Not(left), right)), Or((Not(right), left))))
    if isinstance(formula, Exists):
        return Exists(formula.variables, eliminate_implications(formula.body))
    if isinstance(formula, ForAll):
        return ForAll(formula.variables, eliminate_implications(formula.body))
    raise LogicError(f"eliminate_implications: unhandled {type(formula).__name__}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations only on atoms; no →, ↔."""
    formula = eliminate_implications(formula)

    def push(node: Formula, negate: bool) -> Formula:
        if isinstance(node, Truth):
            return Truth(node.value != negate)
        if isinstance(node, (Atom, Compare)):
            return Not(node) if negate else node
        if isinstance(node, Not):
            return push(node.operand, not negate)
        if isinstance(node, And):
            parts = tuple(push(o, negate) for o in node.operands)
            return Or(parts) if negate else And(parts)
        if isinstance(node, Or):
            parts = tuple(push(o, negate) for o in node.operands)
            return And(parts) if negate else Or(parts)
        if isinstance(node, Exists):
            body = push(node.body, negate)
            return ForAll(node.variables, body) if negate else Exists(node.variables, body)
        if isinstance(node, ForAll):
            body = push(node.body, negate)
            return Exists(node.variables, body) if negate else ForAll(node.variables, body)
        raise LogicError(f"to_nnf: unhandled {type(node).__name__}")

    return push(formula, False)


def standardize_apart(formula: Formula) -> Formula:
    """Rename bound variables so that every quantifier binds a distinct name."""
    used = {v.name for v in all_variables(formula)}
    counter = itertools.count(1)

    def visit(node: Formula, renaming: dict[str, str]) -> Formula:
        if isinstance(node, Truth):
            return node
        if isinstance(node, (Atom, Compare)):
            return rename_variables(node, renaming) if renaming else node
        if isinstance(node, And):
            return And(tuple(visit(o, renaming) for o in node.operands))
        if isinstance(node, Or):
            return Or(tuple(visit(o, renaming) for o in node.operands))
        if isinstance(node, Not):
            return Not(visit(node.operand, renaming))
        if isinstance(node, Implies):
            return Implies(visit(node.antecedent, renaming), visit(node.consequent, renaming))
        if isinstance(node, Iff):
            return Iff(visit(node.left, renaming), visit(node.right, renaming))
        if isinstance(node, (Exists, ForAll)):
            new_renaming = dict(renaming)
            new_vars = []
            for var in node.variables:
                if var.name in used_bound:
                    fresh = fresh_variable(var.name, used)
                    used.add(fresh.name)
                    new_renaming[var.name] = fresh.name
                    new_vars.append(fresh)
                else:
                    used_bound.add(var.name)
                    new_renaming.pop(var.name, None)
                    new_vars.append(var)
            body = visit(node.body, new_renaming)
            cls = Exists if isinstance(node, Exists) else ForAll
            return cls(tuple(new_vars), body)
        raise LogicError(f"standardize_apart: unhandled {type(node).__name__}")

    used_bound: set[str] = set()
    return visit(formula, {})


def to_prenex(formula: Formula) -> Formula:
    """Prenex normal form: all quantifiers pulled to the front.

    The input is first standardized apart and put into NNF, which makes the
    extraction of quantifiers capture-free.
    """
    formula = standardize_apart(to_nnf(formula))

    def pull(node: Formula) -> tuple[list[tuple[type, tuple[Var, ...]]], Formula]:
        if isinstance(node, (Truth, Atom, Compare, Not)):
            return [], node
        if isinstance(node, (Exists, ForAll)):
            prefix, matrix = pull(node.body)
            return [(type(node), node.variables)] + prefix, matrix
        if isinstance(node, (And, Or)):
            all_prefix: list[tuple[type, tuple[Var, ...]]] = []
            matrices = []
            for operand in node.operands:
                prefix, matrix = pull(operand)
                all_prefix.extend(prefix)
                matrices.append(matrix)
            cls = And if isinstance(node, And) else Or
            return all_prefix, cls(tuple(matrices))
        raise LogicError(f"to_prenex: unhandled {type(node).__name__}")

    prefix, matrix = pull(formula)
    result: Formula = matrix
    for quant_cls, variables in reversed(prefix):
        result = quant_cls(variables, result)
    return result


def to_exists_and_not(formula: Formula) -> Formula:
    """Rewrite into the ∃/∧/¬ fragment used by Peirce's beta graphs.

    ``∀x. φ`` becomes ``¬∃x. ¬φ`` and ``φ ∨ ψ`` becomes ``¬(¬φ ∧ ¬ψ)``.
    The result contains only Truth, Atom, Compare, And, Not, and Exists.
    """
    formula = eliminate_implications(formula)

    def visit(node: Formula) -> Formula:
        if isinstance(node, (Truth, Atom, Compare)):
            return node
        if isinstance(node, And):
            return conjunction([visit(o) for o in node.operands])
        if isinstance(node, Or):
            return Not(conjunction([Not(visit(o)) for o in node.operands]))
        if isinstance(node, Not):
            return Not(visit(node.operand))
        if isinstance(node, Exists):
            return Exists(node.variables, visit(node.body))
        if isinstance(node, ForAll):
            return Not(Exists(node.variables, Not(visit(node.body))))
        raise LogicError(f"to_exists_and_not: unhandled {type(node).__name__}")

    return visit(formula)


def simplify(formula: Formula) -> Formula:
    """Light structural simplification: drop double negations and constants."""
    def visit(node: Formula) -> Formula:
        if isinstance(node, (Truth, Atom, Compare)):
            return node
        if isinstance(node, Not):
            inner = visit(node.operand)
            if isinstance(inner, Not):
                return inner.operand
            if isinstance(inner, Truth):
                return Truth(not inner.value)
            return Not(inner)
        if isinstance(node, And):
            parts = [visit(o) for o in node.operands]
            if any(isinstance(p, Truth) and not p.value for p in parts):
                return Truth(False)
            parts = [p for p in parts if not (isinstance(p, Truth) and p.value)]
            return conjunction(parts)
        if isinstance(node, Or):
            parts = [visit(o) for o in node.operands]
            if any(isinstance(p, Truth) and p.value for p in parts):
                return Truth(True)
            parts = [p for p in parts if not (isinstance(p, Truth) and not p.value)]
            return disjunction(parts)
        if isinstance(node, Implies):
            return Implies(visit(node.antecedent), visit(node.consequent))
        if isinstance(node, Iff):
            return Iff(visit(node.left), visit(node.right))
        if isinstance(node, Exists):
            body = visit(node.body)
            if isinstance(body, Truth):
                return body
            return Exists(node.variables, body)
        if isinstance(node, ForAll):
            body = visit(node.body)
            if isinstance(body, Truth):
                return body
            return ForAll(node.variables, body)
        raise LogicError(f"simplify: unhandled {type(node).__name__}")

    return visit(formula)


def quantifier_prefix(formula: Formula) -> list[tuple[str, Var]]:
    """The leading quantifier prefix of a (prenex) formula as (kind, var) pairs."""
    prefix: list[tuple[str, Var]] = []
    node = formula
    while isinstance(node, (Exists, ForAll)):
        kind = "exists" if isinstance(node, Exists) else "forall"
        for var in node.variables:
            prefix.append((kind, var))
        node = node.body
    return prefix


def quantifier_depth(formula: Formula) -> int:
    """Maximum nesting depth of quantifiers (a complexity measure for diagrams)."""
    if isinstance(formula, (Truth, Atom, Compare)):
        return 0
    if isinstance(formula, (Exists, ForAll)):
        return 1 + quantifier_depth(formula.body)
    return max((quantifier_depth(c) for c in formula.children()), default=0)


def negation_depth(formula: Formula) -> int:
    """Maximum nesting depth of negations (Peirce cut depth)."""
    if isinstance(formula, (Truth, Atom, Compare)):
        return 0
    if isinstance(formula, Not):
        return 1 + negation_depth(formula.operand)
    return max((negation_depth(c) for c in formula.children()), default=0)
