"""Terms of first-order logic: variables and constants.

The tutorial grounds every visual formalism in first-order logic (FOL):
Relational Calculus is FOL over a database signature, and Peirce's beta
existential graphs are a diagrammatic syntax for FOL.  We only need
function-free FOL (no function symbols), which is exactly the fragment
relevant to relational queries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator


@dataclass(frozen=True)
class Var:
    """A first-order variable (domain variable in DRC terminology)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant symbol, interpreted as itself (Herbrand-style)."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


#: A term is either a variable or a constant (function-free FOL).
Term = Var | Const


def is_term(obj: object) -> bool:
    """True iff ``obj`` is a term."""
    return isinstance(obj, (Var, Const))


def term_of(value: Any) -> Term:
    """Lift a Python value or existing term into a term."""
    if isinstance(value, (Var, Const)):
        return value
    return Const(value)


def variables_in(terms: Iterable[Term]) -> list[Var]:
    """The variables occurring in ``terms``, in order, without duplicates."""
    seen: set[str] = set()
    out: list[Var] = []
    for term in terms:
        if isinstance(term, Var) and term.name not in seen:
            seen.add(term.name)
            out.append(term)
    return out


def fresh_variable(base: str, taken: Iterable[str]) -> Var:
    """Return a variable named ``base`` or ``base1``, ``base2``, ... not in ``taken``."""
    taken_set = set(taken)
    if base not in taken_set:
        return Var(base)
    for i in itertools.count(1):
        candidate = f"{base}{i}"
        if candidate not in taken_set:
            return Var(candidate)
    raise AssertionError("unreachable")  # pragma: no cover


def fresh_variables(count: int, base: str, taken: Iterable[str]) -> list[Var]:
    """Return ``count`` pairwise-distinct fresh variables."""
    taken_set = set(taken)
    out: list[Var] = []
    for _ in range(count):
        var = fresh_variable(base, taken_set)
        taken_set.add(var.name)
        out.append(var)
    return out


def variable_names(terms: Iterable[Term]) -> Iterator[str]:
    """Yield the names of all variables among ``terms``."""
    for term in terms:
        if isinstance(term, Var):
            yield term.name
