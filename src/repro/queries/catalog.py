"""The tutorial's canonical example queries in all five textual languages.

Part 3 of the tutorial fixes a handful of queries over the sailors–reserves–
boats schema and expresses each of them in SQL, Relational Algebra, Tuple
Relational Calculus, Domain Relational Calculus, and Datalog, so that Parts 4
and 5 can compare how each *visual* formalism renders the same query.  This
module is that workload: five queries chosen to cover the features the
tutorial highlights — joins, negation, universal quantification (division),
and disjunction (the hardest case for diagrams).

Every text below parses with the corresponding parser in this package and
all five representations of each query return the same answers (experiment
T1 re-verifies this on random databases).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CanonicalQuery:
    """One query of the tutorial workload in five textual languages."""

    id: str
    title: str
    description: str
    sql: str
    ra: str
    trc: str
    drc: str
    datalog: str
    features: tuple[str, ...] = ()
    expected_names: tuple[str, ...] = ()

    def languages(self) -> dict[str, str]:
        """The five textual representations keyed by language name."""
        return {
            "SQL": self.sql,
            "RA": self.ra,
            "TRC": self.trc,
            "DRC": self.drc,
            "Datalog": self.datalog,
        }


Q1_BASIC_JOIN = CanonicalQuery(
    id="Q1",
    title="Sailors who reserved boat 102",
    description="A two-table equi-join with a constant selection.",
    sql=(
        "SELECT DISTINCT S.sname FROM Sailors S, Reserves R "
        "WHERE S.sid = R.sid AND R.bid = 102"
    ),
    ra="project[sname](Sailors njoin select[bid = 102](Reserves))",
    trc=(
        "{ s.sname | Sailors(s) and exists r (Reserves(r) and r.sid = s.sid "
        "and r.bid = 102) }"
    ),
    drc=(
        "{ n | exists s, r, a (Sailors(s, n, r, a) and "
        "exists d (Reserves(s, 102, d))) }"
    ),
    datalog="ans(N) :- sailors(S, N, R, A), reserves(S, 102, D).",
    features=("join", "selection"),
    expected_names=("Dustin", "Lubber", "Horatio"),
)

Q2_RED_BOAT = CanonicalQuery(
    id="Q2",
    title="Sailors who reserved a red boat",
    description="A three-table join chain (the tutorial's running example).",
    sql=(
        "SELECT DISTINCT S.sname FROM Sailors S, Reserves R, Boats B "
        "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'"
    ),
    ra="project[sname](Sailors njoin Reserves njoin select[color = 'red'](Boats))",
    trc=(
        "{ s.sname | Sailors(s) and exists r, b (Reserves(r) and Boats(b) and "
        "r.sid = s.sid and r.bid = b.bid and b.color = 'red') }"
    ),
    drc=(
        "{ n | exists s, r, a (Sailors(s, n, r, a) and "
        "exists b, d, bn (Reserves(s, b, d) and Boats(b, bn, 'red'))) }"
    ),
    datalog=(
        "ans(N) :- sailors(S, N, R, A), reserves(S, B, D), boats(B, BN, 'red')."
    ),
    features=("join", "selection", "chain"),
    expected_names=("Dustin", "Lubber", "Horatio"),
)

Q3_RED_NOT_GREEN = CanonicalQuery(
    id="Q3",
    title="Sailors who reserved a red boat but no green boat",
    description="Existential quantification combined with negation (NOT IN / EXCEPT).",
    sql=(
        "SELECT DISTINCT S.sname FROM Sailors S "
        "WHERE S.sid IN (SELECT R.sid FROM Reserves R, Boats B "
        "WHERE R.bid = B.bid AND B.color = 'red') "
        "AND S.sid NOT IN (SELECT R2.sid FROM Reserves R2, Boats B2 "
        "WHERE R2.bid = B2.bid AND B2.color = 'green')"
    ),
    ra=(
        "project[sname](Sailors njoin ("
        "project[sid](Reserves njoin select[color = 'red'](Boats)) "
        "except project[sid](Reserves njoin select[color = 'green'](Boats))))"
    ),
    trc=(
        "{ s.sname | Sailors(s) and "
        "exists r, b (Reserves(r) and Boats(b) and r.sid = s.sid and r.bid = b.bid "
        "and b.color = 'red') and "
        "not exists r2, b2 (Reserves(r2) and Boats(b2) and r2.sid = s.sid and "
        "r2.bid = b2.bid and b2.color = 'green') }"
    ),
    drc=(
        "{ n | exists s, r, a (Sailors(s, n, r, a) and "
        "exists b, d, bn (Reserves(s, b, d) and Boats(b, bn, 'red')) and "
        "not exists b2, d2, bn2 (Reserves(s, b2, d2) and Boats(b2, bn2, 'green'))) }"
    ),
    datalog=(
        "reserved_color(S, C) :- reserves(S, B, D), boats(B, BN, C).\n"
        "ans(N) :- sailors(S, N, R, A), reserved_color(S, 'red'), "
        "not reserved_color(S, 'green')."
    ),
    features=("join", "negation", "nesting"),
    expected_names=("Horatio",),
)

Q4_ALL_RED = CanonicalQuery(
    id="Q4",
    title="Sailors who reserved all red boats",
    description=(
        "Relational division / universal quantification — the query the tutorial "
        "uses to contrast QBE's dataflow pattern, Datalog's double negation, and "
        "the diagrammatic treatments of FOR ALL."
    ),
    sql=(
        "SELECT DISTINCT S.sname FROM Sailors S "
        "WHERE NOT EXISTS (SELECT B.bid FROM Boats B WHERE B.color = 'red' "
        "AND NOT EXISTS (SELECT R.sid FROM Reserves R "
        "WHERE R.sid = S.sid AND R.bid = B.bid))"
    ),
    ra=(
        "project[sname](Sailors njoin (project[sid](Sailors) except project[sid]("
        "(project[sid](Sailors) times project[bid](select[color = 'red'](Boats))) "
        "except project[sid, bid](Reserves))))"
    ),
    trc=(
        "{ s.sname | Sailors(s) and forall b (Boats(b) and b.color = 'red' -> "
        "exists r (Reserves(r) and r.sid = s.sid and r.bid = b.bid)) }"
    ),
    drc=(
        "{ n | exists s, r, a (Sailors(s, n, r, a) and "
        "forall b, bn, c (Boats(b, bn, c) and c = 'red' -> "
        "exists d (Reserves(s, b, d)))) }"
    ),
    datalog=(
        "red_boat(B) :- boats(B, BN, 'red').\n"
        "reserved(S, B) :- reserves(S, B, D).\n"
        "misses_red(S) :- sailors(S, N, R, A), red_boat(B), not reserved(S, B).\n"
        "ans(N) :- sailors(S, N, R, A), not misses_red(S)."
    ),
    features=("join", "negation", "universal", "division", "nesting"),
    expected_names=("Dustin", "Lubber"),
)

Q5_RED_OR_GREEN = CanonicalQuery(
    id="Q5",
    title="Sailors who reserved a red boat or a green boat",
    description=(
        "Disjunction / union — identified by the tutorial (following Shin) as the "
        "greatest challenge for diagrammatic representations."
    ),
    sql=(
        "SELECT DISTINCT S.sname FROM Sailors S, Reserves R, Boats B "
        "WHERE S.sid = R.sid AND R.bid = B.bid "
        "AND (B.color = 'red' OR B.color = 'green')"
    ),
    ra=(
        "project[sname](Sailors njoin Reserves njoin select[color = 'red'](Boats)) "
        "union "
        "project[sname](Sailors njoin Reserves njoin select[color = 'green'](Boats))"
    ),
    trc=(
        "{ s.sname | Sailors(s) and exists r, b (Reserves(r) and Boats(b) and "
        "r.sid = s.sid and r.bid = b.bid and "
        "(b.color = 'red' or b.color = 'green')) }"
    ),
    drc=(
        "{ n | exists s, r, a (Sailors(s, n, r, a) and "
        "exists b, d, bn, c (Reserves(s, b, d) and Boats(b, bn, c) and "
        "(c = 'red' or c = 'green'))) }"
    ),
    datalog=(
        "ans(N) :- sailors(S, N, R, A), reserves(S, B, D), boats(B, BN, 'red').\n"
        "ans(N) :- sailors(S, N, R, A), reserves(S, B, D), boats(B, BN, 'green')."
    ),
    features=("join", "disjunction", "union"),
    expected_names=("Dustin", "Lubber", "Horatio"),
)

#: The textbook *division* form of Q4.  It is the form DFQL and the QBE
#: two-step recipe visualise, but it is only equivalent to Q4 on databases
#: with at least one red boat: with an empty divisor, division returns every
#: sailor that appears in Reserves, whereas the FOR ALL reading (and the SQL
#: double negation) vacuously returns *every* sailor.  Q4's canonical ``ra``
#: field therefore uses the expanded double-difference form; this constant
#: keeps the division form available for the experiments that discuss it.
Q4_ALL_RED_DIVISION_RA = (
    "project[sname](Sailors njoin "
    "(project[sid, bid](Reserves) divide project[bid](select[color = 'red'](Boats))))"
)

#: The full workload, in tutorial order.
CANONICAL_QUERIES: tuple[CanonicalQuery, ...] = (
    Q1_BASIC_JOIN,
    Q2_RED_BOAT,
    Q3_RED_NOT_GREEN,
    Q4_ALL_RED,
    Q5_RED_OR_GREEN,
)

#: The five textual languages of Part 3.
LANGUAGES: tuple[str, ...] = ("SQL", "RA", "TRC", "DRC", "Datalog")


def query_by_id(query_id: str) -> CanonicalQuery:
    """Look up a canonical query by its id (``"Q1"`` ... ``"Q5"``)."""
    for query in CANONICAL_QUERIES:
        if query.id.lower() == query_id.lower():
            return query
    raise KeyError(f"no canonical query with id {query_id!r}")


def queries_with_feature(feature: str) -> list[CanonicalQuery]:
    """All canonical queries exhibiting a given feature (e.g. ``"negation"``)."""
    return [q for q in CANONICAL_QUERIES if feature in q.features]
