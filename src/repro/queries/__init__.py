"""The canonical tutorial workload: five queries in five textual languages."""

from repro.queries.catalog import (
    CANONICAL_QUERIES,
    Q4_ALL_RED_DIVISION_RA,
    LANGUAGES,
    CanonicalQuery,
    Q1_BASIC_JOIN,
    Q2_RED_BOAT,
    Q3_RED_NOT_GREEN,
    Q4_ALL_RED,
    Q5_RED_OR_GREEN,
    queries_with_feature,
    query_by_id,
)

__all__ = [
    "CANONICAL_QUERIES",
    "CanonicalQuery",
    "LANGUAGES",
    "Q1_BASIC_JOIN",
    "Q2_RED_BOAT",
    "Q3_RED_NOT_GREEN",
    "Q4_ALL_RED",
    "Q4_ALL_RED_DIVISION_RA",
    "Q5_RED_OR_GREEN",
    "queries_with_feature",
    "query_by_id",
]
