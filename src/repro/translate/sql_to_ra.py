"""SQL → Relational Algebra translation.

The translator covers the classic select–project–join fragment plus set
operations and *uncorrelated* IN / NOT IN subqueries (which become semi- and
anti-joins).  Correlated subqueries and universal quantification are better
expressed in RA via division or double negation; the canonical hand-written
RA versions of those queries live in :mod:`repro.queries`.  Constructs
outside the fragment raise :class:`UnsupportedSQLForRA` with an explanation,
which the pipeline surfaces to the user.
"""

from __future__ import annotations

from repro.data.schema import DatabaseSchema
from repro.expr import ast as e
from repro.ra.ast import (
    AntiJoin,
    Difference,
    Distinct,
    Intersection,
    Product,
    Projection,
    RAExpr,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    Union,
    output_schema,
)
from repro.sql.ast import Join, Query, SelectQuery, SetOpQuery, TableRef


class UnsupportedSQLForRA(Exception):
    """Raised when a SQL construct cannot be translated to RA by this translator."""


def sql_to_ra(query: "Query | str", schema: DatabaseSchema) -> RAExpr:
    """Translate a SQL query (text or AST) into an RA expression."""
    if isinstance(query, str):
        from repro.sql.parser import parse_sql

        query = parse_sql(query)
    return _translate_query(query, schema)


def _translate_query(query: Query, schema: DatabaseSchema) -> RAExpr:
    if isinstance(query, SetOpQuery):
        left = _translate_query(query.left, schema)
        right = _translate_query(query.right, schema)
        if query.op == "union":
            return Union(left, right)
        if query.op == "intersect":
            return Intersection(left, right)
        return Difference(left, right)
    if isinstance(query, SelectQuery):
        return _translate_select(query, schema)
    raise UnsupportedSQLForRA(f"unsupported query node {type(query).__name__}")


def _translate_select(query: SelectQuery, schema: DatabaseSchema) -> RAExpr:
    if query.group_by or query.having is not None:
        raise UnsupportedSQLForRA("GROUP BY / HAVING are not translated to RA here")
    if any(e.contains_aggregate(item.expr) for item in query.select_items):
        raise UnsupportedSQLForRA("aggregates are not translated to RA here")
    if not query.from_items:
        raise UnsupportedSQLForRA("a FROM clause is required")

    local_aliases: set[str] = set()
    source, join_conditions = _translate_from(query.from_items, schema, local_aliases)

    plain_conjuncts: list[e.Expr] = list(join_conditions)
    subquery_conjuncts: list[e.Expr] = []
    if query.where is not None:
        for conjunct in e.conjuncts(query.where):
            if e.contains_subquery(conjunct):
                subquery_conjuncts.append(conjunct)
            else:
                plain_conjuncts.append(conjunct)

    expr: RAExpr = source
    if plain_conjuncts:
        expr = Selection(expr, e.conjunction(plain_conjuncts))

    for index, conjunct in enumerate(subquery_conjuncts):
        expr = _apply_subquery_conjunct(expr, conjunct, schema, index, local_aliases)

    if query.select_star:
        result: RAExpr = expr
    else:
        columns = []
        for item in query.select_items:
            if not isinstance(item.expr, e.Col):
                raise UnsupportedSQLForRA(
                    "SELECT list entries must be plain columns for RA translation"
                )
            columns.append(item.expr.qualified())
        if query.star_qualifiers:
            raise UnsupportedSQLForRA("T.* projections are not supported")
        result = Projection(expr, tuple(columns))

    if query.distinct and query.select_star:
        result = Distinct(result)
    return result


def _translate_from(from_items, schema: DatabaseSchema,
                    local_aliases: set[str]) -> tuple[RAExpr, list[e.Expr]]:
    sources: list[RAExpr] = []
    conditions: list[e.Expr] = []

    def add(item) -> None:
        if isinstance(item, TableRef):
            binding = item.alias or item.name
            local_aliases.add(binding.lower())
            relation_schema = schema.relation(item.name)
            ref: RAExpr = RelationRef(relation_schema.name)
            # Prefix every attribute with the binding name so that arbitrary
            # products never produce ambiguous names and qualified column
            # references (S.sid) resolve exactly.
            renames = tuple(
                (attr.name, f"{binding}.{attr.name}") for attr in relation_schema.attributes
            )
            ref = Rename(ref, binding, renames)
            sources.append(ref)
            return
        if isinstance(item, Join):
            if item.kind not in ("inner", "cross"):
                raise UnsupportedSQLForRA("outer joins are not part of classic RA")
            if item.natural or item.using:
                raise UnsupportedSQLForRA("write NATURAL JOIN conditions explicitly for RA")
            add(item.left)
            add(item.right)
            if item.condition is not None:
                conditions.append(item.condition)
            return
        raise UnsupportedSQLForRA("derived tables are not supported in RA translation")

    for item in from_items:
        add(item)

    expr = sources[0]
    for other in sources[1:]:
        expr = Product(expr, other)
    return expr, conditions


def _apply_subquery_conjunct(expr: RAExpr, conjunct: e.Expr, schema: DatabaseSchema,
                             index: int, local_aliases: set[str]) -> RAExpr:
    if isinstance(conjunct, e.InSubquery):
        sub_ra = _translate_query(conjunct.query, schema)
        _require_uncorrelated(conjunct.query, schema, local_aliases)
        sub_schema = output_schema(sub_ra, schema)
        if sub_schema.arity != 1:
            raise UnsupportedSQLForRA("IN subqueries must return exactly one column")
        out_name = f"subq{index}_{sub_schema.attributes[0].name}"
        renamed = Rename(sub_ra, f"subq{index}", ((sub_schema.attributes[0].name, out_name),))
        condition = e.Comparison(conjunct.operand, "=", e.Col(out_name))
        if conjunct.negated:
            return AntiJoin(expr, renamed, condition)
        return SemiJoin(expr, renamed, condition)
    raise UnsupportedSQLForRA(
        "only uncorrelated [NOT] IN subqueries are translated to RA; "
        "use division or the hand-written RA form for EXISTS / ALL queries"
    )


def _require_uncorrelated(query: Query, schema: DatabaseSchema,
                          outer_aliases: set[str]) -> None:
    """Reject subqueries that reference an outer alias (correlated subqueries)."""
    if isinstance(query, SetOpQuery):
        _require_uncorrelated(query.left, schema, outer_aliases)
        _require_uncorrelated(query.right, schema, outer_aliases)
        return
    own_aliases = {ref.binding_name.lower() for ref in query.table_refs()}
    for expr in list(query._expressions()):
        for col in expr.columns():
            if col.qualifier and col.qualifier.lower() in outer_aliases \
                    and col.qualifier.lower() not in own_aliases:
                raise UnsupportedSQLForRA(
                    f"correlated subquery (references outer alias {col.qualifier!r})"
                )
