"""SQL → Tuple Relational Calculus translation.

This is the translation underlying QueryVis and Relational Diagrams: every
table reference of the SQL query (in any nesting level) becomes one tuple
variable, subquery predicates become quantifiers, and the WHERE clauses
become the quantifier-free matrix.  The supported fragment is the
tutorial's: SELECT–FROM–WHERE blocks (no aggregates, no GROUP BY) nested via
EXISTS / NOT EXISTS / IN / NOT IN / ANY / ALL, combined with UNION /
INTERSECT / EXCEPT when both sides range over the same head relation.
"""

from __future__ import annotations

import itertools

from repro.data.schema import DatabaseSchema, SchemaError
from repro.expr import ast as e
from repro.sql.ast import Join, Query, SelectQuery, SetOpQuery, TableRef
from repro.trc.ast import (
    AttrRef,
    ConstTerm,
    HeadItem,
    RelAtom,
    TRCAnd,
    TRCCompare,
    TRCError,
    TRCExists,
    TRCFormula,
    TRCNot,
    TRCOr,
    TRCQuery,
    TRCTerm,
    TRCTrue,
    TupleVar,
    conjunction,
    disjunction,
)


class UnsupportedSQL(Exception):
    """Raised when a SQL construct falls outside the translatable fragment."""


class _Context:
    """Resolution context: alias → (tuple variable, relation name), with an outer chain."""

    def __init__(self, schema: DatabaseSchema, outer: "_Context | None" = None) -> None:
        self.schema = schema
        self.outer = outer
        self.bindings: dict[str, tuple[TupleVar, str]] = {}

    def bind(self, alias: str, var: TupleVar, relation: str) -> None:
        self.bindings[alias.lower()] = (var, relation)

    def resolve(self, column: e.Col) -> AttrRef:
        if column.qualifier:
            context: _Context | None = self
            while context is not None:
                hit = context.bindings.get(column.qualifier.lower())
                if hit is not None:
                    var, relation = hit
                    self._check_attribute(relation, column.name)
                    return AttrRef(var, column.name)
                context = context.outer
            raise UnsupportedSQL(f"unknown table alias {column.qualifier!r}")
        # Unqualified: find the unique binding whose relation has the column.
        context = self
        while context is not None:
            matches = []
            for var, relation in context.bindings.values():
                try:
                    self.schema.relation(relation).attribute(column.name)
                    matches.append(AttrRef(var, column.name))
                except SchemaError:
                    continue
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise UnsupportedSQL(f"ambiguous column {column.name!r}")
            context = context.outer
        raise UnsupportedSQL(f"cannot resolve column {column.name!r}")

    def _check_attribute(self, relation: str, name: str) -> None:
        try:
            self.schema.relation(relation).attribute(name)
        except SchemaError as exc:
            raise UnsupportedSQL(str(exc)) from exc


class SQLToTRCTranslator:
    """Translates SQL query ASTs into TRC queries."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._counter = itertools.count(1)

    # -- variable naming ---------------------------------------------------
    def _fresh_var(self, table: TableRef, used: set[str]) -> TupleVar:
        base = (table.alias or table.name[:1]).lower()
        if base not in used:
            used.add(base)
            return TupleVar(base)
        while True:
            candidate = f"{base}{next(self._counter)}"
            if candidate not in used:
                used.add(candidate)
                return TupleVar(candidate)

    # -- entry points --------------------------------------------------------
    def translate(self, query: Query) -> TRCQuery:
        if isinstance(query, SetOpQuery):
            return self._translate_setop(query)
        if isinstance(query, SelectQuery):
            head, formula, _vars = self._translate_select(query, outer=None, used=set())
            if head is None:
                raise UnsupportedSQL("top-level query must have a SELECT list of columns")
            return TRCQuery(tuple(head), formula)
        raise UnsupportedSQL(f"unsupported query node {type(query).__name__}")

    def _translate_setop(self, query: SetOpQuery) -> TRCQuery:
        left = self.translate(query.left)
        right = self.translate(query.right)
        if len(left.head) != len(right.head):
            raise UnsupportedSQL("set operation operands have different arities")
        # Unify: both sides must project attributes of a single head variable
        # ranging over the same relation, so that the right body can be
        # rewritten over the left head variable.
        left_vars = left.head_variables()
        right_vars = right.head_variables()
        if len(left_vars) != 1 or len(right_vars) != 1:
            raise UnsupportedSQL(
                "set operations are only supported when each side projects "
                "attributes of a single tuple variable"
            )
        from repro.trc.ast import variable_ranges

        left_range = variable_ranges(left.body).get(left_vars[0].name)
        right_range = variable_ranges(right.body).get(right_vars[0].name)
        if not left_range or not right_range or left_range.lower() != right_range.lower():
            raise UnsupportedSQL(
                "set operations require both sides to range over the same relation"
            )
        renamed_right = _rename_tuple_var(right.body, right_vars[0].name, left_vars[0].name)
        if query.op == "union":
            body: TRCFormula = disjunction([left.body, renamed_right])
        elif query.op == "intersect":
            body = conjunction([left.body, renamed_right])
        else:  # except
            body = conjunction([left.body, TRCNot(renamed_right)])
        return TRCQuery(left.head, body)

    # -- SELECT blocks ------------------------------------------------------
    def _translate_select(self, query: SelectQuery, outer: _Context | None,
                          used: set[str]) -> tuple[list[HeadItem] | None, TRCFormula, list[TupleVar]]:
        if query.group_by or query.having is not None:
            raise UnsupportedSQL("GROUP BY / HAVING are outside first-order SQL")
        if any(e.contains_aggregate(item.expr) for item in query.select_items):
            raise UnsupportedSQL("aggregates are outside first-order SQL")
        if query.select_star or query.star_qualifiers:
            raise UnsupportedSQL("SELECT * is not supported; list columns explicitly")

        context = _Context(self.schema, outer)
        variables: list[TupleVar] = []
        join_conditions: list[TRCFormula] = []
        atoms: list[TRCFormula] = []

        def add_table(table: TableRef) -> None:
            var = self._fresh_var(table, used)
            context.bind(table.binding_name, var, table.name)
            variables.append(var)
            atoms.append(RelAtom(self.schema.relation(table.name).name, var))

        for item in query.from_items:
            self._add_from_item(item, add_table, join_conditions, context)

        where_formula: TRCFormula = TRCTrue()
        if query.where is not None:
            where_formula = self._translate_predicate(query.where, context, used)

        head: list[HeadItem] | None = []
        for item in query.select_items:
            if isinstance(item.expr, e.Col):
                head.append(HeadItem(context.resolve(item.expr), item.alias))
            elif isinstance(item.expr, e.Const):
                head.append(HeadItem(ConstTerm(item.expr.value), item.alias))
            else:
                raise UnsupportedSQL(
                    "SELECT list entries must be plain columns or constants "
                    f"(got {type(item.expr).__name__})"
                )

        head_var_names = {
            item.term.var.name for item in head if isinstance(item.term, AttrRef)
        }
        inner_vars = [v for v in variables if v.name not in head_var_names]
        outer_atoms = [a for a in atoms if isinstance(a, RelAtom) and a.var.name in head_var_names]
        inner_atoms = [a for a in atoms if isinstance(a, RelAtom) and a.var.name not in head_var_names]

        inner_parts = inner_atoms + join_conditions + [where_formula]
        inner_formula = conjunction([p for p in inner_parts if not isinstance(p, TRCTrue)])
        if inner_vars:
            body = conjunction(outer_atoms + [TRCExists(tuple(inner_vars), inner_formula)])
        else:
            body = conjunction(outer_atoms + ([inner_formula]
                                              if not isinstance(inner_formula, TRCTrue) else []))
        return head, body, variables

    def _add_from_item(self, item, add_table, join_conditions: list[TRCFormula],
                       context: _Context) -> None:
        if isinstance(item, TableRef):
            add_table(item)
            return
        if isinstance(item, Join):
            if item.kind not in ("inner", "cross"):
                raise UnsupportedSQL("outer joins are outside first-order SQL translation")
            self._add_from_item(item.left, add_table, join_conditions, context)
            self._add_from_item(item.right, add_table, join_conditions, context)
            if item.natural or item.using:
                raise UnsupportedSQL("NATURAL JOIN / USING: write the join condition explicitly")
            if item.condition is not None:
                join_conditions.append(
                    self._translate_predicate(item.condition, context, set())
                )
            return
        raise UnsupportedSQL("derived tables (FROM subqueries) are not supported")

    # -- predicates ----------------------------------------------------------
    def _translate_predicate(self, expr: e.Expr, context: _Context,
                             used: set[str]) -> TRCFormula:
        if isinstance(expr, e.BoolConst):
            return TRCTrue(expr.value)
        if isinstance(expr, e.And):
            return conjunction([self._translate_predicate(o, context, used)
                                for o in expr.operands])
        if isinstance(expr, e.Or):
            return disjunction([self._translate_predicate(o, context, used)
                                for o in expr.operands])
        if isinstance(expr, e.Not):
            return TRCNot(self._translate_predicate(expr.operand, context, used))
        if isinstance(expr, e.Comparison):
            return TRCCompare(self._term(expr.left, context), expr.op,
                              self._term(expr.right, context))
        if isinstance(expr, e.Between):
            operand = self._term(expr.operand, context)
            low = self._term(expr.low, context)
            high = self._term(expr.high, context)
            body = TRCAnd((TRCCompare(operand, ">=", low), TRCCompare(operand, "<=", high)))
            return TRCNot(body) if expr.negated else body
        if isinstance(expr, e.InList):
            operand = self._term(expr.operand, context)
            options = [TRCCompare(operand, "=", self._term(i, context)) for i in expr.items]
            body = disjunction(options)
            return TRCNot(body) if expr.negated else body
        if isinstance(expr, e.Exists):
            inner = self._subquery_formula(expr.query, context, used, equate_to=None)
            return TRCNot(inner) if expr.negated else inner
        if isinstance(expr, e.InSubquery):
            operand = self._term(expr.operand, context)
            inner = self._subquery_formula(expr.query, context, used,
                                           equate_to=("=", operand))
            return TRCNot(inner) if expr.negated else inner
        if isinstance(expr, e.QuantifiedComparison):
            operand = self._term(expr.left, context)
            if expr.quantifier == "any":
                return self._subquery_formula(expr.query, context, used,
                                              equate_to=(expr.op, operand))
            # ALL: x op ALL (Q)  ≡  ¬∃ y ∈ Q. ¬(x op y)
            negated_op = e.Comparison(e.Const(0), expr.op, e.Const(0)).negated().op
            inner = self._subquery_formula(expr.query, context, used,
                                           equate_to=(negated_op, operand))
            return TRCNot(inner)
        raise UnsupportedSQL(
            f"predicate {type(expr).__name__} is outside the translatable fragment"
        )

    def _subquery_formula(self, query, context: _Context, used: set[str],
                          equate_to: tuple[str, TRCTerm] | None) -> TRCFormula:
        if not isinstance(query, SelectQuery):
            raise UnsupportedSQL("subqueries must be plain SELECT blocks")
        head, body, variables = self._translate_select(query, context, used)
        parts: list[TRCFormula] = []
        if equate_to is not None:
            if head is None or len(head) != 1:
                raise UnsupportedSQL("IN / ANY / ALL subqueries must select exactly one column")
            op, outer_term = equate_to
            parts.append(TRCCompare(outer_term, op, head[0].term))
        # The subquery body already quantifies its non-head variables; its
        # head variables are still free and must be bound here.
        head_vars = []
        if head is not None:
            for item in head:
                if isinstance(item.term, AttrRef) and item.term.var not in head_vars:
                    head_vars.append(item.term.var)
        inner = conjunction([body] + parts)
        if head_vars:
            return TRCExists(tuple(head_vars), inner)
        return inner

    def _term(self, expr: e.Expr, context: _Context) -> TRCTerm:
        if isinstance(expr, e.Col):
            return context.resolve(expr)
        if isinstance(expr, e.Const):
            return ConstTerm(expr.value)
        raise UnsupportedSQL(
            f"arithmetic in comparisons is not supported ({type(expr).__name__})"
        )


def _rename_tuple_var(formula: TRCFormula, old: str, new: str) -> TRCFormula:
    """Rename a tuple variable throughout a formula (used by set operations)."""
    def ren_var(var: TupleVar) -> TupleVar:
        return TupleVar(new) if var.name == old else var

    def ren_term(term: TRCTerm) -> TRCTerm:
        if isinstance(term, AttrRef):
            return AttrRef(ren_var(term.var), term.attr)
        return term

    if isinstance(formula, TRCTrue):
        return formula
    if isinstance(formula, RelAtom):
        return RelAtom(formula.relation, ren_var(formula.var))
    if isinstance(formula, TRCCompare):
        return TRCCompare(ren_term(formula.left), formula.op, ren_term(formula.right))
    if isinstance(formula, TRCAnd):
        return TRCAnd(tuple(_rename_tuple_var(o, old, new) for o in formula.operands))
    if isinstance(formula, TRCOr):
        return TRCOr(tuple(_rename_tuple_var(o, old, new) for o in formula.operands))
    if isinstance(formula, TRCNot):
        return TRCNot(_rename_tuple_var(formula.operand, old, new))
    if isinstance(formula, TRCExists):
        return TRCExists(tuple(ren_var(v) for v in formula.variables),
                         _rename_tuple_var(formula.body, old, new))
    from repro.trc.ast import TRCForAll, TRCImplies

    if isinstance(formula, TRCForAll):
        return TRCForAll(tuple(ren_var(v) for v in formula.variables),
                         _rename_tuple_var(formula.body, old, new))
    if isinstance(formula, TRCImplies):
        return TRCImplies(_rename_tuple_var(formula.antecedent, old, new),
                          _rename_tuple_var(formula.consequent, old, new))
    raise TRCError(f"rename: unhandled node {type(formula).__name__}")


def sql_to_trc(query: "Query | str", schema: DatabaseSchema) -> TRCQuery:
    """Translate a SQL query (text or AST) into an equivalent TRC query."""
    if isinstance(query, str):
        from repro.sql.parser import parse_sql

        query = parse_sql(query)
    return SQLToTRCTranslator(schema).translate(query)
