"""RA ↔ Datalog translation.

``ra_to_datalog`` compiles an RA operator tree into a non-recursive Datalog
program, one intensional predicate per operator — the dataflow decomposition
that QBE mimics with temporary tables (experiment T6 compares the two).
``datalog_to_ra`` goes the other way for non-recursive programs, which is how
DFQL diagrams can be produced for Datalog queries.
"""

from __future__ import annotations

import itertools

from repro.data.schema import DatabaseSchema, RelationSchema
from repro.datalog.ast import BuiltinComparison, Literal, Program, Rule
from repro.expr import ast as e
from repro.logic.terms import Const as LConst, Var as LVar
from repro.ra.ast import (
    AntiJoin,
    Difference,
    Distinct,
    Division,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAExpr,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    ThetaJoin,
    Union,
    output_schema,
    resolve_attribute,
    _split_reference,
)


class RATranslationError(Exception):
    """Raised when an RA expression cannot be compiled to Datalog (or back)."""


# ---------------------------------------------------------------------------
# RA -> Datalog
# ---------------------------------------------------------------------------

class _RAToDatalog:
    def __init__(self, schema: DatabaseSchema, answer: str = "ans") -> None:
        self.schema = schema
        self.answer = answer
        self.rules: list[Rule] = []
        self._counter = itertools.count(1)

    def fresh_predicate(self, hint: str) -> str:
        return f"{hint}_{next(self._counter)}"

    def var_for(self, attribute: str) -> LVar:
        # Datalog variables must start with an upper-case letter.
        cleaned = attribute.replace(".", "_")
        return LVar("V_" + cleaned)

    def compile(self, expr: RAExpr) -> Program:
        predicate, attributes = self.visit(expr)
        head_vars = tuple(self.var_for(a) for a in attributes)
        self.rules.append(
            Rule(Literal(self.answer, head_vars),
                 (Literal(predicate, head_vars),))
        )
        return Program(tuple(self.rules))

    # Returns (predicate name, attribute names of that predicate).
    def visit(self, expr: RAExpr) -> tuple[str, tuple[str, ...]]:
        schema = output_schema(expr, self.schema)
        attributes = schema.attribute_names

        if isinstance(expr, RelationRef):
            return self.schema.relation(expr.name).name.lower(), attributes

        if isinstance(expr, Rename):
            inner_pred, _inner_attrs = self.visit(expr.input)
            predicate = self.fresh_predicate("rename")
            # Values flow positionally through a rename, so head and body
            # share the same variables position by position.
            head_vars = tuple(self.var_for(a) for a in attributes)
            self.rules.append(Rule(Literal(predicate, head_vars),
                                   (Literal(inner_pred, head_vars),)))
            return predicate, attributes

        if isinstance(expr, Selection):
            inner_pred, inner_attrs = self.visit(expr.input)
            predicate = self.fresh_predicate("select")
            inner_schema = output_schema(expr.input, self.schema)
            inner_vars = tuple(self.var_for(a) for a in inner_attrs)
            for disjunct in e.disjuncts(expr.condition):
                comparisons = tuple(
                    self._comparison(c, inner_schema) for c in e.conjuncts(disjunct)
                )
                self.rules.append(Rule(Literal(predicate, inner_vars),
                                       (Literal(inner_pred, inner_vars),) + comparisons))
            return predicate, inner_attrs

        if isinstance(expr, Projection):
            inner_pred, inner_attrs = self.visit(expr.input)
            inner_schema = output_schema(expr.input, self.schema)
            predicate = self.fresh_predicate("project")
            inner_vars = tuple(self.var_for(a) for a in inner_attrs)
            head_vars = []
            for column in expr.columns:
                qualifier, name = _split_reference(column)
                resolved = resolve_attribute(inner_schema, name, qualifier)
                head_vars.append(self.var_for(resolved))
            self.rules.append(Rule(Literal(predicate, tuple(head_vars)),
                                   (Literal(inner_pred, inner_vars),)))
            return predicate, tuple(attributes)

        if isinstance(expr, (Product, ThetaJoin, NaturalJoin)):
            left_pred, left_attrs = self.visit(expr.left)
            right_pred, right_attrs = self.visit(expr.right)
            predicate = self.fresh_predicate("join")
            combined_schema = output_schema(expr, self.schema)
            if isinstance(expr, NaturalJoin):
                left_schema = output_schema(expr.left, self.schema)
                right_schema = output_schema(expr.right, self.schema)
                shared = [n for n in left_schema.attribute_names
                          if n in right_schema.attribute_names]
                left_vars = tuple(self.var_for(a) for a in left_attrs)
                right_vars = tuple(
                    self.var_for(a) if a in shared else self.var_for(a)
                    for a in right_attrs
                )
                head_vars = tuple(self.var_for(a) for a in combined_schema.attribute_names)
                self.rules.append(Rule(Literal(predicate, head_vars),
                                       (Literal(left_pred, left_vars),
                                        Literal(right_pred, right_vars))))
                return predicate, combined_schema.attribute_names
            # Product / ThetaJoin: prefixed attribute names keep variables distinct.
            head_vars = tuple(self.var_for(a) for a in combined_schema.attribute_names)
            left_vars = head_vars[: len(left_attrs)]
            right_vars = head_vars[len(left_attrs):]
            body: list = [Literal(left_pred, left_vars), Literal(right_pred, right_vars)]
            if isinstance(expr, ThetaJoin):
                for conjunct in e.conjuncts(expr.condition):
                    body.append(self._comparison(conjunct, combined_schema))
            self.rules.append(Rule(Literal(predicate, head_vars), tuple(body)))
            return predicate, combined_schema.attribute_names

        if isinstance(expr, Union):
            left_pred, left_attrs = self.visit(expr.left)
            right_pred, right_attrs = self.visit(expr.right)
            predicate = self.fresh_predicate("union")
            head_vars = tuple(self.var_for(a) for a in left_attrs)
            right_vars = tuple(self.var_for(a) for a in right_attrs)
            self.rules.append(Rule(Literal(predicate, head_vars),
                                   (Literal(left_pred, head_vars),)))
            self.rules.append(Rule(Literal(predicate, right_vars),
                                   (Literal(right_pred, right_vars),)))
            return predicate, left_attrs

        if isinstance(expr, (Intersection, Difference, SemiJoin, AntiJoin)):
            return self._binary_filter(expr)

        if isinstance(expr, Division):
            return self._division(expr)

        if isinstance(expr, Distinct):
            return self.visit(expr.input)

        raise RATranslationError(
            f"RA operator {type(expr).__name__} cannot be compiled to Datalog"
        )

    def _binary_filter(self, expr) -> tuple[str, tuple[str, ...]]:
        left_pred, left_attrs = self.visit(expr.left)
        right_pred, right_attrs = self.visit(expr.right)
        left_vars = tuple(self.var_for(a) for a in left_attrs)
        predicate = self.fresh_predicate(type(expr).__name__.lower())

        if isinstance(expr, (Intersection, Difference)):
            right_literal = Literal(right_pred, left_vars,
                                    negated=isinstance(expr, Difference))
            self.rules.append(Rule(Literal(predicate, left_vars),
                                   (Literal(left_pred, left_vars), right_literal)))
            return predicate, left_attrs

        # Semi / anti join on the natural shared attributes (condition-less form).
        if expr.condition is not None:
            raise RATranslationError(
                "semi/anti joins with explicit conditions are not compiled to Datalog"
            )
        shared = [a for a in left_attrs if a in right_attrs]
        right_vars = tuple(
            self.var_for(a) if a in shared else LVar(f"_R{index}")
            for index, a in enumerate(right_attrs)
        )
        if isinstance(expr, SemiJoin):
            self.rules.append(Rule(Literal(predicate, left_vars),
                                   (Literal(left_pred, left_vars),
                                    Literal(right_pred, right_vars))))
            return predicate, left_attrs
        # Anti join: negated literals must be safe, so project the right side
        # onto the shared attributes first.
        helper = self.fresh_predicate("present")
        shared_vars = tuple(self.var_for(a) for a in shared)
        self.rules.append(Rule(Literal(helper, shared_vars),
                               (Literal(right_pred, right_vars),)))
        self.rules.append(Rule(Literal(predicate, left_vars),
                               (Literal(left_pred, left_vars),
                                Literal(helper, shared_vars, negated=True))))
        return predicate, left_attrs

    def _division(self, expr: Division) -> tuple[str, tuple[str, ...]]:
        """The classic two-negation division pattern (QBE's "two logical steps")."""
        left_pred, left_attrs = self.visit(expr.left)
        right_pred, right_attrs = self.visit(expr.right)
        quotient_attrs = tuple(a for a in left_attrs if a not in right_attrs)
        quotient_vars = tuple(self.var_for(a) for a in quotient_attrs)
        divisor_vars = tuple(self.var_for(a) for a in right_attrs)
        left_vars = tuple(self.var_for(a) for a in left_attrs)

        candidates = self.fresh_predicate("candidates")
        self.rules.append(Rule(Literal(candidates, quotient_vars),
                               (Literal(left_pred, left_vars),)))

        missing = self.fresh_predicate("missing_pair")
        self.rules.append(Rule(Literal(missing, quotient_vars),
                               (Literal(candidates, quotient_vars),
                                Literal(right_pred, divisor_vars),
                                Literal(left_pred, left_vars, negated=True))))

        predicate = self.fresh_predicate("division")
        self.rules.append(Rule(Literal(predicate, quotient_vars),
                               (Literal(candidates, quotient_vars),
                                Literal(missing, quotient_vars, negated=True))))
        return predicate, quotient_attrs

    def _comparison(self, condition: e.Expr, schema: RelationSchema) -> BuiltinComparison:
        if not isinstance(condition, e.Comparison):
            raise RATranslationError(
                f"selection conditions must be comparisons, got {type(condition).__name__}"
            )
        return BuiltinComparison(self._term(condition.left, schema), condition.op,
                                 self._term(condition.right, schema))

    def _term(self, expr: e.Expr, schema: RelationSchema):
        if isinstance(expr, e.Col):
            resolved = resolve_attribute(schema, expr.name, expr.qualifier)
            return self.var_for(resolved)
        if isinstance(expr, e.Const):
            return LConst(expr.value)
        raise RATranslationError(f"unsupported term {type(expr).__name__}")


def ra_to_datalog(expr: RAExpr, schema: DatabaseSchema, *, answer: str = "ans") -> Program:
    """Compile an RA expression into a non-recursive Datalog program."""
    return _RAToDatalog(schema, answer).compile(expr)


# ---------------------------------------------------------------------------
# Datalog -> RA (non-recursive programs)
# ---------------------------------------------------------------------------

def datalog_to_ra(program: Program, schema: DatabaseSchema,
                  query: str = "ans") -> RAExpr:
    """Translate a non-recursive Datalog program into an RA expression.

    Each rule becomes a select–project–join block over its positive literals;
    negated literals become anti-joins; multiple rules for the same predicate
    become unions.  Recursion is rejected.
    """
    if program.is_recursive():
        raise RATranslationError("recursive programs have no RA equivalent")

    memo: dict[str, RAExpr] = {}

    def expr_for(predicate: str) -> RAExpr:
        key = predicate.lower()
        if key in memo:
            return memo[key]
        rules = program.rules_for(predicate)
        if not rules:
            # EDB relation.
            expr: RAExpr = RelationRef(schema.relation(predicate).name)
            memo[key] = expr
            return expr
        parts = [_rule_to_ra(rule, expr_for, schema) for rule in rules]
        expr = parts[0]
        for part in parts[1:]:
            expr = Union(expr, part)
        memo[key] = expr
        return expr

    return expr_for(query)


def _rule_to_ra(rule: Rule, expr_for, schema: DatabaseSchema) -> RAExpr:
    positives = rule.positive_literals()
    if not positives:
        raise RATranslationError(f"rule {rule} has no positive body literals")

    # Build the product of positive literals, renaming columns to "occurrence"
    # names so that repeated predicates and repeated variables stay distinct.
    source: RAExpr | None = None
    column_names: list[str] = []
    var_positions: dict[str, str] = {}
    const_conditions: list[e.Expr] = []

    for index, literal in enumerate(positives):
        base = expr_for(literal.predicate)
        base_schema = output_schema(base, schema)
        if base_schema.arity != literal.arity:
            raise RATranslationError(
                f"literal {literal.predicate} has arity {literal.arity} but the "
                f"relation has arity {base_schema.arity}"
            )
        prefix = f"t{index}"
        renames = tuple(
            (attr.name, f"{prefix}_{attr.name}") for attr in base_schema.attributes
        )
        renamed = Rename(base, prefix, renames)
        these_columns = [f"{prefix}_{attr.name}" for attr in base_schema.attributes]
        source = renamed if source is None else Product(source, renamed)
        column_names.extend(these_columns)

        for term, column in zip(literal.terms, these_columns):
            if isinstance(term, LVar):
                if term.name in var_positions:
                    const_conditions.append(
                        e.Comparison(e.Col(var_positions[term.name]), "=", e.Col(column))
                    )
                else:
                    var_positions[term.name] = column
            else:
                const_conditions.append(e.Comparison(e.Col(column), "=", e.Const(term.value)))

    assert source is not None
    expr: RAExpr = source

    for comparison in rule.comparisons():
        const_conditions.append(
            e.Comparison(_dl_term_to_expr(comparison.left, var_positions),
                         comparison.op,
                         _dl_term_to_expr(comparison.right, var_positions))
        )
    if const_conditions:
        expr = Selection(expr, e.conjunction(const_conditions))

    for literal in rule.negative_literals():
        negative = expr_for(literal.predicate)
        negative_schema = output_schema(negative, schema)
        renames = tuple(
            (attr.name, f"neg_{attr.name}_{i}")
            for i, attr in enumerate(negative_schema.attributes)
        )
        renamed = Rename(negative, None, renames)
        conditions = []
        for term, (_, new_name) in zip(literal.terms, renames):
            if isinstance(term, LVar):
                conditions.append(e.Comparison(e.Col(var_positions[term.name]), "=",
                                               e.Col(new_name)))
            else:
                conditions.append(e.Comparison(e.Col(new_name), "=", e.Const(term.value)))
        expr = AntiJoin(expr, renamed, e.conjunction(conditions))

    head_columns = []
    for term in rule.head.terms:
        if isinstance(term, LVar):
            head_columns.append(var_positions[term.name])
        else:
            raise RATranslationError("constants in rule heads are not supported")
    return Projection(expr, tuple(head_columns))


def _dl_term_to_expr(term, var_positions: dict[str, str]) -> e.Expr:
    if isinstance(term, LVar):
        return e.Col(var_positions[term.name])
    return e.Const(term.value)
