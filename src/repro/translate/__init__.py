"""Translators between the five textual query languages, plus equivalence checking."""

from repro.translate.equivalence import (
    EquivalenceError,
    EquivalenceResult,
    agreement_matrix,
    answer_relation,
    answer_set,
    check_equivalence,
    standard_database_battery,
)
from repro.translate.ra_datalog import (
    RATranslationError,
    datalog_to_ra,
    ra_to_datalog,
)
from repro.translate.sql_to_ra import UnsupportedSQLForRA, sql_to_ra
from repro.translate.sql_to_trc import SQLToTRCTranslator, UnsupportedSQL, sql_to_trc
from repro.translate.trc_to_drc import TRCToDRCError, trc_formula_to_drc, trc_to_drc

__all__ = [
    "EquivalenceError",
    "EquivalenceResult",
    "RATranslationError",
    "SQLToTRCTranslator",
    "TRCToDRCError",
    "UnsupportedSQL",
    "UnsupportedSQLForRA",
    "agreement_matrix",
    "answer_relation",
    "answer_set",
    "check_equivalence",
    "datalog_to_ra",
    "ra_to_datalog",
    "sql_to_ra",
    "sql_to_trc",
    "standard_database_battery",
    "trc_formula_to_drc",
    "trc_to_drc",
]
