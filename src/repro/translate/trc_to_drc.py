"""TRC → DRC translation (and the positional view DRC needs).

A tuple variable ``s`` ranging over ``Sailors(sid, sname, rating, age)``
becomes four domain variables ``s_sid, s_sname, s_rating, s_age``; the
relation atom ``Sailors(s)`` becomes ``Sailors(s_sid, s_sname, s_rating,
s_age)``, and attribute references become the corresponding domain variable.
Quantifiers over a tuple variable become quantifiers over its domain
variables.  This is the textbook equivalence proof turned into code, and it
is also the bridge from QueryVis-style diagrams (TRC) to Peirce beta graphs
(DRC).
"""

from __future__ import annotations

from repro.data.schema import DatabaseSchema
from repro.drc.ast import DRCQuery
from repro.logic.formula import (
    And,
    Atom,
    Compare,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    Truth,
)
from repro.logic.terms import Const, Term, Var
from repro.trc.ast import (
    AttrRef,
    ConstTerm,
    RelAtom,
    TRCAnd,
    TRCCompare,
    TRCError,
    TRCExists,
    TRCForAll,
    TRCFormula,
    TRCImplies,
    TRCNot,
    TRCOr,
    TRCQuery,
    TRCTerm,
    TRCTrue,
    TupleVar,
    variable_ranges,
)


class TRCToDRCError(Exception):
    """Raised when a TRC query cannot be expanded (e.g. unknown variable range)."""


def _domain_var(var: TupleVar, attribute: str) -> Var:
    return Var(f"{var.name}_{attribute}")


def _domain_vars(var: TupleVar, relation: str, schema: DatabaseSchema) -> list[Var]:
    rel_schema = schema.relation(relation)
    return [_domain_var(var, attr.name) for attr in rel_schema.attributes]


def _convert_term(term: TRCTerm) -> Term:
    if isinstance(term, AttrRef):
        return _domain_var(term.var, term.attr)
    if isinstance(term, ConstTerm):
        return Const(term.value)
    raise TRCToDRCError(f"not a TRC term: {term!r}")


def trc_formula_to_drc(formula: TRCFormula, schema: DatabaseSchema,
                       ranges: dict[str, str] | None = None) -> Formula:
    """Convert a TRC formula to a DRC (first-order) formula."""
    if ranges is None:
        ranges = variable_ranges(formula)

    def relation_of(var: TupleVar) -> str:
        relation = ranges.get(var.name)
        if relation is None:
            raise TRCToDRCError(
                f"tuple variable {var.name!r} has no relation atom; cannot expand"
            )
        return relation

    def go(node: TRCFormula) -> Formula:
        if isinstance(node, TRCTrue):
            return Truth(node.value)
        if isinstance(node, RelAtom):
            variables = _domain_vars(node.var, node.relation, schema)
            return Atom(schema.relation(node.relation).name, tuple(variables))
        if isinstance(node, TRCCompare):
            return Compare(_convert_term(node.left), node.op, _convert_term(node.right))
        if isinstance(node, TRCAnd):
            return And(tuple(go(o) for o in node.operands))
        if isinstance(node, TRCOr):
            return Or(tuple(go(o) for o in node.operands))
        if isinstance(node, TRCNot):
            return Not(go(node.operand))
        if isinstance(node, TRCImplies):
            return Implies(go(node.antecedent), go(node.consequent))
        if isinstance(node, (TRCExists, TRCForAll)):
            domain_variables: list[Var] = []
            for var in node.variables:
                domain_variables.extend(_domain_vars(var, relation_of(var), schema))
            body = go(node.body)
            cls = Exists if isinstance(node, TRCExists) else ForAll
            return cls(tuple(domain_variables), body)
        raise TRCToDRCError(f"unhandled TRC node {type(node).__name__}")

    return go(formula)


def trc_to_drc(query: TRCQuery, schema: DatabaseSchema) -> DRCQuery:
    """Translate a full TRC query into an equivalent DRC query.

    The head attribute references become head domain variables; the free
    tuple variables' remaining attributes are existentially quantified so the
    DRC query's free variables are exactly its head variables.
    """
    try:
        ranges = variable_ranges(query.body)
    except TRCError as exc:
        raise TRCToDRCError(str(exc)) from exc

    head_terms: list[Term] = []
    head_var_names: set[str] = set()
    for item in query.head:
        term = _convert_term(item.term)
        head_terms.append(term)
        if isinstance(term, Var):
            head_var_names.add(term.name)

    body = trc_formula_to_drc(query.body, schema, ranges)

    # Existentially close the non-head domain variables of the free tuple vars.
    from repro.logic.formula import free_variables

    to_close = [v for v in free_variables(body) if v.name not in head_var_names]
    if to_close:
        body = Exists(tuple(to_close), body)
    return DRCQuery(tuple(head_terms), body)
