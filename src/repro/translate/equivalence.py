"""Empirical equivalence checking across query languages.

Logical equivalence of first-order queries is undecidable in general, so the
project follows the route any reproducibility harness would: evaluate both
representations on a battery of database instances (the cow-book instance,
the empty instance, and a family of random instances) and compare the answer
*sets*.  Agreement on all instances is reported as equivalence; the first
disagreeing instance is reported as a counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.sailors import empty_sailors_database, sailors_database
from repro.datalog.ast import Program
from repro.datalog.evaluate import evaluate_datalog
from repro.drc.ast import DRCQuery
from repro.drc.evaluate import evaluate_drc
from repro.ra.ast import RAExpr
from repro.ra.evaluate import evaluate as evaluate_ra
from repro.sql.ast import SelectQuery, SetOpQuery
from repro.sql.evaluate import evaluate_sql
from repro.trc.ast import TRCQuery
from repro.trc.evaluate import evaluate_trc


class EquivalenceError(Exception):
    """Raised when a query object cannot be dispatched to an evaluator."""


def answer_set(query: Any, db: Database, *, datalog_answer: str = "ans") -> frozenset[tuple]:
    """Evaluate any supported query representation and return its answer set.

    Accepted representations: SQL text or AST, RA expressions, TRC queries,
    DRC queries, Datalog programs (text or AST), and
    :class:`~repro.data.relation.Relation` objects (already-computed answers).
    """
    relation = answer_relation(query, db, datalog_answer=datalog_answer)
    return frozenset(relation.distinct_rows())


def answer_relation(query: Any, db: Database, *, datalog_answer: str = "ans") -> Relation:
    """Evaluate any supported query representation and return the result relation."""
    if isinstance(query, Relation):
        return query
    if isinstance(query, str):
        from repro.engine.lower import detect_language

        language = detect_language(query)
        if language == "sql":
            return evaluate_sql(query, db)
        if language == "drc":
            return evaluate_drc(query, db)
        if language == "trc":
            return evaluate_trc(query, db)
        if language == "datalog":
            return evaluate_datalog(query, db, query=datalog_answer)
        from repro.ra.parser import parse_ra

        return evaluate_ra(parse_ra(query), db)
    if isinstance(query, (SelectQuery, SetOpQuery)):
        return evaluate_sql(query, db)
    if isinstance(query, RAExpr):
        return evaluate_ra(query, db)
    if isinstance(query, TRCQuery):
        return evaluate_trc(query, db)
    if isinstance(query, DRCQuery):
        return evaluate_drc(query, db)
    if isinstance(query, Program):
        return evaluate_datalog(query, db, query=datalog_answer)
    raise EquivalenceError(f"cannot evaluate query of type {type(query).__name__}")


@dataclass
class EquivalenceResult:
    """Outcome of comparing several query representations."""

    equivalent: bool
    databases_checked: int = 0
    counterexample: "Database | None" = None
    details: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


def standard_database_battery(*, extra_random: int = 5, seed: int = 0,
                              rows: int = 10) -> list[Database]:
    """The instances used by the T1 experiment: cow book + empty + random."""
    from repro.data.sailors import random_sailors_database

    databases = [sailors_database(), empty_sailors_database()]
    for i in range(extra_random):
        databases.append(
            random_sailors_database(
                n_sailors=rows, n_boats=max(3, rows // 2),
                n_reserves=rows * 3, seed=seed + i,
            )
        )
    return databases


def check_equivalence(queries: Sequence[Any], databases: Sequence[Database] | None = None,
                      *, datalog_answer: str = "ans") -> EquivalenceResult:
    """Check that all given query representations agree on all databases."""
    if databases is None:
        databases = standard_database_battery()
    details: list[str] = []
    for index, db in enumerate(databases):
        answers = [answer_set(q, db, datalog_answer=datalog_answer) for q in queries]
        reference = answers[0]
        for position, answer in enumerate(answers[1:], start=1):
            if answer != reference:
                details.append(
                    f"database #{index}: representation 0 returned {len(reference)} rows, "
                    f"representation {position} returned {len(answer)} rows"
                )
                return EquivalenceResult(False, index + 1, db, details)
    return EquivalenceResult(True, len(databases), None, details)


def agreement_matrix(queries_by_language: dict[str, Any],
                     databases: Sequence[Database] | None = None) -> dict[tuple[str, str], bool]:
    """Pairwise agreement between named representations (used by experiment T1)."""
    if databases is None:
        databases = standard_database_battery()
    names = list(queries_by_language)
    matrix: dict[tuple[str, str], bool] = {}
    answers = {
        name: [answer_set(queries_by_language[name], db) for db in databases]
        for name in names
    }
    for a in names:
        for b in names:
            matrix[(a, b)] = answers[a] == answers[b]
    return matrix
