"""HTTP/1.1 parsing and the JSON wire formats of the serving tier.

The server speaks a deliberately small slice of HTTP/1.1 — enough for
keep-alive JSON request/response traffic from any stock client
(``curl``, ``http.client``, browsers) without a third-party framework:

* requests: request line + headers + ``Content-Length``-framed body
  (no chunked uploads, no trailers, no pipelining guarantees beyond
  serial keep-alive);
* responses: ``Content-Length``-framed JSON bodies, ``Connection:
  keep-alive`` unless the client asked to close.

Every body on the wire is JSON.  Errors are always::

    {"error": {"code": "...", "message": "...", "detail": {...}}}

with the HTTP status taken from the
:class:`~repro.core.service_api.ServiceError` hierarchy — no traceback
ever crosses the wire.  The request validators in this module raise
:class:`~repro.core.service_api.InvalidRequestError` so malformed bodies
surface as structured 400s like every other serving error.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.service_api import InvalidRequestError, ServiceError

#: Hard framing limits: a request breaching these is rejected, not queued.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024
MAX_HEADERS = 64

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The decoded JSON body; ``{}`` when empty."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidRequestError(
                f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> "Request | None":
    """Parse one request off the stream; ``None`` on a clean client close."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None  # client closed between requests
    try:
        method, path, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise InvalidRequestError("malformed HTTP request line") from None
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES or len(headers) > MAX_HEADERS:
            raise InvalidRequestError("request headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise InvalidRequestError(
                f"bad Content-Length {length!r}") from None
        if n < 0 or n > MAX_BODY_BYTES:
            raise InvalidRequestError(
                f"request body of {n} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        if n:
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                return None  # client died mid-body
    return Request(method=method.upper(), path=path, headers=headers,
                   body=body)


def render_response(status: int, payload: Any, *,
                    extra_headers: Sequence[tuple[str, str]] = (),
                    keep_alive: bool = True) -> bytes:
    """One complete HTTP/1.1 response (headers + JSON body) as bytes."""
    body = json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def error_payload(error: ServiceError) -> dict[str, Any]:
    """The wire form of one structured error."""
    return {"error": error.to_payload()}


# ---------------------------------------------------------------------------
# Request-body validators (each raises InvalidRequestError on bad shape)
# ---------------------------------------------------------------------------

def _require(data: Any) -> dict:
    if not isinstance(data, dict):
        raise InvalidRequestError(
            f"request body must be a JSON object, got {type(data).__name__}")
    return data


def _string_field(data: dict, name: str, *, required: bool = True,
                  default: "str | None" = None) -> "str | None":
    value = data.get(name, default)
    if value is None:
        if required:
            raise InvalidRequestError(f"missing required field {name!r}",
                                      detail={"field": name})
        return None
    if not isinstance(value, str):
        raise InvalidRequestError(
            f"field {name!r} must be a string, got {type(value).__name__}",
            detail={"field": name})
    return value


def query_request(data: Any) -> tuple[str, "str | None"]:
    """``POST /query`` and ``POST /prepare``: ``{"text", "language"?}``."""
    data = _require(data)
    text = _string_field(data, "text")
    language = _string_field(data, "language", required=False)
    return text, language


def write_request(data: Any) -> tuple[str, list[list[Any]]]:
    """``POST /write``: ``{"relation", "rows": [[...], ...]}`` (or "row")."""
    data = _require(data)
    relation = _string_field(data, "relation")
    rows: Any
    if "row" in data:
        if "rows" in data:
            raise InvalidRequestError('pass either "row" or "rows", not both')
        rows = [data["row"]]
    else:
        rows = data.get("rows")
    if not isinstance(rows, list) or not rows \
            or not all(isinstance(r, list) for r in rows):
        raise InvalidRequestError(
            '"rows" must be a non-empty JSON array of row arrays')
    return relation, rows


def view_request(data: Any) -> tuple[str, "str | None", "str | None", str]:
    """``POST /views``: ``{"text", "language"?, "name"?, "refresh"?}``."""
    data = _require(data)
    text = _string_field(data, "text")
    language = _string_field(data, "language", required=False)
    name = _string_field(data, "name", required=False)
    refresh = _string_field(data, "refresh", required=False,
                            default="lazy")
    return text, language, name, refresh


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "Request",
    "error_payload",
    "query_request",
    "read_request",
    "render_response",
    "view_request",
    "write_request",
]
