"""The asyncio HTTP application: request router + endpoint handlers.

:class:`ServingApp` is constructed against the
:class:`~repro.core.service_api.ServiceAPI` *protocol* — it never imports a
concrete service class — so the same server fronts single-node, sharded,
and process-backend deployments.  Endpoints:

================  ======  ====================================================
``/query``        POST    ``{"text", "language"?}`` → the result envelope
``/prepare``      POST    ``{"text", "language"?}`` → ``{"handle", ...}``
``/execute/{h}``  POST    serve a prepared handle → the result envelope
``/write``        POST    ``{"relation", "rows"|"row"}`` → ``{"version", ...}``
``/views``        POST    ``{"text", "name"?, "refresh"?}`` → view info
``/views``        GET     all registered views' info
``/views/{name}`` DELETE  unregister
``/views/{name}/refresh``  POST  force a catch-up now → view info
``/metrics``      GET     flat JSON counters (stats, caches, execution,
                          verification, admission, write worker)
``/health``       GET     liveness probe (never sheds)
================  ======  ====================================================

Threading discipline — the rule ``tools/check_invariants.py`` enforces
statically: the event loop only parses, routes, and frames; every blocking
service call runs off-loop.  Reads go through ``loop.run_in_executor``
(:meth:`ServingApp._call`), writes through the
:class:`~repro.server.worker.WriteWorker`.  Mutating-the-app state (the
prepared-handle registry) happens only on the loop, so it needs no lock.

Overload: ``POST`` traffic passes the
:class:`~repro.server.admission.AdmissionController`; a saturated server
answers 503 with a ``Retry-After`` header instead of queuing unboundedly.
``GET /metrics`` and ``GET /health`` bypass admission so operators can see
*into* an overloaded server.
"""

from __future__ import annotations

import asyncio
import threading
from functools import partial
from typing import Any, Awaitable, Callable

from repro.core.service_api import (
    ServiceAPI,
    ServiceError,
    UnknownHandleError,
    wrap_service_error,
)
from repro.server import protocol
from repro.server.admission import AdmissionController
from repro.server.worker import WriteWorker


class _NotFoundError(ServiceError):
    code = "not_found"
    http_status = 404


class _MethodNotAllowedError(ServiceError):
    code = "method_not_allowed"
    http_status = 405


_Handler = Callable[..., Awaitable[tuple[Any, int]]]


class ServingApp:
    """Route + serve HTTP requests against one :class:`ServiceAPI`."""

    def __init__(self, service: ServiceAPI, *,
                 max_concurrent: int = 8,
                 max_queue_depth: int = 32,
                 retry_after: float = 0.5,
                 flush_interval: float = 0.002) -> None:
        self.service = service
        self.admission = AdmissionController(
            max_concurrent=max_concurrent, max_queue_depth=max_queue_depth,
            retry_after=retry_after)
        self.worker = WriteWorker(service, flush_interval=flush_interval)
        self._handles: dict[str, Any] = {}
        self._connections: "set[asyncio.Task[None]]" = set()
        self._server: "asyncio.Server | None" = None
        self.port: "int | None" = None
        self.requests_served = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind + start serving; returns the (possibly ephemeral) port."""
        self.worker.start()
        self._server = await asyncio.start_server(
            self._on_connection, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        """Stop accepting, drain the write worker, release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections sit parked in read_request forever;
        # cancel them so no connection task outlives the loop.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        await self.worker.close()

    # -- connection handling ------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await protocol.read_request(reader)
                except ServiceError as error:
                    # Framing is unreliable after a malformed request:
                    # answer and close.
                    writer.write(protocol.render_response(
                        error.http_status, protocol.error_payload(error),
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._respond(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange: nothing left to tell it
        except asyncio.CancelledError:
            pass  # close() cancelling an idle keep-alive connection
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # already torn down by the peer

    async def _respond(self, request: protocol.Request) -> bytes:
        self.requests_served += 1
        try:
            handler, args, admit = self._route(request.method, request.path)
            if admit:
                async with self.admission.slot():
                    payload, status = await handler(request, *args)
            else:
                payload, status = await handler(request, *args)
            return protocol.render_response(status, payload,
                                            keep_alive=request.keep_alive)
        except ServiceError as error:
            return self._error_response(error, request)
        except Exception as exc:
            return self._error_response(wrap_service_error(exc), request)

    def _error_response(self, error: ServiceError,
                        request: protocol.Request) -> bytes:
        extra: list[tuple[str, str]] = []
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            extra.append(("Retry-After", f"{retry_after:g}"))
        return protocol.render_response(
            error.http_status, protocol.error_payload(error),
            extra_headers=extra, keep_alive=request.keep_alive)

    def _route(self, method: str,
               path: str) -> tuple[_Handler, tuple[str, ...], bool]:
        """``(handler, path args, goes through admission)`` for one target."""
        path = path.split("?", 1)[0]
        parts = tuple(p for p in path.split("/") if p)
        routes: dict[tuple[str, ...], dict[str, tuple[_Handler, bool]]] = {
            ("query",): {"POST": (self._handle_query, True)},
            ("prepare",): {"POST": (self._handle_prepare, True)},
            ("write",): {"POST": (self._handle_write, True)},
            ("views",): {"POST": (self._handle_register_view, True),
                         "GET": (self._handle_list_views, False)},
            ("metrics",): {"GET": (self._handle_metrics, False)},
            ("health",): {"GET": (self._handle_health, False)},
        }
        args: tuple[str, ...] = ()
        if len(parts) == 2 and parts[0] == "execute":
            by_method = {"POST": (self._handle_execute, True)}
            args = (parts[1],)
        elif len(parts) == 2 and parts[0] == "views":
            by_method = {"DELETE": (self._handle_delete_view, True)}
            args = (parts[1],)
        elif len(parts) == 3 and parts[0] == "views" and parts[2] == "refresh":
            by_method = {"POST": (self._handle_refresh_view, True)}
            args = (parts[1],)
        else:
            matched = routes.get(parts)
            if matched is None:
                raise _NotFoundError(f"no route for {path!r}",
                                     detail={"path": path})
            by_method = matched
        entry = by_method.get(method)
        if entry is None:
            raise _MethodNotAllowedError(
                f"{method} not allowed on {path!r}",
                detail={"path": path, "allowed": sorted(by_method)})
        handler, admit = entry
        return handler, args, admit

    async def _call(self, fn: Callable[..., Any], *args: Any,
                    **kwargs: Any) -> Any:
        """Run one blocking service call in the executor, off the loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, partial(fn, *args, **kwargs))

    # -- handlers -----------------------------------------------------------

    async def _handle_query(self, request: protocol.Request) -> tuple[Any, int]:
        text, language = protocol.query_request(request.json())
        result = await self._call(self.service.query, text, language=language)
        return result.to_payload(), 200

    async def _handle_prepare(self, request: protocol.Request) -> tuple[Any, int]:
        text, language = protocol.query_request(request.json())
        handle = await self._call(self.service.prepare, text,
                                  language=language)
        handle_id = handle.fingerprint
        self._handles[handle_id] = handle
        return {"handle": handle_id, "language": handle.language,
                "text": handle.text}, 200

    async def _handle_execute(self, request: protocol.Request,
                              handle_id: str) -> tuple[Any, int]:
        handle = self._handles.get(handle_id)
        if handle is None:
            raise UnknownHandleError(
                f"no prepared query with handle {handle_id!r}; POST /prepare "
                "first (handles do not survive a server restart)",
                detail={"handle": handle_id})
        result = await self._call(handle.query)
        return result.to_payload(), 200

    async def _handle_write(self, request: protocol.Request) -> tuple[Any, int]:
        relation, rows = protocol.write_request(request.json())
        version = await self.worker.submit(relation, rows)
        if isinstance(version, tuple):
            version = list(version)
        return {"relation": relation, "rows": len(rows),
                "version": version, "batched": True}, 200

    async def _handle_register_view(self,
                                    request: protocol.Request) -> tuple[Any, int]:
        text, language, name, refresh = protocol.view_request(request.json())
        view = await self._call(self.service.register_view, text,
                                language=language, name=name, refresh=refresh)
        return self._view_payload(view), 200

    async def _handle_list_views(self,
                                 request: protocol.Request) -> tuple[Any, int]:
        views = await self._call(self.service.views)
        return {"views": [self._view_payload(view) for view in views]}, 200

    async def _handle_delete_view(self, request: protocol.Request,
                                  name: str) -> tuple[Any, int]:
        await self._call(self.service.unregister_view, name)
        return {"deleted": name}, 200

    async def _handle_refresh_view(self, request: protocol.Request,
                                   name: str) -> tuple[Any, int]:
        def refresh() -> dict[str, Any]:
            # Runs in the executor: lookup + catch-up take service locks.
            view = self.service.view(name)
            view.refresh()
            return self._view_payload(view)

        return await self._call(refresh), 200

    async def _handle_metrics(self,
                              request: protocol.Request) -> tuple[Any, int]:
        def collect() -> dict[str, Any]:
            # Runs in the executor: every call below takes service locks.
            from repro.engine.verify import verification_counts

            service = self.service
            version, tables = service.stats_snapshot()
            metrics: dict[str, Any] = {
                "db_version": list(version) if isinstance(version, tuple)
                              else version,
            }
            for name, stats in sorted(tables.items()):
                rows = getattr(stats, "row_count", None)
                if rows is not None:
                    metrics[f"rows_{name}"] = rows
            metrics.update(service.cache_info())
            for key, value in service.execution_counts().items():
                metrics[f"exec_{key}"] = value
            metrics.update(verification_counts())
            return metrics

        metrics = await self._call(collect)
        metrics.update(self.admission.snapshot())
        metrics.update(self.worker.counts())
        metrics["prepared_handles"] = len(self._handles)
        metrics["requests_served"] = self.requests_served
        backend_name = getattr(self.service, "backend_name", None)
        if backend_name is not None:
            metrics["backend"] = backend_name
        return metrics, 200

    async def _handle_health(self,
                             request: protocol.Request) -> tuple[Any, int]:
        return {"status": "ok"}, 200

    @staticmethod
    def _view_payload(view: Any) -> dict[str, Any]:
        info = dict(view.info())
        info["base_relations"] = list(info.get("base_relations", ()))
        return info


class ServerThread:
    """An embedded server: own event loop on a daemon thread.

    Tests and benchmarks (and the CLI entry point) need a running server
    next to synchronous client code; this wraps the loop/thread lifecycle::

        with ServerThread(service) as server:
            http.client.HTTPConnection("127.0.0.1", server.port) ...

    ``close()`` stops the loop, drains the write worker, and joins the
    thread.  The service itself is *not* closed — the caller owns it.
    """

    def __init__(self, service: ServiceAPI, *, host: str = "127.0.0.1",
                 port: int = 0, **app_kwargs: Any) -> None:
        self.app = ServingApp(service, **app_kwargs)
        self._host = host
        self._requested_port = port
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: "BaseException | None" = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-server")

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    @property
    def port(self) -> int:
        port = self.app.port
        assert port is not None, "server not started"
        return port

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(
                self.app.start(self._host, self._requested_port))
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        self._loop.run_forever()
        # close() requested: tear down inside the loop's thread.
        self._loop.run_until_complete(self.app.close())
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def serve(service: ServiceAPI, *, host: str = "127.0.0.1", port: int = 8080,
          **app_kwargs: Any) -> None:
    """Blocking convenience entry point: serve until interrupted."""
    async def _main() -> None:
        app = ServingApp(service, **app_kwargs)
        bound = await app.start(host, port)
        print(f"repro server listening on http://{host}:{bound}")
        try:
            await asyncio.Event().wait()
        finally:
            await app.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


__all__ = ["ServerThread", "ServingApp", "serve"]
