"""An asyncio HTTP/1.1 serving tier over the unified service API.

Everything below :mod:`repro.core.service_api` is in-process; this package
is the protocol boundary the roadmap's "millions of users" needs.  It is
dependency-free (stdlib ``asyncio`` only) and written against the
:class:`~repro.core.service_api.ServiceAPI` protocol, so one code path
fronts :class:`~repro.core.service.QueryService`,
:class:`~repro.core.sharded_service.ShardedQueryService` (thread or
process backend), and test doubles alike.

Layout:

* :mod:`repro.server.protocol` — HTTP/1.1 request parsing, JSON wire
  formats, request-body validators;
* :mod:`repro.server.admission` — semaphore-based admission control with
  queue-depth shedding (503 + ``Retry-After``, never an unbounded queue);
* :mod:`repro.server.worker` — the background write worker batching
  concurrent ``POST /write`` bodies into shared
  :meth:`~repro.core.service_api.ServiceAPI.add_rows` calls, so one flush
  window costs one version bump no matter how many clients write;
* :mod:`repro.server.app` — the request router and endpoint handlers,
  plus :class:`~repro.server.app.ServerThread` for embedding a server in
  tests and benchmarks.

Handlers never run blocking service calls on the event loop: reads go
through ``loop.run_in_executor`` and writes through the worker
(``tools/check_invariants.py`` enforces this statically via the
``server-nonblocking`` rule).
"""

from repro.server.admission import AdmissionController
from repro.server.app import ServerThread, ServingApp
from repro.server.protocol import Request, render_response
from repro.server.worker import WriteWorker

__all__ = [
    "AdmissionController",
    "Request",
    "ServerThread",
    "ServingApp",
    "WriteWorker",
    "render_response",
]
