"""The background write worker: many clients, one version bump per flush.

``Relation.add_rows`` publishes a *single* version bump per batch (PR 4's
write path), but that amortization only helps a caller who already holds a
batch.  Concurrent HTTP clients each send one small write; applied
per-request they would bump the version once per row, invalidating the
result caches and view anchors once per row.  This worker funnels every
``POST /write`` through one queue and flushes in windows: all writes queued
during a window are grouped by relation and applied as one
:meth:`~repro.core.service_api.ServiceAPI.add_rows` call per relation — so
N concurrent writers share one version bump per relation per flush, and
downstream caches see batch-granularity invalidation under any client mix.

Failure isolation: a flush applies rows from many clients, and one
malformed row must not fail its batch-mates.  On a batched-call error the
worker falls back to applying each client's rows individually, so good
writes land and each bad write gets its own structured error.

The worker runs on the event loop; the blocking ``add_rows`` calls run in
the executor (never on the loop).  ``counts()`` exposes the
requests-vs-flushes ratio the E9 benchmark gates (≥5x fewer version bumps
than per-request writes under concurrent load).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from functools import partial
from typing import Any

from repro.core.service_api import ServiceAPI, ServiceError, wrap_service_error


@dataclass
class _PendingWrite:
    relation: str
    rows: list[list[Any]]
    future: "asyncio.Future[int]" = field(repr=False, default=None)  # type: ignore[assignment]


class WriteWorker:
    """Batch concurrent writes into shared flushes (see module docs).

    ``flush_interval`` is the batching window in seconds: after the first
    write of a flush arrives, the worker waits this long for companions
    before applying.  ``0`` disables the wait (drain-only batching: writes
    already queued still share a flush).  ``max_batch`` bounds one flush.
    """

    def __init__(self, service: ServiceAPI, *, flush_interval: float = 0.002,
                 max_batch: int = 4096) -> None:
        self.service = service
        self.flush_interval = flush_interval
        self.max_batch = max_batch
        self._queue: "asyncio.Queue[_PendingWrite | None]" = asyncio.Queue()
        self._task: "asyncio.Task[None] | None" = None
        self.write_requests = 0
        self.rows_written = 0
        self.batched_calls = 0    # add_rows invocations == version bumps
        self.flushes = 0
        self.write_errors = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the flush loop on the running event loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Flush everything queued, then stop the loop task."""
        if self._task is None:
            return
        await self._queue.put(None)  # shutdown sentinel, after queued writes
        await self._task
        self._task = None

    # -- submission ---------------------------------------------------------

    async def submit(self, relation: str, rows: list[list[Any]]) -> int:
        """Enqueue one client's rows; resolves to the post-flush version.

        Raises the structured :class:`ServiceError` for this client's rows
        if they fail to apply (batch-mates are unaffected).
        """
        loop = asyncio.get_running_loop()
        pending = _PendingWrite(relation, rows, loop.create_future())
        self.write_requests += 1
        await self._queue.put(pending)
        return await pending.future

    # -- the flush loop -----------------------------------------------------

    async def _run(self) -> None:
        shutting_down = False
        while not shutting_down:
            head = await self._queue.get()
            if head is None:
                break
            batch = [head]
            if self.flush_interval > 0:
                # The batching window: let concurrent writers catch up.
                await asyncio.sleep(self.flush_interval)
            while len(batch) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is None:
                    shutting_down = True
                    break
                batch.append(item)
            await self._flush(batch)

    async def _flush(self, batch: list[_PendingWrite]) -> None:
        loop = asyncio.get_running_loop()
        grouped: dict[str, list[_PendingWrite]] = {}
        for item in batch:
            grouped.setdefault(item.relation, []).append(item)
        self.flushes += 1
        for relation, items in grouped.items():
            rows = [row for item in items for row in item.rows]
            try:
                self.batched_calls += 1
                version = await loop.run_in_executor(
                    None, partial(self.service.add_rows, relation, rows))
            except Exception:
                # One client's bad row poisoned the shared batch: re-apply
                # per client so the good writes land and only the bad
                # client sees its (structured) error.
                await self._flush_individually(loop, items)
            else:
                self.rows_written += len(rows)
                for item in items:
                    if not item.future.done():
                        item.future.set_result(version)

    async def _flush_individually(self, loop: asyncio.AbstractEventLoop,
                                  items: list[_PendingWrite]) -> None:
        for item in items:
            try:
                self.batched_calls += 1
                version = await loop.run_in_executor(
                    None,
                    partial(self.service.add_rows, item.relation, item.rows))
            except Exception as exc:
                self.write_errors += 1
                error: ServiceError = wrap_service_error(exc)
                if not item.future.done():
                    item.future.set_exception(error)
            else:
                self.rows_written += len(item.rows)
                if not item.future.done():
                    item.future.set_result(version)

    # -- introspection ------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Flat counters for metrics and the E9 batching gate."""
        return {
            "write_requests": self.write_requests,
            "write_rows": self.rows_written,
            "write_flushes": self.flushes,
            "write_batched_calls": self.batched_calls,
            "write_errors": self.write_errors,
        }


__all__ = ["WriteWorker"]
