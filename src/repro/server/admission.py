"""Admission control: bounded concurrency with queue-depth shedding.

A serving tier that queues unboundedly converts overload into unbounded
latency and memory; the production-correct behaviour is to *shed*: admit
up to ``max_concurrent`` requests into the executor, let at most
``max_queue_depth`` more wait, and answer everyone past that with 503 +
``Retry-After`` immediately.  Clients with backoff then spread the load;
clients without it fail fast instead of timing out.

The controller lives entirely on the event loop (asyncio is
single-threaded), so the counters need no lock; the semaphore provides
the actual FIFO wait.  :meth:`AdmissionController.slot` is the whole API:

    async with app.admission.slot():
        ... run the handler ...

raising :class:`~repro.core.service_api.OverloadedError` instead of
entering when the server is saturated.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import AsyncIterator

from repro.core.service_api import OverloadedError


class AdmissionController:
    """Semaphore-bounded admission with queue-depth shedding (see module)."""

    def __init__(self, max_concurrent: int = 8, max_queue_depth: int = 32,
                 retry_after: float = 0.5) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue_depth = max_queue_depth
        self.retry_after = retry_after
        self._semaphore = asyncio.Semaphore(max_concurrent)
        self.active = 0
        self.waiting = 0
        self.admitted = 0
        self.shed = 0
        self.peak_active = 0
        self.peak_waiting = 0

    @asynccontextmanager
    async def slot(self) -> AsyncIterator[None]:
        """Hold one admission slot; shed with 503 when saturated."""
        if self.active >= self.max_concurrent \
                and self.waiting >= self.max_queue_depth:
            self.shed += 1
            raise OverloadedError(
                f"server saturated: {self.active} active requests and "
                f"{self.waiting} queued (limit {self.max_queue_depth}); "
                "retry later",
                retry_after=self.retry_after,
                detail={"active": self.active, "waiting": self.waiting,
                        "max_concurrent": self.max_concurrent,
                        "max_queue_depth": self.max_queue_depth},
            )
        self.waiting += 1
        self.peak_waiting = max(self.peak_waiting, self.waiting)
        try:
            await self._semaphore.acquire()
        finally:
            self.waiting -= 1
        self.active += 1
        self.admitted += 1
        self.peak_active = max(self.peak_active, self.active)
        try:
            yield
        finally:
            self.active -= 1
            self._semaphore.release()

    def snapshot(self) -> dict[str, int]:
        """Flat counters for the metrics endpoint."""
        return {
            "admission_active": self.active,
            "admission_waiting": self.waiting,
            "admission_admitted": self.admitted,
            "admission_shed": self.shed,
            "admission_peak_active": self.peak_active,
            "admission_peak_waiting": self.peak_waiting,
            "admission_max_concurrent": self.max_concurrent,
            "admission_max_queue_depth": self.max_queue_depth,
        }


__all__ = ["AdmissionController"]
