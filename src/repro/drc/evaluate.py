"""Guarded evaluation of DRC queries.

Naive active-domain evaluation of DRC enumerates |domain|^k assignments for a
formula with k variables, which already explodes on the 4-attribute Sailors
relation.  This evaluator instead uses the *guards* that safe queries always
have: positive relation atoms reachable through conjunctions generate
candidate bindings (by iterating relation rows), and only variables with no
guard at all fall back to the active domain.

Universal quantifiers and implications are rewritten away
(∀x φ ⇒ ¬∃x ¬φ), so the evaluator core only handles ∃, ∧, ∨, ¬, atoms and
comparisons.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema
from repro.data.types import DataType, infer_type
from repro.drc.ast import DRCError, DRCQuery
from repro.logic.formula import (
    And,
    Atom,
    Compare,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    Truth,
    free_variables,
)
from repro.logic.terms import Const, Term, Var
from repro.logic.transform import eliminate_implications

Env = dict[str, Any]


def _rewrite(formula: Formula) -> Formula:
    """Normalise for guarded evaluation.

    Removes →/↔, rewrites ∀x φ as ¬∃x ¬φ, and then pushes negations inward
    (stopping at ∃) so that guards hidden under ¬(¬A ∨ B) patterns become
    visible as top-level conjuncts.
    """
    formula = eliminate_implications(formula)

    def visit(node: Formula) -> Formula:
        if isinstance(node, (Truth, Atom, Compare)):
            return node
        if isinstance(node, And):
            return And(tuple(visit(o) for o in node.operands))
        if isinstance(node, Or):
            return Or(tuple(visit(o) for o in node.operands))
        if isinstance(node, Not):
            return Not(visit(node.operand))
        if isinstance(node, Exists):
            return Exists(node.variables, visit(node.body))
        if isinstance(node, ForAll):
            return Not(Exists(node.variables, Not(visit(node.body))))
        raise DRCError(f"rewrite: unhandled node {type(node).__name__}")

    return _push_negations(visit(formula), False)


def _push_negations(node: Formula, negate: bool) -> Formula:
    """Negation pushdown that keeps ∃ (never introduces ∀)."""
    if isinstance(node, Truth):
        return Truth(node.value != negate)
    if isinstance(node, (Atom, Compare)):
        return Not(node) if negate else node
    if isinstance(node, Not):
        return _push_negations(node.operand, not negate)
    if isinstance(node, And):
        parts = tuple(_push_negations(o, negate) for o in node.operands)
        return Or(parts) if negate else And(parts)
    if isinstance(node, Or):
        parts = tuple(_push_negations(o, negate) for o in node.operands)
        return And(parts) if negate else Or(parts)
    if isinstance(node, Exists):
        body = _push_negations(node.body, False)
        inner = Exists(node.variables, body)
        return Not(inner) if negate else inner
    raise DRCError(f"_push_negations: unhandled node {type(node).__name__}")


def _term_value(term: Term, env: Env) -> Any:
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        if term.name not in env:
            raise DRCError(f"unbound variable {term.name}")
        return env[term.name]
    raise DRCError(f"not a term: {term!r}")


def _compare(left: Any, op: str, right: Any) -> bool:
    if left is None or right is None:
        return False
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise DRCError(f"unknown comparison {op!r}")  # pragma: no cover


def _conjuncts(formula: Formula) -> list[Formula]:
    if isinstance(formula, And):
        out: list[Formula] = []
        for operand in formula.operands:
            out.extend(_conjuncts(operand))
        return out
    return [formula]


def _holds(formula: Formula, db: Database, env: Env, domain: list[Any]) -> bool:
    if isinstance(formula, Truth):
        return formula.value
    if isinstance(formula, Atom):
        relation = db.relation(formula.predicate)
        row = tuple(_term_value(t, env) for t in formula.terms)
        return row in set(relation.distinct_rows())
    if isinstance(formula, Compare):
        return _compare(_term_value(formula.left, env), formula.op,
                        _term_value(formula.right, env))
    if isinstance(formula, And):
        return all(_holds(o, db, env, domain) for o in formula.operands)
    if isinstance(formula, Or):
        return any(_holds(o, db, env, domain) for o in formula.operands)
    if isinstance(formula, Not):
        return not _holds(formula.operand, db, env, domain)
    if isinstance(formula, Exists):
        names = [v.name for v in formula.variables]
        for _extended in _assignments(names, formula.body, db, dict(env), domain):
            return True  # only existence matters
        return False
    raise DRCError(f"_holds: unhandled node {type(formula).__name__}")


def _assignments(unbound: list[str], formula: Formula, db: Database, env: Env,
                 domain: list[Any]) -> Iterator[Env]:
    """Yield extensions of ``env`` binding ``unbound`` under which ``formula`` holds.

    Guards (positive atoms among the top-level conjuncts, or nested inside
    disjuncts when every disjunct guards the variable) generate candidate
    rows; unguarded variables enumerate the active domain.
    """
    unbound = [name for name in unbound if name not in env]
    if not unbound:
        if _holds(formula, db, env, domain):
            yield dict(env)
        return

    guards = [c for c in _conjuncts(formula) if isinstance(c, Atom)]
    # Disjunctions guard a variable if it appears in an atom of every branch;
    # cheapest correct handling: split the evaluation per branch.
    if not guards:
        disjunctions = [c for c in _conjuncts(formula) if isinstance(c, Or)]
        if disjunctions:
            seen: set[tuple] = set()
            for branch in disjunctions[0].operands:
                rest = [c for c in _conjuncts(formula) if c is not disjunctions[0]]
                branch_formula = And(tuple([branch] + rest)) if rest else branch
                for result in _assignments(unbound, branch_formula, db, dict(env), domain):
                    key = tuple(sorted((k, repr(v)) for k, v in result.items()))
                    if key not in seen:
                        seen.add(key)
                        yield result
            return

    guard = None
    for candidate in guards:
        if any(isinstance(t, Var) and t.name in unbound for t in candidate.terms):
            guard = candidate
            break

    if guard is None:
        # No guard mentions an unbound variable: enumerate the domain for one.
        name = unbound[0]
        for value in domain:
            env[name] = value
            yield from _assignments(unbound[1:], formula, db, dict(env), domain)
        env.pop(name, None)
        return

    relation = db.relation(guard.predicate)
    for row in relation.distinct_rows():
        extended = dict(env)
        consistent = True
        for term, value in zip(guard.terms, row):
            if isinstance(term, Const):
                if term.value != value:
                    consistent = False
                    break
            elif isinstance(term, Var):
                if term.name in extended:
                    if extended[term.name] != value:
                        consistent = False
                        break
                else:
                    extended[term.name] = value
        if not consistent:
            continue
        remaining = [name for name in unbound if name not in extended]
        yield from _assignments(remaining, formula, db, extended, domain)


def evaluate_drc(query: "DRCQuery | str", db: Database) -> Relation:
    """Evaluate a DRC query (AST or text) and return the result relation."""
    if isinstance(query, str):
        from repro.drc.parser import parse_drc

        query = parse_drc(query)

    body = _rewrite(query.body)
    head_vars = query.head_variables()
    free = {v.name for v in free_variables(body)}
    for var in head_vars:
        if var.name not in free:
            raise DRCError(f"head variable {var.name!r} is not free in the body")

    domain = sorted(db.active_domain(), key=lambda v: (str(type(v)), str(v)))
    names = query.output_names()

    rows: list[tuple] = []
    seen: set[tuple] = set()
    for env in _assignments([v.name for v in head_vars], body, db, {}, domain):
        row = tuple(_term_value(term, env) for term in query.head)
        if row not in seen:
            seen.add(row)
            rows.append(row)
    return _build_relation(names, rows)


def evaluate_drc_boolean(formula: "Formula | str", db: Database) -> bool:
    """Evaluate a closed DRC formula (logical statement) to TRUE/FALSE."""
    if isinstance(formula, str):
        from repro.drc.parser import parse_drc_formula

        formula = parse_drc_formula(formula)
    free = free_variables(formula)
    if free:
        raise DRCError(
            "boolean evaluation requires a sentence; free variables: "
            + ", ".join(v.name for v in free)
        )
    body = _rewrite(formula)
    domain = sorted(db.active_domain(), key=lambda v: (str(type(v)), str(v)))
    return _holds(body, db, {}, domain)


def _build_relation(names: list[str], rows: list[tuple]) -> Relation:
    attributes = []
    for i, name in enumerate(names):
        dtype = DataType.STRING
        for row in rows:
            if row[i] is not None:
                try:
                    dtype = infer_type(row[i])
                except ValueError:
                    dtype = DataType.STRING
                break
        attributes.append(Attribute(name, dtype))
    return Relation(RelationSchema("result", tuple(attributes)), rows, validate=False)
