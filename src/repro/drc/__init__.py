"""Domain Relational Calculus: AST, parser, formatter, guarded evaluator."""

from repro.drc.ast import (
    DRCError,
    DRCQuery,
    atom_for,
    check_arities,
    head_is_covered,
    positional_attribute,
)
from repro.drc.evaluate import evaluate_drc, evaluate_drc_boolean
from repro.drc.format import format_drc_formula, format_drc_query
from repro.drc.parser import parse_drc, parse_drc_formula

__all__ = [
    "DRCError",
    "DRCQuery",
    "atom_for",
    "check_arities",
    "evaluate_drc",
    "evaluate_drc_boolean",
    "format_drc_formula",
    "format_drc_query",
    "head_is_covered",
    "parse_drc",
    "parse_drc_formula",
    "positional_attribute",
]
