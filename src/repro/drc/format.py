"""Formatting of DRC queries and formulas."""

from __future__ import annotations

from repro.drc.ast import DRCError, DRCQuery
from repro.logic.formula import (
    And,
    Atom,
    Compare,
    Exists,
    ForAll,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Truth,
)
from repro.logic.terms import Const, Term, Var

_UNICODE = {"and": " ∧ ", "or": " ∨ ", "not": "¬", "exists": "∃", "forall": "∀",
            "implies": " → ", "iff": " ↔ "}
_ASCII = {"and": " and ", "or": " or ", "not": "not ", "exists": "exists ",
          "forall": "forall ", "implies": " -> ", "iff": " <-> "}


def format_term(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        if isinstance(term.value, str):
            escaped = term.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(term.value, bool):
            return "true" if term.value else "false"
        return str(term.value)
    raise DRCError(f"not a term: {term!r}")


def format_drc_formula(formula: Formula, *, unicode: bool = False) -> str:
    symbols = _UNICODE if unicode else _ASCII

    def go(node: Formula, parent: int = 0) -> str:
        if isinstance(node, Truth):
            return "true" if node.value else "false"
        if isinstance(node, Atom):
            inner = ", ".join(format_term(t) for t in node.terms)
            return f"{node.predicate}({inner})"
        if isinstance(node, Compare):
            return f"{format_term(node.left)} {node.op} {format_term(node.right)}"
        if isinstance(node, And):
            text = symbols["and"].join(go(o, 20) for o in node.operands)
            return f"({text})" if parent > 20 else text
        if isinstance(node, Or):
            text = symbols["or"].join(go(o, 10) for o in node.operands)
            return f"({text})" if parent > 10 else text
        if isinstance(node, Not):
            return f"{symbols['not']}({go(node.operand)})"
        if isinstance(node, Implies):
            text = f"{go(node.antecedent, 5)}{symbols['implies']}{go(node.consequent, 5)}"
            return f"({text})" if parent > 5 else text
        if isinstance(node, Iff):
            text = f"{go(node.left, 5)}{symbols['iff']}{go(node.right, 5)}"
            return f"({text})" if parent > 5 else text
        if isinstance(node, (Exists, ForAll)):
            keyword = symbols["exists" if isinstance(node, Exists) else "forall"]
            names = ", ".join(v.name for v in node.variables)
            return f"{keyword}{names} ({go(node.body)})"
        raise DRCError(f"format: unhandled node {type(node).__name__}")

    return go(formula)


def format_drc_query(query: DRCQuery, *, unicode: bool = False) -> str:
    head = ", ".join(format_term(t) for t in query.head)
    body = format_drc_formula(query.body, unicode=unicode)
    return f"{{ {head} | {body} }}"
