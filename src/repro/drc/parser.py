"""Parser for textual DRC queries.

Example::

    { n | exists s, r, a (Sailors(s, n, r, a) and
          exists b, d (Reserves(s, b, d) and b = 102)) }

Anonymous positions may be written ``_``; each underscore becomes a fresh
variable that is existentially quantified immediately around its atom.
Unicode connectives (∃ ∀ ∧ ∨ ¬ →) are accepted, as are angle brackets around
the head: ``{ <x, y> | ... }``.
"""

from __future__ import annotations

import itertools
import re

from repro.drc.ast import DRCError, DRCQuery
from repro.logic.formula import (
    And,
    Atom,
    Compare,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    Truth,
)
from repro.logic.terms import Const, Term, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<arrow>->|→|⇒)
  | (?P<op><>|!=|<=|>=|=|<|>|\(|\)|\{|\}|\||,|:|<|>|_)
  | (?P<symbol>∃|∀|∧|∨|¬|⟨|⟩)
  | (?P<name>[A-Za-z][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "exists", "forall", "implies", "true", "false"}


class _Token:
    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise DRCError(f"unexpected character {text[pos]!r} at position {pos}")
        pos = match.end()
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "ws":
            continue
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", value.lower()))
        elif kind == "symbol":
            mapping = {"∃": "exists", "∀": "forall", "∧": "and", "∨": "or", "¬": "not",
                       "⟨": "<", "⟩": ">"}
            mapped = mapping[value]
            if mapped in ("<", ">"):
                tokens.append(_Token("op", mapped))
            else:
                tokens.append(_Token("keyword", mapped))
        elif kind == "arrow":
            tokens.append(_Token("keyword", "implies"))
        else:
            tokens.append(_Token(kind, value))
    tokens.append(_Token("eof", ""))
    return tokens


class _DRCParser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self._anon_counter = itertools.count(1)

    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            raise DRCError(f"expected {text or kind}, found {self.peek().text!r}")
        return token

    # -- query -------------------------------------------------------------
    def parse_query(self) -> DRCQuery:
        self.expect("op", "{")
        angled = bool(self.accept("op", "<"))
        head = [self.parse_term()]
        while self.accept("op", ","):
            head.append(self.parse_term())
        if angled:
            self.expect("op", ">")
        self.expect("op", "|")
        body = self.parse_formula()
        self.expect("op", "}")
        if self.peek().kind != "eof":
            raise DRCError(f"unexpected trailing input {self.peek().text!r}")
        return DRCQuery(tuple(head), body)

    # -- formulas ----------------------------------------------------------
    def parse_formula(self) -> Formula:
        return self.parse_implies()

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.accept("keyword", "implies"):
            return Implies(left, self.parse_implies())
        return left

    def parse_or(self) -> Formula:
        parts = [self.parse_and()]
        while self.accept("keyword", "or"):
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_and(self) -> Formula:
        parts = [self.parse_unary()]
        while self.accept("keyword", "and"):
            parts.append(self.parse_unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_unary(self) -> Formula:
        if self.accept("keyword", "not"):
            return Not(self.parse_unary())
        if self.peek().kind == "keyword" and self.peek().text in ("exists", "forall"):
            kind = self.advance().text
            variables = [Var(self.expect("name").text)]
            while self.accept("op", ","):
                variables.append(Var(self.expect("name").text))
            if self.accept("op", ":"):
                body = self.parse_unary()
            else:
                self.expect("op", "(")
                body = self.parse_formula()
                self.expect("op", ")")
            cls = Exists if kind == "exists" else ForAll
            return cls(tuple(variables), body)
        if self.peek().kind == "keyword" and self.peek().text in ("true", "false"):
            token = self.advance()
            return Truth(token.text == "true")
        return self.parse_atom()

    def parse_atom(self) -> Formula:
        token = self.peek()
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.parse_formula()
            self.expect("op", ")")
            return inner
        if token.kind == "name" and self.peek(1).kind == "op" and self.peek(1).text == "(":
            predicate = self.advance().text
            self.advance()  # '('
            terms: list[Term] = []
            anonymous: list[Var] = []
            if not (self.peek().kind == "op" and self.peek().text == ")"):
                terms.append(self._atom_term(anonymous))
                while self.accept("op", ","):
                    terms.append(self._atom_term(anonymous))
            self.expect("op", ")")
            atom: Formula = Atom(predicate, tuple(terms))
            if anonymous:
                atom = Exists(tuple(anonymous), atom)
            return atom
        left = self.parse_term()
        op_token = self.peek()
        if op_token.kind != "op" or op_token.text not in ("=", "<>", "!=", "<", "<=", ">", ">="):
            raise DRCError(f"expected a comparison operator, found {op_token.text!r}")
        self.advance()
        right = self.parse_term()
        return Compare(left, op_token.text, right)

    def _atom_term(self, anonymous: list[Var]) -> Term:
        if self.accept("op", "_"):
            var = Var(f"_anon{next(self._anon_counter)}")
            anonymous.append(var)
            return var
        return self.parse_term()

    def parse_term(self) -> Term:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return Const(float(token.text) if "." in token.text else int(token.text))
        if token.kind == "string":
            self.advance()
            return Const(token.text[1:-1].replace("''", "'"))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return Const(token.text == "true")
        if token.kind == "name":
            self.advance()
            return Var(token.text)
        raise DRCError(f"expected a term, found {token.text!r}")


def parse_drc(text: str) -> DRCQuery:
    """Parse a DRC query of the form ``{ head | formula }``."""
    return _DRCParser(_tokenize(text)).parse_query()


def parse_drc_formula(text: str) -> Formula:
    """Parse a bare DRC formula (for Boolean queries / logical statements)."""
    parser = _DRCParser(_tokenize(text))
    formula = parser.parse_formula()
    if parser.peek().kind != "eof":
        raise DRCError(f"unexpected trailing input {parser.peek().text!r}")
    return formula
