"""Domain Relational Calculus (DRC) queries.

A DRC query has the shape ``{ <x, y> | φ(x, y) }`` where the head lists
*domain variables* (or constants) and the body is a first-order formula over
relation atoms ``R(t1, ..., tn)`` whose positions are the relation's
attributes.  DRC is the calculus closest to plain first-order logic, which is
why Peirce's beta existential graphs (and their Lines of Identity) map to DRC
rather than to TRC — a mapping whose imperfection the tutorial discusses at
length.

The body reuses the formula machinery of :mod:`repro.logic`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.schema import DatabaseSchema
from repro.logic.formula import (
    Atom,
    Formula,
    atoms_of,
    free_variables,
)
from repro.logic.terms import Const, Term, Var


class DRCError(Exception):
    """Raised for malformed or unsafe DRC queries."""


@dataclass(frozen=True)
class DRCQuery:
    """``{ <head terms> | body }``."""

    head: tuple[Term, ...]
    body: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "head", tuple(self.head))
        if not self.head:
            raise DRCError("a DRC query needs at least one head term")

    def head_variables(self) -> list[Var]:
        """Head variables in order, without duplicates."""
        out: list[Var] = []
        for term in self.head:
            if isinstance(term, Var) and term not in out:
                out.append(term)
        return out

    def output_names(self) -> list[str]:
        """Column names for the answer relation."""
        names = []
        for i, term in enumerate(self.head):
            if isinstance(term, Var):
                names.append(term.name)
            else:
                names.append(f"col{i + 1}")
        return names

    def to_text(self) -> str:
        from repro.drc.format import format_drc_query

        return format_drc_query(self)


def check_arities(query: DRCQuery, schema: DatabaseSchema) -> list[str]:
    """Return a list of arity violations of the query's atoms against ``schema``."""
    problems = []
    for atom in atoms_of(query.body):
        try:
            relation = schema.relation(atom.predicate)
        except Exception:
            problems.append(f"unknown relation {atom.predicate!r}")
            continue
        if relation.arity != len(atom.terms):
            problems.append(
                f"atom {atom.predicate} has {len(atom.terms)} terms "
                f"but the relation has arity {relation.arity}"
            )
    return problems


def head_is_covered(query: DRCQuery) -> bool:
    """True iff every head variable occurs free in the body."""
    free_names = {v.name for v in free_variables(query.body)}
    return all(v.name in free_names for v in query.head_variables())


def positional_attribute(schema: DatabaseSchema, predicate: str, position: int) -> str:
    """The attribute name at ``position`` of relation ``predicate``."""
    relation = schema.relation(predicate)
    if position < 0 or position >= relation.arity:
        raise DRCError(f"{predicate} has no position {position}")
    return relation.attributes[position].name


def atom_for(schema: DatabaseSchema, predicate: str, bindings: dict[str, Term],
             default: "Term | None" = None) -> Atom:
    """Build a full-arity atom for ``predicate`` from an attribute→term mapping.

    Positions not mentioned in ``bindings`` get ``default`` (or a fresh
    variable named after the attribute when ``default`` is None).  This is the
    canonical way translators construct DRC atoms without having to know
    attribute positions.
    """
    relation = schema.relation(predicate)
    terms: list[Term] = []
    for attribute in relation.attributes:
        if attribute.name in bindings:
            terms.append(bindings[attribute.name])
        elif default is not None:
            terms.append(default)
        else:
            terms.append(Var(f"{predicate.lower()}_{attribute.name}"))
    return Atom(relation.name, tuple(terms))


__all__ = [
    "Atom",
    "Const",
    "DRCError",
    "DRCQuery",
    "Term",
    "Var",
    "atom_for",
    "check_arities",
    "head_is_covered",
    "positional_attribute",
]
