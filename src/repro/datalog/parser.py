"""Parser for Datalog programs.

Syntax::

    red_boat(B) :- boats(B, N, 'red').
    ans(N) :- sailors(S, N, R, A), reserves(S, 102, D).
    non_all_red(S) :- sailors(S, N, R, A), red_boat(B), not reserved(S, B).
    big(S) :- sailors(S, N, R, A), A > 40.0.

Variables are capitalised or start with ``_``; constants are numbers,
quoted strings, or lower-case identifiers (treated as string constants, as
in classical Datalog).  Negation is written ``not p(...)`` or ``\\+ p(...)``.
"""

from __future__ import annotations

import re

from repro.datalog.ast import (
    BuiltinComparison,
    DatalogError,
    Literal,
    Program,
    Rule,
)
from repro.logic.terms import Const, Term, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*|\#[^\n]*)
  | (?P<implies>:-|<-)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<negop>\\\+)
  | (?P<op><>|!=|<=|>=|==|=|<|>|\(|\)|,|\.)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)


class _Token:
    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise DatalogError(f"unexpected character {text[pos]!r} at position {pos}")
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group()))
    tokens.append(_Token("eof", ""))
    return tokens


def _is_variable_name(name: str) -> bool:
    return name[0].isupper() or name[0] == "_"


class _DatalogParser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            raise DatalogError(f"expected {text or kind}, found {self.peek().text!r}")
        return token

    def parse_program(self) -> Program:
        rules = []
        while self.peek().kind != "eof":
            rules.append(self.parse_rule())
        return Program(tuple(rules))

    def parse_rule(self) -> Rule:
        head = self.parse_literal(allow_negation=False)
        body: list = []
        if self.accept("implies"):
            body.append(self.parse_body_item())
            while self.accept("op", ","):
                body.append(self.parse_body_item())
        self.expect("op", ".")
        return Rule(head, tuple(body))

    def parse_body_item(self):
        token = self.peek()
        if token.kind == "negop" or (token.kind == "name" and token.text == "not"):
            self.advance()
            literal = self.parse_literal(allow_negation=False)
            return Literal(literal.predicate, literal.terms, negated=True)
        # Lookahead: NAME '(' is a literal; otherwise it is a comparison.
        if token.kind == "name" and self.peek(1).kind == "op" and self.peek(1).text == "(" \
                and not _is_variable_name(token.text):
            return self.parse_literal(allow_negation=False)
        left = self.parse_term()
        op_token = self.peek()
        if op_token.kind == "op" and op_token.text in ("=", "==", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_term()
            return BuiltinComparison(left, op_token.text, right)
        raise DatalogError(f"expected a literal or comparison, found {op_token.text!r}")

    def parse_literal(self, *, allow_negation: bool) -> Literal:
        negated = False
        if allow_negation and self.peek().kind == "name" and self.peek().text == "not":
            self.advance()
            negated = True
        name = self.expect("name").text
        terms: list[Term] = []
        if self.accept("op", "("):
            if not (self.peek().kind == "op" and self.peek().text == ")"):
                terms.append(self.parse_term())
                while self.accept("op", ","):
                    terms.append(self.parse_term())
            self.expect("op", ")")
        return Literal(name, tuple(terms), negated)

    def parse_term(self) -> Term:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return Const(float(token.text) if "." in token.text else int(token.text))
        if token.kind == "string":
            self.advance()
            quote = token.text[0]
            inner = token.text[1:-1].replace(quote * 2, quote)
            return Const(inner)
        if token.kind == "name":
            self.advance()
            if _is_variable_name(token.text):
                return Var(token.text)
            return Const(token.text)
        raise DatalogError(f"expected a term, found {token.text!r}")


def parse_datalog(text: str) -> Program:
    """Parse a Datalog program (a sequence of rules and facts)."""
    return _DatalogParser(_tokenize(text)).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single Datalog rule."""
    parser = _DatalogParser(_tokenize(text))
    rule = parser.parse_rule()
    if parser.peek().kind != "eof":
        raise DatalogError(f"unexpected trailing input {parser.peek().text!r}")
    return rule
