"""Predicate dependency analysis and stratification.

Stratified negation requires that no predicate depends on itself through a
negation.  The stratification assigns each IDB predicate a stratum number
such that positive dependencies stay within or below the stratum and negative
dependencies point strictly below; evaluation then proceeds stratum by
stratum.
"""

from __future__ import annotations

from repro.datalog.ast import DatalogError, Literal, Program

#: Dependency graph: head predicate -> set of (body predicate, negated?) edges.
DependencyGraph = dict[str, set[tuple[str, bool]]]


def dependency_graph(program: Program) -> DependencyGraph:
    """Build the predicate dependency graph of a program."""
    graph: DependencyGraph = {}
    for rule in program.rules:
        head = rule.head.predicate.lower()
        edges = graph.setdefault(head, set())
        for item in rule.body:
            if isinstance(item, Literal):
                edges.add((item.predicate.lower(), item.negated))
    return graph


def stratify(program: Program) -> dict[str, int]:
    """Assign a stratum number to every predicate.

    EDB predicates get stratum 0.  Raises :class:`DatalogError` if the
    program is not stratifiable (a predicate depends negatively on itself,
    directly or transitively).
    """
    graph = dependency_graph(program)
    idb = set(program.idb_predicates())
    strata: dict[str, int] = {}
    for rule in program.rules:
        strata.setdefault(rule.head.predicate.lower(), 1)
        for item in rule.body:
            if isinstance(item, Literal):
                name = item.predicate.lower()
                strata.setdefault(name, 1 if name in idb else 0)

    n_predicates = len(strata)
    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > n_predicates * n_predicates + 2:
            raise DatalogError("program is not stratifiable (negative cycle)")
        for head, edges in graph.items():
            for body_predicate, negated in edges:
                required = strata.get(body_predicate, 0) + (1 if negated else 0)
                if strata.get(head, 1) < required:
                    strata[head] = required
                    changed = True
                    if strata[head] > n_predicates:
                        raise DatalogError("program is not stratifiable (negative cycle)")
    return strata


def is_stratifiable(program: Program) -> bool:
    """True iff the program admits a stratification."""
    try:
        stratify(program)
        return True
    except DatalogError:
        return False


def evaluation_order(program: Program) -> list[list[str]]:
    """IDB predicates grouped by stratum, lowest first."""
    strata = stratify(program)
    idb = program.idb_predicates()
    by_stratum: dict[int, list[str]] = {}
    for predicate in idb:
        by_stratum.setdefault(strata.get(predicate, 1), []).append(predicate)
    return [by_stratum[k] for k in sorted(by_stratum)]
