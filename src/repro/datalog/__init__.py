"""Datalog with stratified negation: AST, parser, stratification, evaluation."""

from repro.datalog.ast import (
    BuiltinComparison,
    DatalogError,
    Literal,
    Program,
    Rule,
    make_program,
)
from repro.datalog.evaluate import evaluate_datalog, evaluate_program
from repro.datalog.parser import parse_datalog, parse_rule
from repro.datalog.stratify import (
    dependency_graph,
    evaluation_order,
    is_stratifiable,
    stratify,
)

__all__ = [
    "BuiltinComparison",
    "DatalogError",
    "Literal",
    "Program",
    "Rule",
    "dependency_graph",
    "evaluate_datalog",
    "evaluate_program",
    "evaluation_order",
    "is_stratifiable",
    "make_program",
    "parse_datalog",
    "parse_rule",
    "stratify",
]
