"""Bottom-up evaluation of Datalog programs with stratified negation.

EDB predicates are the relations of the database (matched case-insensitively
by name).  Evaluation proceeds stratum by stratum; within a stratum, rules
are applied to a fixpoint (naive iteration — the programs in this project are
small and mostly non-recursive, so the simplicity is worth more than the
semi-naive speedup, and the benchmark harness still exercises recursion).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema
from repro.data.types import DataType, infer_type
from repro.datalog.ast import (
    BuiltinComparison,
    DatalogError,
    Literal,
    Program,
    Rule,
)
from repro.datalog.parser import parse_datalog
from repro.datalog.stratify import evaluation_order, stratify
from repro.logic.terms import Const, Term, Var

#: Facts per predicate.
FactStore = dict[str, set[tuple]]
Env = dict[str, Any]


def _edb_facts(db: Database) -> FactStore:
    return {rel.schema.name.lower(): set(rel.distinct_rows()) for rel in db}


def _term_value(term: Term, env: Env) -> Any:
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return env.get(term.name, _UNBOUND)
    raise DatalogError(f"not a term: {term!r}")


class _Unbound:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unbound>"


_UNBOUND = _Unbound()


def _compare(left: Any, op: str, right: Any) -> bool:
    if isinstance(left, _Unbound) or isinstance(right, _Unbound):
        raise DatalogError("comparison over unbound variable (unsafe rule)")
    if left is None or right is None:
        return False
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise DatalogError(f"unknown comparison {op!r}")  # pragma: no cover


def _match_literal(literal: Literal, facts: FactStore, env: Env) -> Iterator[Env]:
    """Yield extensions of ``env`` matching the (positive) literal against facts."""
    rows = facts.get(literal.predicate.lower(), set())
    for row in rows:
        if len(row) != literal.arity:
            continue
        extended = dict(env)
        consistent = True
        for term, value in zip(literal.terms, row):
            if isinstance(term, Const):
                if term.value != value:
                    consistent = False
                    break
            else:
                bound = extended.get(term.name, _UNBOUND)
                if isinstance(bound, _Unbound):
                    extended[term.name] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def _literal_holds(literal: Literal, facts: FactStore, env: Env) -> bool:
    """Check a fully bound (typically negated) literal against the facts."""
    row = []
    for term in literal.terms:
        value = _term_value(term, env)
        if isinstance(value, _Unbound):
            raise DatalogError(
                f"negated literal {literal.predicate} has unbound variables (unsafe rule)"
            )
        row.append(value)
    return tuple(row) in facts.get(literal.predicate.lower(), set())


def _apply_rule(rule: Rule, facts: FactStore) -> set[tuple]:
    """All head facts derivable from ``facts`` by one application of ``rule``."""
    derived: set[tuple] = set()

    positive = rule.positive_literals()
    checks = [b for b in rule.body if not (isinstance(b, Literal) and not b.negated)]

    def extend(index: int, env: Env) -> None:
        if index == len(positive):
            for item in checks:
                if isinstance(item, Literal):
                    if _literal_holds(item, facts, env):
                        return
                elif isinstance(item, BuiltinComparison):
                    if not _compare(_term_value(item.left, env), item.op,
                                    _term_value(item.right, env)):
                        return
            head_row = []
            for term in rule.head.terms:
                value = _term_value(term, env)
                if isinstance(value, _Unbound):
                    raise DatalogError(
                        f"head variable {term} of {rule.head.predicate} is unbound"
                    )
                head_row.append(value)
            derived.add(tuple(head_row))
            return
        for extended in _match_literal(positive[index], facts, env):
            extend(index + 1, extended)

    extend(0, {})
    return derived


def evaluate_program(program: "Program | str", db: Database) -> FactStore:
    """Compute all IDB facts of ``program`` over ``db`` (stratified fixpoint)."""
    if isinstance(program, str):
        program = parse_datalog(program)
    problems = program.check_safety()
    if problems:
        raise DatalogError("unsafe program: " + "; ".join(problems))

    facts = _edb_facts(db)
    strata = stratify(program)

    for stratum_predicates in evaluation_order(program):
        stratum_rules = [
            rule for rule in program.rules
            if rule.head.predicate.lower() in stratum_predicates
        ]
        for predicate in stratum_predicates:
            facts.setdefault(predicate.lower(), set())
        changed = True
        while changed:
            changed = False
            for rule in stratum_rules:
                new_facts = _apply_rule(rule, facts)
                target = facts.setdefault(rule.head.predicate.lower(), set())
                before = len(target)
                target |= new_facts
                if len(target) != before:
                    changed = True
    del strata
    return facts


def evaluate_datalog(program: "Program | str", db: Database,
                     query: str = "ans") -> Relation:
    """Evaluate a program and return the relation for ``query`` (default ``ans``)."""
    if isinstance(program, str):
        program = parse_datalog(program)
    facts = evaluate_program(program, db)
    key = query.lower()
    if key not in facts:
        raise DatalogError(f"program defines no predicate {query!r}")
    rows = sorted(facts[key], key=lambda r: tuple(str(v) for v in r))
    names = _output_names(program, query, rows)
    return _build_relation(names, list(rows))


def _output_names(program: Program, query: str, rows: list[tuple]) -> list[str]:
    arity = len(rows[0]) if rows else None
    for rule in program.rules_for(query):
        names = []
        ok = True
        for term in rule.head.terms:
            if isinstance(term, Var):
                names.append(term.name.lower())
            else:
                ok = False
                break
        if ok and names and (arity is None or len(names) == arity):
            return names
    if arity is None:
        arity = 1
    return [f"col{i + 1}" for i in range(arity)]


def _build_relation(names: list[str], rows: list[tuple]) -> Relation:
    unique: list[str] = []
    counts: dict[str, int] = {}
    for name in names:
        if name in counts:
            counts[name] += 1
            unique.append(f"{name}_{counts[name]}")
        else:
            counts[name] = 1
            unique.append(name)
    attributes = []
    for i, name in enumerate(unique):
        dtype = DataType.STRING
        for row in rows:
            if row[i] is not None:
                try:
                    dtype = infer_type(row[i])
                except ValueError:
                    dtype = DataType.STRING
                break
        attributes.append(Attribute(name, dtype))
    return Relation(RelationSchema("result", tuple(attributes)), rows, validate=False)
