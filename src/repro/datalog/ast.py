"""Non-recursive Datalog with stratified negation: rules and programs.

The tutorial uses Datalog as one of its five textual languages because its
dataflow-style, multi-rule decomposition of universal quantification (the
"division pattern") is exactly what QBE mimics with temporary relations.  The
engine here actually supports recursion and full stratified negation — the
tutorial's scope (non-recursive programs) is a subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.logic.terms import Const, Term, Var


class DatalogError(Exception):
    """Raised for malformed or unsafe Datalog programs."""


@dataclass(frozen=True)
class Literal:
    """A (possibly negated) predicate literal ``[not] p(t1, ..., tn)``."""

    predicate: str
    terms: tuple[Term, ...] = ()
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "predicate", self.predicate)
        object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[Var]:
        out = []
        for term in self.terms:
            if isinstance(term, Var) and term not in out:
                out.append(term)
        return out

    def __str__(self) -> str:
        inner = ", ".join(_term_text(t) for t in self.terms)
        text = f"{self.predicate}({inner})"
        return f"not {text}" if self.negated else text


@dataclass(frozen=True)
class BuiltinComparison:
    """A comparison literal ``t1 op t2`` used in rule bodies."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        op = {"!=": "<>", "==": "="}.get(self.op, self.op)
        object.__setattr__(self, "op", op)
        if op not in ("=", "<>", "<", "<=", ">", ">="):
            raise DatalogError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> list[Var]:
        return [t for t in (self.left, self.right) if isinstance(t, Var)]

    def __str__(self) -> str:
        return f"{_term_text(self.left)} {self.op} {_term_text(self.right)}"


BodyItem = Literal | BuiltinComparison


@dataclass(frozen=True)
class Rule:
    """``head :- body``; a rule with an empty body is a fact."""

    head: Literal
    body: tuple[BodyItem, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise DatalogError("a rule head cannot be negated")

    @property
    def is_fact(self) -> bool:
        return not self.body

    def positive_literals(self) -> list[Literal]:
        return [b for b in self.body if isinstance(b, Literal) and not b.negated]

    def negative_literals(self) -> list[Literal]:
        return [b for b in self.body if isinstance(b, Literal) and b.negated]

    def comparisons(self) -> list[BuiltinComparison]:
        return [b for b in self.body if isinstance(b, BuiltinComparison)]

    def check_safety(self) -> list[str]:
        """Range-restriction violations (empty list = safe rule)."""
        bound = {v.name for lit in self.positive_literals() for v in lit.variables()}
        problems = []
        for var in self.head.variables():
            if var.name not in bound:
                problems.append(
                    f"head variable {var.name} of {self.head.predicate} is not bound "
                    "by a positive body literal"
                )
        for literal in self.negative_literals():
            for var in literal.variables():
                if var.name not in bound:
                    problems.append(
                        f"variable {var.name} in negated literal {literal.predicate} "
                        "is not bound by a positive body literal"
                    )
        for comparison in self.comparisons():
            for var in comparison.variables():
                if var.name not in bound:
                    problems.append(
                        f"variable {var.name} in comparison {comparison} "
                        "is not bound by a positive body literal"
                    )
        return problems

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        body = ", ".join(str(b) for b in self.body)
        return f"{self.head} :- {body}."


@dataclass(frozen=True)
class Program:
    """A Datalog program: an ordered list of rules (and facts)."""

    rules: tuple[Rule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def idb_predicates(self) -> list[str]:
        """Predicates defined by some rule head (intensional predicates)."""
        out: list[str] = []
        for rule in self.rules:
            name = rule.head.predicate.lower()
            if name not in out:
                out.append(name)
        return out

    def edb_predicates(self) -> list[str]:
        """Predicates used only in bodies (extensional / database predicates)."""
        idb = set(self.idb_predicates())
        out: list[str] = []
        for rule in self.rules:
            for literal in rule.body:
                if isinstance(literal, Literal) and literal.predicate.lower() not in idb:
                    name = literal.predicate.lower()
                    if name not in out:
                        out.append(name)
        return out

    def rules_for(self, predicate: str) -> list[Rule]:
        return [r for r in self.rules if r.head.predicate.lower() == predicate.lower()]

    def check_safety(self) -> list[str]:
        problems = []
        for rule in self.rules:
            problems.extend(rule.check_safety())
        return problems

    def is_recursive(self) -> bool:
        """True iff some IDB predicate (transitively) depends on itself."""
        from repro.datalog.stratify import dependency_graph

        graph = dependency_graph(self)
        # Depth-first search for a cycle among IDB predicates.
        visiting: set[str] = set()
        visited: set[str] = set()

        def has_cycle(node: str) -> bool:
            if node in visiting:
                return True
            if node in visited:
                return False
            visiting.add(node)
            for successor, _negated in graph.get(node, ()):
                if has_cycle(successor):
                    return True
            visiting.discard(node)
            visited.add(node)
            return False

        return any(has_cycle(p) for p in self.idb_predicates())

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)


def _term_text(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        if isinstance(term.value, str):
            escaped = term.value.replace("'", "''")
            return f"'{escaped}'"
        return str(term.value)
    raise DatalogError(f"not a term: {term!r}")


def make_program(rules: Iterable[Rule]) -> Program:
    """Build a program and raise on safety violations."""
    program = Program(tuple(rules))
    problems = program.check_safety()
    if problems:
        raise DatalogError("unsafe program: " + "; ".join(problems))
    return program
