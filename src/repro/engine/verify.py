"""Static verification of logical plans (the plan-IR type/shape checker).

Four rewrite layers produce plans — the five-language lowering, the
rule-based optimizer, the insert-delta rewriting, and the scatter-gather
distribution analysis — and five backends execute them.  Before this module
the only guard against a subtly-wrong rewrite was differential fuzzing *at
execution time*; :func:`verify_plan` moves that check to rewrite time by
proving, bottom-up over the plan tree, that

* every column reference (``Col``, positional pick, join key, sort key)
  resolves against its input's output columns;
* scalar/predicate operand types are consistent with the executors'
  runtime semantics (numeric cross-compares, string with string, bool with
  bool; ``+`` adds numbers or concatenates strings; SUM/AVG need numeric
  inputs) — column types come from the database schema when one is given,
  and a column whose type cannot be trusted statically degrades to
  *unknown*, which every check accepts (the verifier never rejects a plan
  the executors would run);
* structural invariants hold: projection names are unique (renames stay
  bijective), aggregates appear only in ``AggregateP.aggregates`` and never
  nest, ``DeltaScanP`` windows are anchored when execution is imminent,
  scans match their relation's arity, semi/anti joins have well-typed keys.

:func:`verify_sharded_plan` extends this to scatter-gather compilations: it
*independently re-derives* the shard-key equivalence classes over the
scatter subplan (it shares no code with the distribution analysis in
:mod:`repro.engine.sharded`) and certifies that every duplicate-sensitive
operator in the scatter is co-partitioned, that broadcast reads use their
aliases, that the partial→final aggregation split is sound (AVG = SUM +
COUNT pairing, trailing ``__rows`` presence counter, layout positions), and
that the gather seed matches the scatter's output width.

Failures raise :class:`PlanVerificationError` naming the offending node and
the rewrite rule that produced the plan.  The hooks in ``optimize`` /
``delta`` / ``shard_plan`` call :func:`maybe_verify` /
:func:`maybe_verify_sharded`, which are gated by the ``REPRO_VERIFY_PLANS``
environment variable (off by default in production, on by default under the
test suite) and keep process-wide pass/fail counters surfaced through
:func:`verification_counts` and ``ShardedBackend.execution_counts()``.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Mapping, Sequence

from repro.data.database import Database
from repro.data.schema import RelationSchema
from repro.data.types import DataType
from repro.expr import ast as e
from repro.engine.plan import (
    AggregateP,
    DeltaScanP,
    DistinctP,
    DivideP,
    FilterP,
    JoinP,
    Plan,
    PlanError,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
    resolve_column,
)

__all__ = [
    "PlanVerificationError",
    "maybe_verify",
    "maybe_verify_sharded",
    "maybe_verify_sharded_view",
    "reset_verification_counts",
    "verification_counts",
    "verification_enabled",
    "verify_plan",
    "verify_sharded_plan",
    "verify_sharded_view_plan",
]


class PlanVerificationError(PlanError):
    """A plan failed static verification.

    ``node`` is the offending plan node; ``rule`` names the rewrite step
    (or construction site) that produced the plan.  Subclassing
    :class:`~repro.engine.plan.PlanError` keeps the serving pipeline's
    interpreter fallback intact: a plan the verifier rejects is handled
    exactly like one the executor rejects.
    """

    def __init__(self, message: str, *, node: Plan | None = None,
                 rule: str | None = None) -> None:
        detail = _describe(node) if node is not None else "plan"
        prefix = f"[{rule}] " if rule else ""
        super().__init__(f"{prefix}{detail}: {message}")
        self.node = node
        self.rule = rule


def _describe(node: Plan) -> str:
    label = type(node).__name__
    if isinstance(node, (ScanP, DeltaScanP)):
        return f"{label}({node.relation})"
    return label


# ---------------------------------------------------------------------------
# The type lattice
# ---------------------------------------------------------------------------
#
# Types are the strings "int" / "float" / "string" / "bool", with ``None``
# as *unknown* (top).  Unknown is infectious and every check accepts it:
# the verifier only rejects what it can prove wrong.

_NUMERIC = ("int", "float")

_DTYPE_TO_TYPE = {
    DataType.INT: "int",
    DataType.FLOAT: "float",
    DataType.STRING: "string",
    DataType.BOOL: "bool",
}

#: Scalar (non-aggregate) functions the executors implement, with their
#: minimum/maximum argument counts.
_SCALAR_FUNCTIONS = {
    "abs": (1, 1),
    "lower": (1, 1),
    "upper": (1, 1),
    "length": (1, 1),
    "coalesce": (1, None),
}


def _comparable(a: "str | None", b: "str | None") -> bool:
    """Mirror of the runtime ``_compare`` type rules (unknown passes)."""
    if a is None or b is None or a == b:
        return True
    return a in _NUMERIC and b in _NUMERIC


def _unify(a: "str | None", b: "str | None") -> "str | None":
    if a == b:
        return a
    if a in _NUMERIC and b in _NUMERIC:
        return "float"
    return None


def _const_type(value: Any) -> "str | None":
    if value is None:
        return None  # NULL: compares as unknown (3-valued logic)
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "string"
    return None


def _untyped_schema(schema: RelationSchema) -> bool:
    """The Datalog fixpoint's generic all-string working schema.

    IDB relations are materialized with ``validate=False`` under columns
    ``col1..colN`` declared STRING while actually holding whatever the
    rules derived; their declared types must not be trusted.
    """
    return all(a.dtype is DataType.STRING and a.name == f"col{i + 1}"
               for i, a in enumerate(schema.attributes))


SchemaLookup = Callable[[str], "RelationSchema | None"]


def _schema_lookup(db: "Database | Mapping[str, RelationSchema] | None"
                   ) -> SchemaLookup:
    if db is None:
        return lambda name: None
    if isinstance(db, Database):
        def lookup(name: str) -> "RelationSchema | None":
            try:
                return db.relation(name).schema
            except Exception:
                return None
        return lookup
    mapping = {key.lower(): value for key, value in db.items()}
    return lambda name: mapping.get(name.lower())


# ---------------------------------------------------------------------------
# Expression typing
# ---------------------------------------------------------------------------

_POSITION_COL: "type | None" = None


def _position_col() -> type:
    global _POSITION_COL
    if _POSITION_COL is None:
        from repro.engine.lower import _PositionCol
        _POSITION_COL = _PositionCol
    return _POSITION_COL


class _Checker:
    """One verification pass: schema lookup + error context + memo."""

    def __init__(self, lookup: SchemaLookup, rule: "str | None",
                 require_anchored: bool) -> None:
        self.lookup = lookup
        self.rule = rule
        self.require_anchored = require_anchored
        self.memo: dict[int, tuple["str | None", ...]] = {}

    def fail(self, node: Plan, message: str) -> PlanVerificationError:
        return PlanVerificationError(message, node=node, rule=self.rule)

    # -- expressions -------------------------------------------------------

    def resolve(self, node: Plan, columns: tuple[str, ...],
                types: "tuple[str | None, ...]", col: e.Col) -> "str | None":
        try:
            return types[resolve_column(columns, col.name, col.qualifier)]
        except PlanError as exc:
            raise self.fail(node, f"unresolved column reference "
                            f"{col.qualified()!r}: {exc}") from exc

    def expr_type(self, expr: e.Expr, node: Plan, columns: tuple[str, ...],
                  types: "tuple[str | None, ...]") -> "str | None":
        """The static type of ``expr`` over an input typed ``types``.

        Raises on unresolved columns, aggregate calls outside an
        ``AggregateP``, unknown functions, and provably ill-typed operands.
        Predicates type as ``"bool"``; opaque subquery nodes as unknown.
        """
        if isinstance(expr, e.Col):
            return self.resolve(node, columns, types, expr)
        if isinstance(expr, _position_col()):
            position = expr.position
            if not 0 <= position < len(columns):
                raise self.fail(node, f"positional column pick {position} out "
                                f"of range for {len(columns)} columns")
            return types[position]
        if isinstance(expr, e.BoolConst):
            return "bool"
        if isinstance(expr, e.Const):
            return _const_type(expr.value)
        if isinstance(expr, e.Neg):
            inner = self.expr_type(expr.operand, node, columns, types)
            if inner is not None and inner not in _NUMERIC:
                raise self.fail(node, f"negation of non-numeric "
                                f"({inner}) operand")
            return inner
        if isinstance(expr, e.BinOp):
            return self._binop_type(expr, node, columns, types)
        if isinstance(expr, e.Comparison):
            left = self.expr_type(expr.left, node, columns, types)
            right = self.expr_type(expr.right, node, columns, types)
            if not _comparable(left, right):
                raise self.fail(node, f"type-inconsistent comparison: "
                                f"{left} {expr.op} {right}")
            return "bool"
        if isinstance(expr, (e.And, e.Or)):
            for operand in expr.operands:
                self.expr_type(operand, node, columns, types)
            return "bool"
        if isinstance(expr, e.Not):
            self.expr_type(expr.operand, node, columns, types)
            return "bool"
        if isinstance(expr, e.IsNull):
            self.expr_type(expr.operand, node, columns, types)
            return "bool"
        if isinstance(expr, e.InList):
            operand = self.expr_type(expr.operand, node, columns, types)
            for item in expr.items:
                item_type = self.expr_type(item, node, columns, types)
                if not _comparable(operand, item_type):
                    raise self.fail(node, f"type-inconsistent IN list: "
                                    f"{operand} vs {item_type}")
            return "bool"
        if isinstance(expr, e.Between):
            operand = self.expr_type(expr.operand, node, columns, types)
            for bound in (expr.low, expr.high):
                bound_type = self.expr_type(bound, node, columns, types)
                if not _comparable(operand, bound_type):
                    raise self.fail(node, f"type-inconsistent BETWEEN: "
                                    f"{operand} vs {bound_type}")
            return "bool"
        if isinstance(expr, e.Like):
            self.expr_type(expr.operand, node, columns, types)
            return "bool"
        if isinstance(expr, e.FuncCall):
            if expr.is_aggregate:
                raise self.fail(node, f"aggregate {expr.name}() outside an "
                                f"aggregation operator")
            return self._scalar_call_type(expr, node, columns, types)
        if isinstance(expr, e.Star):
            raise self.fail(node, "* is only meaningful inside COUNT(*)")
        if isinstance(expr, (e.Exists, e.InSubquery, e.QuantifiedComparison,
                             e.ScalarSubquery)):
            # Opaque subquery nodes: lowered away before execution (the
            # dependent-join compilation) or rejected by the executor —
            # nothing to prove statically here.
            return None if isinstance(expr, e.ScalarSubquery) else "bool"
        raise self.fail(node, f"unknown expression node "
                        f"{type(expr).__name__}")

    def _binop_type(self, expr: e.BinOp, node: Plan, columns: tuple[str, ...],
                    types: "tuple[str | None, ...]") -> "str | None":
        left = self.expr_type(expr.left, node, columns, types)
        right = self.expr_type(expr.right, node, columns, types)
        if expr.op == "+" and left == "string" and right == "string":
            return "string"  # runtime + concatenates strings
        for side in (left, right):
            if side is not None and side not in _NUMERIC:
                raise self.fail(node, f"arithmetic {expr.op!r} on "
                                f"non-numeric ({side}) operand")
        if expr.op == "/":
            return "float"
        if left == "float" or right == "float":
            return "float"
        if left is None or right is None:
            return None
        return "int"

    def _scalar_call_type(self, expr: e.FuncCall, node: Plan,
                          columns: tuple[str, ...],
                          types: "tuple[str | None, ...]") -> "str | None":
        bounds = _SCALAR_FUNCTIONS.get(expr.name)
        if bounds is None:
            raise self.fail(node, f"unknown function {expr.name!r}")
        low, high = bounds
        if len(expr.args) < low or (high is not None and len(expr.args) > high):
            raise self.fail(node, f"{expr.name}() takes "
                            f"{low if high == low else f'{low}+'} argument(s), "
                            f"got {len(expr.args)}")
        arg_types = [self.expr_type(a, node, columns, types)
                     for a in expr.args]
        if expr.name == "abs":
            if arg_types[0] is not None and arg_types[0] not in _NUMERIC:
                raise self.fail(node, f"abs() of non-numeric "
                                f"({arg_types[0]}) operand")
            return arg_types[0]
        if expr.name in ("lower", "upper"):
            return "string"
        if expr.name == "length":
            return "int"
        unified = arg_types[0]  # coalesce
        for arg_type in arg_types[1:]:
            unified = _unify(unified, arg_type)
        return unified

    def predicate(self, expr: e.Expr, node: Plan, columns: tuple[str, ...],
                  types: "tuple[str | None, ...]") -> None:
        """Check a condition: well-typed and statically bool-compatible."""
        result = self.expr_type(expr, node, columns, types)
        if result is not None and result != "bool":
            raise self.fail(node, f"condition has non-boolean type {result}")

    def aggregate_type(self, call: e.FuncCall, node: Plan,
                       columns: tuple[str, ...],
                       types: "tuple[str | None, ...]") -> "str | None":
        if not call.is_aggregate:
            raise self.fail(node, f"{call.name}() is not an aggregate "
                            f"function")
        if call.name == "count" and len(call.args) == 1 \
                and isinstance(call.args[0], e.Star):
            return "int"
        if len(call.args) != 1:
            raise self.fail(node, f"aggregate {call.name}() takes exactly "
                            f"one argument, got {len(call.args)}")
        if e.contains_aggregate(call.args[0]):
            raise self.fail(node, f"nested aggregate inside {call.name}()")
        arg = self.expr_type(call.args[0], node, columns, types)
        if call.name == "count":
            return "int"
        if call.name in ("sum", "avg"):
            if arg is not None and arg not in _NUMERIC:
                raise self.fail(node, f"{call.name}() over non-numeric "
                                f"({arg}) column")
            if call.name == "avg":
                return None if arg is None else "float"
            return arg
        return arg  # min / max keep their operand's type

    # -- plan nodes --------------------------------------------------------

    def check(self, plan: Plan) -> tuple["str | None", ...]:
        cached = self.memo.get(id(plan))
        if cached is not None:
            return cached
        types = self._check(plan)
        if len(types) != len(plan.columns):
            raise self.fail(plan, f"inferred {len(types)} column types for "
                            f"{len(plan.columns)} output columns")
        self.memo[id(plan)] = types
        return types

    def _scan_types(self, plan: "ScanP | DeltaScanP"
                    ) -> tuple["str | None", ...]:
        schema = self.lookup(plan.relation)
        if schema is None:
            return (None,) * len(plan.columns)
        if schema.arity != len(plan.columns):
            raise self.fail(plan, f"scan of {plan.relation!r} expects arity "
                            f"{schema.arity}, plan declares "
                            f"{len(plan.columns)} columns")
        if _untyped_schema(schema):
            return (None,) * len(plan.columns)
        return tuple(_DTYPE_TO_TYPE.get(a.dtype) for a in schema.attributes)

    def _check(self, plan: Plan) -> tuple["str | None", ...]:
        if isinstance(plan, ScanP):
            if not plan.columns:
                raise self.fail(plan, "scan declares no output columns")
            return self._scan_types(plan)
        if isinstance(plan, DeltaScanP):
            if not plan.columns:
                raise self.fail(plan, "delta scan declares no output columns")
            if plan.since is None and self.require_anchored:
                raise self.fail(plan, "unanchored delta-scan template "
                                "(since=None) about to execute")
            if plan.since is not None and plan.since < 0:
                raise self.fail(plan, f"negative version anchor {plan.since}")
            return self._scan_types(plan)
        if isinstance(plan, FilterP):
            types = self.check(plan.input)
            self.predicate(plan.condition, plan, plan.input.columns, types)
            return types
        if isinstance(plan, ProjectP):
            return self._check_project(plan)
        if isinstance(plan, DistinctP):
            return self.check(plan.input)
        if isinstance(plan, JoinP):
            return self._check_join(plan)
        if isinstance(plan, SetOpP):
            return self._check_setop(plan)
        if isinstance(plan, AggregateP):
            return self._check_aggregate(plan)
        if isinstance(plan, DivideP):
            return self._check_divide(plan)
        if isinstance(plan, SortLimitP):
            types = self.check(plan.input)
            for key_expr, _ascending in plan.keys:
                self.expr_type(key_expr, plan, plan.input.columns, types)
            if plan.limit is not None and plan.limit < 0:
                raise self.fail(plan, f"negative LIMIT {plan.limit}")
            return types
        raise self.fail(plan, f"unknown plan node {type(plan).__name__}")

    def _check_project(self, plan: ProjectP) -> tuple["str | None", ...]:
        types = self.check(plan.input)
        seen: dict[str, str] = {}
        for name in plan.names:
            if not name:
                raise self.fail(plan, "empty projection column name")
            lowered = name.lower()
            if lowered in seen:
                raise self.fail(plan, f"projection output names collide on "
                                f"{name!r} (renames must stay bijective)")
            seen[lowered] = name
        return tuple(self.expr_type(expr, plan, plan.input.columns, types)
                     for expr in plan.exprs)

    def _check_join(self, plan: JoinP) -> tuple["str | None", ...]:
        left = self.check(plan.left)
        right = self.check(plan.right)
        for left_key, right_key in zip(plan.left_keys, plan.right_keys):
            left_type = self._key_type(plan, plan.left.columns, left,
                                       left_key, "left")
            right_type = self._key_type(plan, plan.right.columns, right,
                                        right_key, "right")
            if not _comparable(left_type, right_type):
                raise self.fail(plan, f"join keys {left_key!r} ({left_type}) "
                                f"and {right_key!r} ({right_type}) are not "
                                f"comparable")
        if plan.kind in ("semi", "anti"):
            output_columns = plan.left.columns
            output = left
        else:
            output_columns = plan.left.columns + plan.right.columns
            output = left + right
        if plan.residual is not None:
            self.predicate(plan.residual, plan,
                           plan.left.columns + plan.right.columns,
                           left + right)
        assert len(output) == len(output_columns)
        return output

    def _key_type(self, plan: JoinP, columns: tuple[str, ...],
                  types: "tuple[str | None, ...]", key: str,
                  side: str) -> "str | None":
        name, qualifier = _split_column(key)
        try:
            return types[resolve_column(columns, name, qualifier)]
        except PlanError as exc:
            raise self.fail(plan, f"{side} join key {key!r} does not resolve "
                            f"on the {side} input: {exc}") from exc

    def _check_setop(self, plan: SetOpP) -> tuple["str | None", ...]:
        left = self.check(plan.left)
        right = self.check(plan.right)
        out = []
        for position, (left_type, right_type) in enumerate(zip(left, right)):
            if not _comparable(left_type, right_type):
                raise self.fail(plan, f"{plan.op} column {position} pairs "
                                f"incompatible types {left_type} and "
                                f"{right_type}")
            out.append(_unify(left_type, right_type))
        return tuple(out)

    def _check_aggregate(self, plan: AggregateP) -> tuple["str | None", ...]:
        types = self.check(plan.input)
        columns = plan.input.columns
        for group_expr in plan.group_exprs:
            if e.contains_aggregate(group_expr):
                raise self.fail(plan, "aggregate call inside a grouping "
                                "expression")
            self.expr_type(group_expr, plan, columns, types)
        agg_types = []
        for entry in plan.aggregates:
            call, name = entry
            if not isinstance(call, e.FuncCall):
                raise self.fail(plan, f"aggregate entry {name!r} is not a "
                                f"function call")
            agg_types.append(self.aggregate_type(call, plan, columns, types))
        return types + tuple(agg_types)

    def _check_divide(self, plan: DivideP) -> tuple["str | None", ...]:
        left = self.check(plan.left)
        right = self.check(plan.right)
        left_names = [c.lower() for c in plan.left.columns]
        for position, name in enumerate(plan.right.columns):
            dividend = left[left_names.index(name.lower())]
            if not _comparable(dividend, right[position]):
                raise self.fail(plan, f"division column {name!r} pairs "
                                f"incompatible types {dividend} and "
                                f"{right[position]}")
        kept = {c.lower() for c in plan.right.columns}
        return tuple(t for c, t in zip(plan.left.columns, left)
                     if c.lower() not in kept)


def _split_column(column: str) -> tuple[str, "str | None"]:
    if "." in column:
        qualifier, name = column.split(".", 1)
        return name, qualifier
    return column, None


def verify_plan(plan: Plan,
                db: "Database | Mapping[str, RelationSchema] | None" = None,
                *, rule: "str | None" = None,
                require_anchored: bool = False
                ) -> tuple["str | None", ...]:
    """Statically verify ``plan``; return its inferred column types.

    ``db`` (a database or a ``{name: RelationSchema}`` mapping) enables
    scan-arity checks and seeds column types; without it, verification
    covers reference resolution and structure only.  ``require_anchored``
    additionally rejects unanchored :class:`DeltaScanP` templates (used by
    the delta layer right before execution).  Raises
    :class:`PlanVerificationError` naming the offending node and ``rule``.
    """
    return _Checker(_schema_lookup(db), rule, require_anchored).check(plan)


# ---------------------------------------------------------------------------
# Sharded-plan certification
# ---------------------------------------------------------------------------
#
# The distribution analysis in repro.engine.sharded *constructs* scatter
# plans; the code below *re-derives* the shard-key equivalence classes from
# scratch (sharing no helpers with the constructor) and certifies that the
# compiled ShardedPlan is distribution-safe.  An equivalence class is a
# frozenset of output-column positions that provably all carry one shard-key
# component's value; the derived key is one class per component, or None
# when the subtree's outputs are scattered without tracked co-partitioning.


class _ShardDerivation:
    """``(key, scattered)`` for one scatter subtree.

    ``key`` — the re-derived shard-key image (one position class per
    shard-key attribute) or ``None``; ``scattered`` — whether the subtree
    reads any shard-local (non-broadcast) relation.
    """

    __slots__ = ("key", "scattered")

    def __init__(self, key: "tuple | None", scattered: bool) -> None:
        self.key = key
        self.scattered = scattered


def _column_pick(expr: e.Expr, columns: tuple[str, ...]) -> "int | None":
    """The input position a pure column-pick expression reads, else None."""
    if isinstance(expr, _position_col()):
        position = expr.position
        return position if 0 <= position < len(columns) else None
    if isinstance(expr, e.Col):
        try:
            return resolve_column(columns, expr.name, expr.qualifier)
        except PlanError:
            return None
    return None


def _close_key(key: "tuple | None",
               pairs: "list[tuple[int, int]]") -> "tuple | None":
    if key is None or not pairs:
        return key
    classes = [set(component) for component in key]
    changed = True
    while changed:
        changed = False
        for a, b in pairs:
            for component in classes:
                if a in component and b not in component:
                    component.add(b)
                    changed = True
                elif b in component and a not in component:
                    component.add(a)
                    changed = True
    return tuple(frozenset(component) for component in classes)


class _ShardChecker:
    """Re-derives shard-key classes over a scatter subplan and certifies it."""

    def __init__(self, sharded: Any, rule: "str | None",
                 root: Plan, root_prereduced: bool,
                 partial_root: "Plan | None",
                 allow_delta: bool = False) -> None:
        self.sharded = sharded
        self.rule = rule
        self.root = root
        self.root_prereduced = root_prereduced
        self.partial_root = partial_root
        self.allow_delta = allow_delta
        self.broadcast_suffix = _broadcast_suffix()

    def fail(self, node: Plan, message: str) -> PlanVerificationError:
        return PlanVerificationError(message, node=node, rule=self.rule)

    def derive(self, plan: Plan) -> _ShardDerivation:
        if isinstance(plan, ScanP):
            name = plan.relation
            if name.lower().endswith(self.broadcast_suffix):
                return _ShardDerivation(None, False)
            try:
                schema = self.sharded.shard(0).relation(name).schema
                shard_key = self.sharded.shard_key(name.lower())
            except Exception as exc:
                raise self.fail(plan, f"scattered scan of unknown relation "
                                f"{name!r}: {exc}") from exc
            key = tuple(frozenset((schema.index_of(attr),))
                        for attr in shard_key)
            return _ShardDerivation(key, True)
        if isinstance(plan, DeltaScanP):
            # Backend scatter plans execute against the rebuilt merged
            # views, which have no delta logs; view-maintenance scatter
            # plans (``rule="sharded_view"``) execute against the *live*
            # shard-local relations, whose logs are real — a delta window
            # there is a subset of the shard's partition and carries the
            # same shard-key classes as a full scan.  Broadcast aliases are
            # rebuilt merged copies either way: never a valid delta source.
            name = plan.relation
            if name.lower().endswith(self.broadcast_suffix):
                if self.allow_delta and plan.mode == "asof":
                    # The "old state" of an unwritten broadcast alias is its
                    # full current contents — same rows on every shard,
                    # exactly like a broadcast scan.
                    return _ShardDerivation(None, False)
                raise self.fail(plan, "delta window on a broadcast alias "
                                "(rebuilt merged copies have no delta log)")
            if not self.allow_delta:
                raise self.fail(plan, "delta scans cannot appear in a "
                                "scatter subplan (request execution reads "
                                "the merged views, which have no logs)")
            try:
                schema = self.sharded.shard(0).relation(name).schema
                shard_key = self.sharded.shard_key(name.lower())
            except Exception as exc:
                raise self.fail(plan, f"delta scan of unknown relation "
                                f"{name!r}: {exc}") from exc
            key = tuple(frozenset((schema.index_of(attr),))
                        for attr in shard_key)
            return _ShardDerivation(key, True)
        if isinstance(plan, FilterP):
            return self.derive(plan.input)
        if isinstance(plan, ProjectP):
            return self._derive_project(plan)
        if isinstance(plan, DistinctP):
            derived = self.derive(plan.input)
            if derived.scattered and derived.key is None \
                    and not (plan is self.root and self.root_prereduced):
                raise self.fail(plan, "distribution-unsafe scatter: DISTINCT "
                                "over non-co-partitioned input (equal rows "
                                "could straddle shards)")
            return derived
        if isinstance(plan, JoinP):
            return self._derive_join(plan)
        if isinstance(plan, SetOpP):
            return self._derive_setop(plan)
        if isinstance(plan, AggregateP):
            return self._derive_aggregate(plan)
        if isinstance(plan, DivideP):
            return self._derive_divide(plan)
        if isinstance(plan, SortLimitP):
            derived = self.derive(plan.input)
            if derived.scattered:
                raise self.fail(plan, "sort/limit over scattered data "
                                "(per-shard runs would interleave the global "
                                "order; the gather step must replay it)")
            # Broadcast-only subtree: every shard sorts/limits the same
            # whole relation, so the result is identical per shard.
            return derived
        raise self.fail(plan, f"{type(plan).__name__} cannot appear in a "
                        f"scatter subplan")

    def _derive_project(self, plan: ProjectP) -> _ShardDerivation:
        derived = self.derive(plan.input)
        if derived.key is None:
            return derived
        out_positions: dict[int, set[int]] = {}
        for j, expr in enumerate(plan.exprs):
            position = _column_pick(expr, plan.input.columns)
            if position is not None:
                out_positions.setdefault(position, set()).add(j)
        mapped = []
        for component in derived.key:
            survivors: set[int] = set()
            for position in component:
                survivors.update(out_positions.get(position, ()))
            if not survivors:
                return _ShardDerivation(None, derived.scattered)
            mapped.append(frozenset(survivors))
        return _ShardDerivation(tuple(mapped), derived.scattered)

    def _equi_pairs(self, plan: JoinP) -> list[tuple[int, int]]:
        pairs = []
        for left_key, right_key in zip(plan.left_keys, plan.right_keys):
            try:
                pairs.append(
                    (resolve_column(plan.left.columns,
                                    *_split_column(left_key)),
                     resolve_column(plan.right.columns,
                                    *_split_column(right_key))))
            except PlanError as exc:
                raise self.fail(plan, f"join key does not resolve: "
                                f"{exc}") from exc
        return pairs

    def _derive_join(self, plan: JoinP) -> _ShardDerivation:
        left = self.derive(plan.left)
        if plan.kind in ("semi", "anti"):
            right = self.derive(plan.right)
            if right.scattered:
                raise self.fail(plan, f"distribution-unsafe scatter: "
                                f"{plan.kind} join's right side must be "
                                f"broadcast, not scattered")
            return left
        right = self.derive(plan.right)
        width = len(plan.left.columns)
        pairs = self._equi_pairs(plan)
        output_pairs = [(lp, rp + width) for lp, rp in pairs]
        if left.scattered and right.scattered:
            key = self._co_partitioned_key(plan, pairs, left.key, right.key,
                                           width)
            return _ShardDerivation(_close_key(key, output_pairs), True)
        if left.scattered or right.scattered:
            if left.scattered:
                key = left.key
            else:
                key = None if right.key is None else tuple(
                    frozenset(position + width for position in component)
                    for component in right.key)
            return _ShardDerivation(_close_key(key, output_pairs), True)
        return _ShardDerivation(None, False)

    def _co_partitioned_key(self, plan: JoinP, pairs: list[tuple[int, int]],
                            left_key: "tuple | None",
                            right_key: "tuple | None",
                            width: int) -> tuple:
        if left_key is None or right_key is None \
                or len(left_key) != len(right_key) or not pairs or not all(
                    any(lp in lcomp and rp in rcomp for lp, rp in pairs)
                    for lcomp, rcomp in zip(left_key, right_key)):
            raise self.fail(plan, "distribution-unsafe scatter: both join "
                            "inputs are scattered but the equi-keys do not "
                            "pair the shard keys component by component")
        return tuple(
            lcomp | frozenset(rp + width for rp in rcomp)
            for lcomp, rcomp in zip(left_key, right_key))

    def _derive_setop(self, plan: SetOpP) -> _ShardDerivation:
        left = self.derive(plan.left)
        right = self.derive(plan.right)
        scattered = left.scattered or right.scattered
        aligned: "tuple | None" = None
        if left.key is not None and right.key is not None \
                and len(left.key) == len(right.key):
            shared = tuple(lcomp & rcomp
                           for lcomp, rcomp in zip(left.key, right.key))
            if all(shared):
                aligned = shared
        duplicate_sensitive = plan.op != "union" or plan.distinct
        if duplicate_sensitive and scattered and aligned is None:
            raise self.fail(plan, f"distribution-unsafe scatter: {plan.op} "
                            f"needs both sides co-partitioned on shared "
                            f"positions")
        return _ShardDerivation(aligned, scattered)

    def _derive_aggregate(self, plan: AggregateP) -> _ShardDerivation:
        derived = self.derive(plan.input)
        if plan is self.partial_root:
            # The partial half of a split group-by: the gather-side combine
            # re-groups globally, so per-shard grouping need not be exact.
            return derived
        if derived.scattered:
            grouped: set[int] = set()
            for expr in plan.group_exprs:
                position = _column_pick(expr, plan.input.columns)
                if position is not None:
                    grouped.add(position)
            if derived.key is None \
                    or not all(component & grouped
                               for component in derived.key):
                raise self.fail(plan, "distribution-unsafe scatter: group-by "
                                "does not group on the partition key (a "
                                "group could straddle shards)")
        return derived

    def _derive_divide(self, plan: DivideP) -> _ShardDerivation:
        left = self.derive(plan.left)
        right = self.derive(plan.right)
        if right.scattered:
            raise self.fail(plan, "distribution-unsafe scatter: division's "
                            "divisor must be broadcast")
        if not left.scattered:
            return _ShardDerivation(None, False)
        if left.key is None:
            raise self.fail(plan, "distribution-unsafe scatter: division "
                            "over a non-co-partitioned dividend")
        right_names = {c.lower() for c in plan.right.columns}
        quotient = [i for i, c in enumerate(plan.left.columns)
                    if c.lower() not in right_names]
        mapped = []
        for component in left.key:
            survivors = frozenset(quotient.index(position)
                                  for position in component
                                  if position in quotient)
            if not survivors:
                raise self.fail(plan, "distribution-unsafe scatter: division "
                                "does not partition on the quotient")
            mapped.append(survivors)
        return _ShardDerivation(tuple(mapped), True)


def _broadcast_suffix() -> str:
    from repro.data.sharded import BROADCAST_SUFFIX
    return BROADCAST_SUFFIX.lower()


def _shard_schemas(compiled: Any, sharded: Any) -> dict[str, RelationSchema]:
    """Schemas visible to a scatter subplan: shard-local + broadcast alias."""
    suffix = _broadcast_suffix()
    schemas: dict[str, RelationSchema] = {}
    shard0 = sharded.shard(0)
    for name in compiled.partitioned:
        try:
            schemas[name] = shard0.relation(name).schema
        except Exception:
            continue  # missing relation is reported by the scan check
    for name in compiled.broadcast:
        try:
            base = sharded.relation(name).schema
        except Exception:
            continue
        schemas[name + suffix] = base.renamed(base.name + suffix)
    return schemas


def _check_aggregate_split(checker: "_ShardChecker", compiled: Any) -> None:
    """Certify the partial→final split layout of a split group-by."""
    core, partial = compiled.core, compiled.scatter
    if not isinstance(core, AggregateP) or not isinstance(partial, AggregateP):
        raise checker.fail(compiled.scatter or compiled.plan,
                           "combine step without an aggregate core/partial "
                           "pair")
    if partial.group_exprs != core.group_exprs:
        raise checker.fail(partial, "partial aggregation changes the "
                           "grouping expressions")
    expected: list[tuple[e.FuncCall, str]] = []
    for j, (call, _name) in enumerate(core.aggregates):
        if call.distinct:
            raise checker.fail(partial, f"DISTINCT aggregate "
                               f"{call.name}() cannot be split into "
                               f"partial states")
        if call.name == "avg":
            expected.append((e.FuncCall("sum", call.args), f"__p{j}_sum"))
            expected.append((e.FuncCall("count", call.args), f"__p{j}_cnt"))
        elif call.name in ("count", "sum", "min", "max"):
            expected.append((call, f"__p{j}"))
        else:
            raise checker.fail(partial, f"aggregate {call.name}() has no "
                               f"partial→final combine rule")
    expected.append((e.FuncCall("count", (e.Star(),)), "__rows"))
    actual = list(partial.aggregates)
    if len(actual) != len(expected):
        raise checker.fail(partial, f"partial aggregation emits "
                           f"{len(actual)} states, expected {len(expected)} "
                           f"(including the __rows presence counter)")
    for (want_call, want_name), (got_call, got_name) in zip(expected, actual):
        if got_name != want_name or got_call != want_call:
            if want_name.endswith(("_sum", "_cnt")):
                raise checker.fail(partial, f"mispaired AVG split: expected "
                                   f"{want_call.name}() as {want_name!r}, "
                                   f"got {got_call.name}() as {got_name!r} "
                                   f"(AVG must split into SUM + COUNT)")
            raise checker.fail(partial, f"partial state {got_name!r} does "
                               f"not match the original aggregate "
                               f"({want_call.name}() as {want_name!r})")


def verify_sharded_plan(compiled: Any, sharded: Any,
                        *, rule: "str | None" = "shard_plan") -> None:
    """Certify one compiled :class:`~repro.engine.sharded.ShardedPlan`.

    Verifies the scatter subplan like any plan (against the shard-0 view's
    schemas), independently re-derives the shard-key equivalence classes to
    certify distribution safety, checks the partial→final aggregation
    split layout, and checks gather-seed consistency.  Fallback-mode plans
    verify against the merged view only.
    """
    if compiled.mode == "fallback":
        verify_plan(compiled.plan, sharded, rule=rule)
        return
    scatter, core = compiled.scatter, compiled.core
    checker = _ShardChecker(sharded, rule, scatter,
                            compiled.prereduced,
                            scatter if compiled.combine is not None else None)
    if scatter is None or core is None:
        raise checker.fail(compiled.plan, f"{compiled.mode} plan without a "
                           f"scatter/core pair")
    verify_plan(scatter, _shard_schemas(compiled, sharded), rule=rule)
    derived = checker.derive(scatter)
    if not derived.scattered:
        raise checker.fail(scatter, "scatter subplan reads no shard-local "
                           "relation (should have compiled to fallback)")
    if compiled.combine is not None:
        _check_aggregate_split(checker, compiled)
    seed = compiled.gather if compiled.gather is not None else core
    if not any(node == seed for node in compiled.plan.walk()):
        raise checker.fail(seed, "gather seed is not a node of the original "
                           "plan (finishers could not replay)")
    produced = core.columns if compiled.combine is not None else scatter.columns
    if len(produced) != len(seed.columns):
        raise checker.fail(seed, f"gather seed expects "
                           f"{len(seed.columns)} columns but the scatter "
                           f"side produces {len(produced)}")
    if compiled.mode == "single":
        index = compiled.shard_index
        if index is None or not 0 <= index < sharded.n_shards:
            raise checker.fail(scatter, f"routed shard index {index!r} out "
                               f"of range for {sharded.n_shards} shards")


def verify_sharded_view_plan(compiled: Any, sharded: Any,
                             *, rule: "str | None" = "sharded_view") -> None:
    """Certify one :class:`~repro.engine.sharded.ShardedViewPlan`.

    Shard-aware view maintenance executes its scatter plans against the
    **live** shard-local relations (not the rebuilt merged views), so —
    unlike request-time scatter plans — its delta-term plans legitimately
    contain delta scans.  This certifies:

    * the maintained scatter plan type-checks against the shard-local +
      broadcast-alias schemas and reads at least one shard-local relation;
    * the independently re-derived distribution is sound (per-shard DISTINCT
      pre-reductions and partial aggregates are exempt from the
      co-partitioning requirement — their gather re-reduces globally);
    * a split aggregate's partial layout matches the original's exactly
      (AVG = SUM + COUNT, trailing ``__rows`` presence counter);
    * every **delta-term scatter plan** whose delta window targets a
      shard-local relation derives soundly too, with asof windows on
      broadcast aliases accepted and delta windows on them rejected
      (broadcast terms are compiled but must never activate — a broadcast
      write re-initializes the per-shard state instead).
    """
    from repro.engine.delta import (
        delta_terms,
        hoist_projections,
        term_delta_relation,
    )

    scatter, core = compiled.scatter, compiled.core
    checker = _ShardChecker(
        sharded, rule, scatter,
        root_prereduced=compiled.kind == "distinct",
        partial_root=scatter if compiled.combine is not None else None,
        allow_delta=True)
    schemas = _shard_schemas(compiled, sharded)
    verify_plan(scatter, schemas, rule=rule)
    derived = checker.derive(scatter)
    if not derived.scattered:
        raise checker.fail(scatter, "view scatter plan reads no shard-local "
                           "relation (should have degraded to rebuild)")
    if compiled.combine is not None:
        _check_aggregate_split(checker, compiled)
    elif compiled.kind == "aggregate":
        raise checker.fail(scatter, "aggregate view core compiled without a "
                           "partial→final combine")
    suffix = _broadcast_suffix()
    for term in delta_terms(hoist_projections(compiled.delta_input)):
        if term_delta_relation(term).endswith(suffix):
            # Broadcast-anchored terms never activate (the maintainer
            # re-initializes on broadcast writes); their plans were already
            # type-checked at construction by the ``delta_terms`` rule.
            continue
        verify_plan(term, schemas, rule=rule)
        checker.derive(term)


# ---------------------------------------------------------------------------
# Debug-mode hooks and counters
# ---------------------------------------------------------------------------

_COUNT_LOCK = threading.Lock()
_COUNTS = {"plans_verified": 0, "plans_failed": 0}


def verification_enabled() -> bool:
    """Whether the ``REPRO_VERIFY_PLANS`` debug hooks are active."""
    flag = os.environ.get("REPRO_VERIFY_PLANS", "").strip().lower()
    return flag not in ("", "0", "off", "false", "no")


def verification_counts() -> dict[str, int]:
    """Process-wide ``{"plans_verified": ..., "plans_failed": ...}``."""
    with _COUNT_LOCK:
        return dict(_COUNTS)


def reset_verification_counts() -> None:
    """Zero the pass/fail counters (test isolation)."""
    with _COUNT_LOCK:
        for key in _COUNTS:
            _COUNTS[key] = 0


def _bump(key: str) -> None:
    with _COUNT_LOCK:
        _COUNTS[key] += 1


def maybe_verify(plan: Plan,
                 db: "Database | Mapping[str, RelationSchema] | None" = None,
                 *, rule: "str | None" = None,
                 require_anchored: bool = False) -> Plan:
    """Debug-mode hook: verify ``plan`` when ``REPRO_VERIFY_PLANS`` is on.

    Returns ``plan`` unchanged so rewrite pipelines can chain through it.
    """
    if verification_enabled():
        try:
            verify_plan(plan, db, rule=rule,
                        require_anchored=require_anchored)
        except PlanVerificationError:
            _bump("plans_failed")
            raise
        _bump("plans_verified")
    return plan


def maybe_verify_sharded(compiled: Any, sharded: Any,
                         *, rule: "str | None" = "shard_plan") -> Any:
    """Debug-mode hook for :class:`ShardedPlan` construction."""
    if verification_enabled():
        try:
            verify_sharded_plan(compiled, sharded, rule=rule)
        except PlanVerificationError:
            _bump("plans_failed")
            raise
        _bump("plans_verified")
    return compiled


def maybe_verify_sharded_view(compiled: Any, sharded: Any,
                              *, rule: "str | None" = "sharded_view") -> Any:
    """Debug-mode hook for :class:`ShardedViewPlan` construction."""
    if verification_enabled():
        try:
            verify_sharded_view_plan(compiled, sharded, rule=rule)
        except PlanVerificationError:
            _bump("plans_failed")
            raise
        _bump("plans_verified")
    return compiled
