"""Compiled columnar kernels: numpy lowering of the hot vectorized loops.

The vectorized executor's inner loops — selection predicates, hash-join
probes, DISTINCT dedup, aggregation folds — are Python-level ``for`` loops
over column arrays.  Following the exemplar strategy of lowering one logical
algebra to a faster execution target rather than re-interpreting it, this
module compiles exactly those loop families to numpy columnar operations
when numpy is importable, and **only** when the lowering is provably
bit-identical to the Python semantics:

* a column participates only if its values are homogeneous ``int`` /
  ``float`` / ``str`` (``bool`` is excluded — the reference semantics
  treat bool/int mixes as a type error that the kernel could not raise);
* int/float cross-comparisons engage only when every int involved is
  exactly representable as a float64 (``|v| <= 2**53``), because Python
  compares int-vs-float exactly while numpy converts;
* NaN disables join/group/min-max/distinct kernels (Python dict keys match
  NaN by object identity; numpy never does);
* integer SUM engages only when the accumulator provably fits int64.

String columns are **dictionary encoded**: the encoding's ``values`` array
holds int codes into a sorted ``dictionary`` (numpy ``<U`` order equals
Python ``str`` order — both compare by code point), so string selections,
probes, group-bys and DISTINCT all run on integers.  Multi-key joins pack
per-column codes into one int64 (guarded against overflow) and probe the
lexicographically sorted build side with two ``searchsorted`` calls.

Anything outside these windows falls back to the unmodified Python loop,
so every backend stays bag-identical whether or not numpy is present —
``tests/test_fuzz_differential.py`` pins this property, and one CI leg
runs the tier-1 suite with numpy absent.

Encodings are cached on the owning :class:`~repro.data.relation.ColumnStore`
(``kernel_cache``), tagged with the column length (arrays are append-only,
so a length match proves freshness).  Stores decoded from shared-memory
column pages expose raw page buffers (``ColumnStore.pages``); int/float
payloads and ``D``-page dictionary code arrays become zero-copy
``np.frombuffer`` views, which is what lets worker processes of the
``"process"`` backend scan shared segments without deserializing per query.

Derived join-build structures (sorted packed key arrays per hash table or
per immutable column-encoding tuple, plus string dictionary translations)
live in a process-wide LRU with byte accounting — bounded by
``REPRO_KERNEL_CACHE_BYTES`` (default 64 MiB) — and hit/miss/eviction
counters surface through :func:`cache_stats` and, per backend, through
``ShardedBackend.execution_counts()``.

Set ``REPRO_KERNELS=0`` to force the pure-Python loops even with numpy
installed (the differential suites use this to cross-check both paths).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Callable

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.plan import AggregateP, DistinctP, Plan, ScanP
from repro.engine.vectorized import (
    Batch,
    Vector,
    VectorizedExecutor,
    _column_position,
    _exact,
    _take,
)
from repro.expr import ast as e

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as np
except Exception:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Shared empty selection for probes with no matches (never mutated).
_EMPTY_SEL: Any = np.empty(0, dtype=np.intp) if np is not None else []

#: ints beyond this magnitude are not exactly representable as float64;
#: int/float cross-comparisons must then stay in Python (which compares
#: exactly) instead of numpy (which converts).
_EXACT_FLOAT_BOUND = 2**53
#: integer-SUM accumulators and packed multi-key codes must provably stay
#: inside int64.
_SUM_BOUND = 2**62


def kernels_enabled() -> bool:
    """Whether the numpy kernels are active (numpy present and not opted out)."""
    if np is None:
        return False
    flag = os.environ.get("REPRO_KERNELS", "").strip().lower()
    return flag not in ("0", "off", "false", "no")


# ---------------------------------------------------------------------------
# Column encodings
# ---------------------------------------------------------------------------

class ColumnEncoding:
    """One column lowered to numpy: values, NULL mask, and safety flags.

    ``kind`` is ``"i"`` (int64), ``"f"`` (float64) or ``"s"`` (dictionary
    codes: ``values`` holds int codes into the sorted ``dictionary`` array,
    ``-1`` at NULL positions); ``mask`` marks NULL positions (``None`` when
    the column has no NULLs); ``exact`` means the column can cross-compare
    with the other numeric family through float64 without losing precision;
    ``has_nan`` flags float columns containing NaN.
    """

    __slots__ = ("values", "mask", "kind", "exact", "has_nan", "dictionary",
                 "grouping")

    def __init__(self, values: Any, mask: Any, kind: str,
                 exact: bool, has_nan: bool) -> None:
        self.values = values
        self.mask = mask
        self.kind = kind
        self.exact = exact
        self.has_nan = has_nan
        #: Sorted ``<U`` array of the distinct non-NULL strings (``"s"``
        #: only).  Sorted means codes are order-preserving: range predicates
        #: and equi-joins evaluate directly on the code array.
        self.dictionary: Any = None
        #: Cached group-by structure for aggregations keyed on this whole
        #: column: ``(token, n, gid, reps, order, sorted_gid, starts)``.
        #: Encodings live in the column store's ``kernel_cache``, so over an
        #: immutable (e.g. shared-memory attached) relation the two O(n log n)
        #: sorts behind a group-by are paid once, not per query.
        self.grouping: tuple | None = None


def _finish_numeric(values: Any, mask: Any, kind: str) -> ColumnEncoding:
    valid = values if mask is None else values[~mask]
    if kind == "i":
        exact = bool((np.abs(valid) <= _EXACT_FLOAT_BOUND).all()) \
            if valid.size else True
        return ColumnEncoding(values, mask, "i", exact, False)
    has_nan = bool(np.isnan(valid).any()) if valid.size else False
    return ColumnEncoding(values, mask, "f", True, has_nan)


def _encode_list(values: list[Any]) -> ColumnEncoding | None:
    """Scan one Python column and lower it, or ``None`` when ineligible."""
    kind = ""
    has_null = False
    for v in values:
        if v is None:
            has_null = True
            continue
        t = type(v)
        if t is int:
            k = "i"
        elif t is float:
            k = "f"
        elif t is str:
            k = "s"
        else:
            return None
        if not kind:
            kind = k
        elif kind != k:
            return None
    if not kind:
        return None  # empty or all-NULL: nothing to accelerate
    n = len(values)
    mask = None
    filled = values
    if has_null:
        mask = np.fromiter((v is None for v in values), np.bool_, count=n)
        placeholder: Any = "" if kind == "s" else 0
        filled = [placeholder if v is None else v for v in values]
    if kind == "i":
        try:
            arr = np.asarray(filled, dtype=np.int64)
        except OverflowError:
            return None
        return _finish_numeric(arr, mask, "i")
    if kind == "f":
        return _finish_numeric(np.asarray(filled, dtype=np.float64), mask, "f")
    svals = np.asarray(filled)
    if mask is None:
        dictionary, inverse = np.unique(svals, return_inverse=True)
        codes = inverse.astype(np.int64, copy=False)
    else:
        dictionary = np.unique(svals[~mask])
        codes = np.searchsorted(dictionary, svals).astype(np.int64, copy=False)
        codes[mask] = -1
    encoding = ColumnEncoding(codes, mask, "s", True, False)
    encoding.dictionary = dictionary
    return encoding


def _encode_page(page: tuple[str, Any, Any, int]) -> ColumnEncoding:
    """Zero-copy encoding over a decoded shared-memory column page."""
    from repro.data.relation import dict_page_layout, dict_page_values

    kind, mask_buf, payload, n_rows = page
    mask = np.frombuffer(mask_buf, dtype=np.bool_) if len(mask_buf) else None
    if kind == "D":
        _n_dict, width, _blob_offset, codes_offset = dict_page_layout(payload)
        words = dict_page_values(payload)
        dictionary = np.asarray(words) if words else np.empty(0, dtype="<U1")
        codes = np.frombuffer(payload,
                              dtype=np.int32 if width == 4 else np.int64,
                              count=n_rows, offset=codes_offset)
        encoding = ColumnEncoding(codes, mask, "s", True, False)
        encoding.dictionary = dictionary
        return encoding
    values = np.frombuffer(payload, dtype=np.int64 if kind == "q"
                           else np.float64)
    return _finish_numeric(values, mask, "i" if kind == "q" else "f")


def store_encoding(store: Any, index: int) -> ColumnEncoding | None:
    """The cached encoding of ``store.arrays[index]`` (or ``None``).

    Tagged with the column length: append-only arrays mean a length match
    proves the entry is current, so no invalidation hook is needed.
    """
    column = store.arrays[index]
    n = len(column)
    entry = store.kernel_cache.get(index)
    if entry is not None and entry[0] == n:
        return entry[1]
    page = store.pages.get(index)
    if page is not None and page[3] == n:
        encoding: ColumnEncoding | None = _encode_page(page)
    else:
        encoding = _encode_list(column)
    store.kernel_cache[index] = (n, encoding)
    return encoding


def _resolve(vector: Vector) -> ColumnEncoding | None:
    """The encoding behind a vector's base array, resolved via ``Vector.nd``."""
    ref = vector.nd
    if type(ref) is tuple:
        return store_encoding(ref[0], ref[1])
    return None


def _gather(encoding: ColumnEncoding, vector: Vector, length: int,
            np_sel: Any) -> tuple[Any, Any]:
    """``(values, mask)`` at batch positions, restricted to ``np_sel``."""
    values, mask = encoding.values, encoding.mask
    if vector.sel is not None:
        base = np.asarray(vector.sel, dtype=np.intp)
        if np_sel is not None:
            base = base[np_sel]
        return values[base], None if mask is None else mask[base]
    if np_sel is not None:
        return values[np_sel], None if mask is None else mask[np_sel]
    if len(values) != length:  # length-limited batch (as-of window)
        return values[:length], None if mask is None else mask[:length]
    return values, mask


# ---------------------------------------------------------------------------
# Derived-structure cache (bounded, byte-accounted LRU)
# ---------------------------------------------------------------------------

def _env_cache_budget() -> int:
    raw = os.environ.get("REPRO_KERNEL_CACHE_BYTES", "")
    try:
        return int(raw) if raw else 64 * 1024 * 1024
    except ValueError:
        return 64 * 1024 * 1024


#: Byte budget for derived structures (build tables, dictionary
#: translations).  Encodings themselves live on their column stores and are
#: not bounded here — they are the columns.
_CACHE_BUDGET = _env_cache_budget()
_CACHE_ENTRY_LIMIT = 256
_CACHE_LOCK = threading.Lock()
#: key -> (anchor objects, payload, cost bytes).  Anchors are the objects
#: whose ``id()`` forms the key; holding them keeps the ids valid, and an
#: ``is``-check on lookup makes stale-id collisions impossible.
_CACHE: "OrderedDict[Any, tuple[tuple, Any, int]]" = OrderedDict()
_CACHE_BYTES = 0
_CACHE_TOTALS = {"hits": 0, "misses": 0, "evictions": 0}
_MISSING = object()


def _sink_bump(sink: "dict[str, int] | None", key: str) -> None:
    if sink is not None:
        sink[key] = sink.get(key, 0) + 1


def _cache_get(key: Any, anchors: tuple, sink: "dict[str, int] | None") -> Any:
    with _CACHE_LOCK:
        entry = _CACHE.get(key)
        if entry is not None and len(entry[0]) == len(anchors) and all(
                a is b for a, b in zip(entry[0], anchors)):
            _CACHE.move_to_end(key)
            _CACHE_TOTALS["hits"] += 1
            _sink_bump(sink, "kernel_cache_hits")
            return entry[1]
        _CACHE_TOTALS["misses"] += 1
        _sink_bump(sink, "kernel_cache_misses")
        return _MISSING


def _cache_put(key: Any, anchors: tuple, payload: Any, nbytes: int,
               sink: "dict[str, int] | None") -> Any:
    global _CACHE_BYTES
    with _CACHE_LOCK:
        old = _CACHE.pop(key, None)
        if old is not None:
            _CACHE_BYTES -= old[2]
        _CACHE[key] = (tuple(anchors), payload, nbytes)
        _CACHE_BYTES += nbytes
        while _CACHE and (len(_CACHE) > _CACHE_ENTRY_LIMIT
                          or _CACHE_BYTES > _CACHE_BUDGET):
            _popped, (_anchors, _payload, cost) = _CACHE.popitem(last=False)
            _CACHE_BYTES -= cost
            _CACHE_TOTALS["evictions"] += 1
            _sink_bump(sink, "kernel_cache_evictions")
    return payload


def cache_stats() -> dict[str, int]:
    """Process-wide derived-structure cache counters and occupancy."""
    with _CACHE_LOCK:
        return {"entries": len(_CACHE), "bytes": _CACHE_BYTES,
                "budget_bytes": _CACHE_BUDGET, **_CACHE_TOTALS}


def clear_cache() -> None:
    """Drop every cached derived structure (tests and benchmarks)."""
    global _CACHE_BYTES
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_BYTES = 0


# ---------------------------------------------------------------------------
# Selection kernels
# ---------------------------------------------------------------------------

_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _const_compatible(encoding: ColumnEncoding, const: Any) -> bool:
    """Whether comparing ``encoding`` against ``const`` in numpy is exact."""
    t = type(const)
    if encoding.kind == "i":
        if t is int:
            return True
        return t is float and encoding.exact
    if encoding.kind == "f":
        if t is float:
            return True
        return t is int and abs(const) <= _EXACT_FLOAT_BOUND
    return t is str  # kind "s"


def _columns_compatible(a: ColumnEncoding, b: ColumnEncoding) -> bool:
    if a.kind == b.kind:
        return True
    numeric = {"i", "f"}
    return a.kind in numeric and b.kind in numeric and a.exact and b.exact


def kernel_filter(conjunct: e.Expr, batch: Batch
                  ) -> Callable[[Batch, "list[int] | None"], list[int]] | None:
    """Compile one conjunct to a numpy selection, or ``None`` to fall back.

    Mirrors :func:`repro.engine.vectorized.vector_filter` exactly where it
    engages: NULL operands never match, and any operand mix the Python loop
    would reject as a type error simply declines to compile (the fallback
    raises identically).
    """
    if not kernels_enabled():
        return None
    if not isinstance(conjunct, e.Comparison) or conjunct.op not in _OPS:
        return None
    left, op, right = conjunct.left, conjunct.op, conjunct.right
    lpos = _column_position(left, batch.columns)
    rpos = _column_position(right, batch.columns)
    if lpos is not None and isinstance(right, e.Const):
        return _const_kernel(batch, lpos, op, right.value)
    if rpos is not None and isinstance(left, e.Const):
        flipped = conjunct.flipped()
        return _const_kernel(batch, rpos, flipped.op, left.value)
    if lpos is not None and rpos is not None:
        return _column_kernel(batch, lpos, op, rpos)
    return None


def _positions(cmp: Any, np_sel: Any) -> list[int]:
    if np_sel is None:
        return np.flatnonzero(cmp).tolist()
    return np_sel[cmp].tolist()


def _const_kernel(batch: Batch, pos: int, op: str, const: Any
                  ) -> Callable[[Batch, "list[int] | None"], list[int]] | None:
    if const is None:
        return None  # the Python fast path already drops every row
    vector = batch.vectors[pos]
    encoding = _resolve(vector)
    if encoding is None or not _const_compatible(encoding, const):
        return None
    if encoding.kind == "s":
        return _const_code_kernel(encoding, vector, op, const)
    compare = _OPS[op]

    def run(b: Batch, sel: "list[int] | None") -> list[int]:
        np_sel = None if sel is None else np.asarray(sel, dtype=np.intp)
        values, mask = _gather(encoding, vector, b.length, np_sel)
        cmp = compare(values, const)
        if mask is not None:
            cmp &= ~mask
        return _positions(cmp, np_sel)

    return run


def _const_code_kernel(encoding: ColumnEncoding, vector: Vector, op: str,
                       const: str
                       ) -> Callable[[Batch, "list[int] | None"], list[int]]:
    """String comparison on dictionary codes.

    The dictionary is sorted, so ``value < const`` is ``code < lo`` with
    ``lo`` the left insertion point (and ``hi`` the right one; ``hi > lo``
    iff the constant is itself a dictionary member, at code ``lo``).  NULL
    rows carry code ``-1`` and are cleared by the mask, matching the
    Python loop's NULL-never-matches rule.
    """
    dictionary = encoding.dictionary
    lo = int(np.searchsorted(dictionary, const, side="left"))
    hi = int(np.searchsorted(dictionary, const, side="right"))
    present = hi > lo

    def run(b: Batch, sel: "list[int] | None") -> list[int]:
        np_sel = None if sel is None else np.asarray(sel, dtype=np.intp)
        values, mask = _gather(encoding, vector, b.length, np_sel)
        if op == "=":
            cmp = (values == lo) if present \
                else np.zeros(len(values), dtype=bool)
        elif op == "<>":
            cmp = (values != lo) if present \
                else np.ones(len(values), dtype=bool)
        elif op == "<":
            cmp = values < lo
        elif op == "<=":
            cmp = values < hi
        elif op == ">":
            cmp = values >= hi
        else:  # ">="
            cmp = values >= lo
        if mask is not None:
            cmp &= ~mask
        elif op in ("<>", "<", "<="):
            cmp &= values >= 0  # defensive: -1 codes only exist under a mask
        return _positions(cmp, np_sel)

    return run


def _column_kernel(batch: Batch, lpos: int, op: str, rpos: int
                   ) -> Callable[[Batch, "list[int] | None"], list[int]] | None:
    lvec, rvec = batch.vectors[lpos], batch.vectors[rpos]
    lenc, renc = _resolve(lvec), _resolve(rvec)
    if lenc is None or renc is None or not _columns_compatible(lenc, renc):
        return None
    compare = _OPS[op]
    # Two dictionary-coded columns compare through a merged dictionary:
    # remap both code spaces into the union's (sorted, so order-preserving).
    ltrans = rtrans = None
    if lenc.kind == "s":
        if lenc.dictionary is not renc.dictionary:
            merged = np.unique(np.concatenate([lenc.dictionary,
                                               renc.dictionary]))
            ltrans = np.searchsorted(merged, lenc.dictionary)
            rtrans = np.searchsorted(merged, renc.dictionary)

    def run(b: Batch, sel: "list[int] | None") -> list[int]:
        np_sel = None if sel is None else np.asarray(sel, dtype=np.intp)
        lvals, lmask = _gather(lenc, lvec, b.length, np_sel)
        rvals, rmask = _gather(renc, rvec, b.length, np_sel)
        if ltrans is not None:
            # -1 codes mark NULLs; clamp before the fancy index (the mask
            # clears those rows below).
            lvals = ltrans[np.maximum(lvals, 0)]
            rvals = rtrans[np.maximum(rvals, 0)]
        cmp = compare(lvals, rvals)
        if lmask is not None:
            cmp &= ~lmask
        if rmask is not None:
            cmp &= ~rmask
        return _positions(cmp, np_sel)

    return run


# ---------------------------------------------------------------------------
# Hash-join probe kernel (single- and multi-key, packed codes)
# ---------------------------------------------------------------------------

class _BuildStructure:
    """A hash join's build side as sorted packed key codes.

    Per key column, ``columns`` holds ``(kind, domain, exact)`` where
    ``domain`` is the sorted distinct build keys of that column (for
    dictionary-coded strings: the dictionary itself).  Every build value
    maps to ``2 * code + 1``; probe values map to ``2 * insertion +
    present`` against the same domain, so values absent from the build
    side land on even codes and never match, while the mapping stays
    monotone — multi-key tuples then pack into one int64 with per-column
    radix ``2 * |domain| + 1`` (overflow-guarded).  ``positions`` holds
    bucket row positions grouped by packed key (buckets in key order,
    positions ascending within each — the sequential probe's emission
    order); ``ukeys``/``starts`` delimit the buckets, so a probe is one
    ``searchsorted`` into the unique keys — or none at all for a single
    key column, where the domain covers every build key by construction
    and the domain code *is* the bucket index.

    For integer columns whose domain is dense (the usual surrogate-key
    case), ``luts`` additionally holds ``(lo, table)`` with the m code of
    every value in ``[lo, lo + len(table))`` precomputed: the per-probe
    ``searchsorted`` (a binary search per element) collapses to one
    subtract + fancy index.  The table is part of the cached structure,
    so its cost is paid once per build side.
    """

    __slots__ = ("ukeys", "starts", "counts", "positions", "columns",
                 "luts", "nbytes")

    def __init__(self, packed: Any, positions: Any, columns: tuple) -> None:
        order = np.argsort(packed, kind="stable")
        sorted_packed = packed[order]
        self.positions = positions[order]
        self.ukeys, first = np.unique(sorted_packed, return_index=True)
        self.starts = np.append(first, len(sorted_packed))
        self.counts = np.diff(self.starts)
        self.columns = columns
        self.luts = tuple(_dense_lut(kind, domain)
                          for kind, domain, _exact in columns)
        self.nbytes = int(self.ukeys.nbytes) + int(self.starts.nbytes) \
            + int(self.counts.nbytes) + int(self.positions.nbytes) + sum(
                int(domain.nbytes) for _kind, domain, _exact in columns) \
            + sum(int(lut[1].nbytes) for lut in self.luts
                  if lut is not None)


#: A dense-int lookup table may span at most this many slots (8 MiB of
#: int64 codes) regardless of how sparse the build keys are.
_LUT_SPAN_LIMIT = 1 << 20


def _dense_lut(kind: str, domain: Any) -> "tuple[int, Any] | None":
    """``(lo, m_codes)`` over the domain's span, or ``None`` if too sparse."""
    if kind != "i" or len(domain) == 0 \
            or not np.issubdtype(domain.dtype, np.integer):
        return None
    lo, hi = int(domain[0]), int(domain[-1])
    span = hi - lo + 1
    if span > max(4 * len(domain), 1024) or span > _LUT_SPAN_LIMIT:
        return None
    return lo, _domain_codes(domain, np.arange(lo, lo + span,
                                               dtype=np.int64))


def _lut_codes(lut: "tuple[int, Any]", domain: Any, values: Any) -> Any:
    """``_domain_codes`` via the dense table; exact same m codes."""
    lo, table = lut
    shifted = values.astype(np.int64, copy=False) - lo
    m = table[np.clip(shifted, 0, len(table) - 1)]
    below = shifted < 0
    if below.any():
        m[below] = 0  # insertion point 0, not present
    above = shifted >= len(table)
    if above.any():
        m[above] = 2 * len(domain)  # insertion point d, not present
    return m


def _radix_limit_ok(radixes: list[int]) -> bool:
    limit = 1
    for radix in radixes:
        if limit > _SUM_BOUND // radix:
            return False
        limit *= radix
    return True


def _pack(m_arrays: list[Any], radixes: list[int]) -> Any:
    combined = m_arrays[0].astype(np.int64, copy=False)
    for m, radix in zip(m_arrays[1:], radixes[1:]):
        combined = combined * radix + m
    return combined


def _domain_codes(domain: Any, values: Any) -> Any:
    """``2 * insertion + present`` codes of ``values`` against ``domain``."""
    d = len(domain)
    ins = np.searchsorted(domain, values, side="left")
    if d:
        clipped = np.minimum(ins, d - 1)
        present = (ins < d) & (domain[clipped] == values)
    else:
        present = np.zeros(len(values), dtype=bool)
    return 2 * ins.astype(np.int64, copy=False) + present


def _structure_from_table(table: dict[Any, list[int]],
                          n_keys: int) -> _BuildStructure | None:
    """Lower a Python hash table's keys/buckets, or ``None`` when ineligible."""
    keys = list(table.keys())
    if n_keys == 1:
        key_columns: list[list[Any]] = [keys]
    else:
        key_columns = [list(column) for column in zip(*keys)]
        if len(key_columns) != n_keys:
            return None
    lowered = []
    for column in key_columns:
        kind = ""
        for v in column:
            t = type(v)
            if t is int:
                k = "i"
            elif t is float:
                k = "f"
                if v != v:
                    return None  # NaN build key: Python matches by identity
            elif t is str:
                k = "s"
            else:
                return None
            if not kind:
                kind = k
            elif kind != k:
                return None
        if kind == "i":
            try:
                arr = np.asarray(column, dtype=np.int64)
            except OverflowError:
                return None
            exact = bool((np.abs(arr) <= _EXACT_FLOAT_BOUND).all()) \
                if arr.size else True
        elif kind == "f":
            arr = np.asarray(column, dtype=np.float64)
            exact = True
        else:
            arr = np.asarray(column)
            exact = True
        lowered.append((kind, arr, exact))
    m_arrays = []
    radixes = []
    columns = []
    for kind, arr, exact in lowered:
        domain = np.unique(arr)
        codes = np.searchsorted(domain, arr)
        m_arrays.append(2 * codes.astype(np.int64, copy=False) + 1)
        radixes.append(2 * len(domain) + 1)
        columns.append((kind, domain, exact))
    if not _radix_limit_ok(radixes):
        return None
    packed_keys = _pack(m_arrays, radixes)
    counts = np.fromiter((len(b) for b in table.values()), np.intp,
                         count=len(table))
    positions = np.fromiter((p for b in table.values() for p in b), np.intp,
                            count=int(counts.sum()))
    return _BuildStructure(np.repeat(packed_keys, counts), positions,
                           tuple(columns))


def _structure_from_encodings(encodings: list[ColumnEncoding], n: int,
                              skip_nulls: bool) -> _BuildStructure | None:
    """Lower whole-column build keys straight from their encodings.

    This is the path that never materializes a Python hash table: sorted
    packed codes come from the immutable encodings, are cached per
    encoding tuple, and are reused across queries and view refreshes
    until a write replaces the encodings (length-tagged, like the
    group-id caches).
    """
    masks = [enc.mask for enc in encodings if enc.mask is not None]
    if masks and not skip_nulls:
        return None  # NULL build keys keep Python's identity semantics
    for enc in encodings:
        if len(enc.values) != n:
            return None
        if enc.kind == "f" and enc.has_nan:
            return None
    if masks:
        dropped = masks[0].copy()
        for m in masks[1:]:
            dropped |= m
        pos = np.flatnonzero(~dropped)
    else:
        pos = None
    m_arrays = []
    radixes = []
    columns = []
    for enc in encodings:
        vals = enc.values if pos is None else enc.values[pos]
        if enc.kind == "s":
            domain = enc.dictionary
            m = 2 * vals.astype(np.int64, copy=False) + 1
            exact = True
        else:
            domain = np.unique(vals)
            codes = np.searchsorted(domain, vals)
            m = 2 * codes.astype(np.int64, copy=False) + 1
            exact = enc.exact
        m_arrays.append(m)
        radixes.append(2 * len(domain) + 1)
        columns.append((enc.kind, domain, exact))
    if not _radix_limit_ok(radixes):
        return None
    packed = _pack(m_arrays, radixes)
    base = np.arange(len(packed), dtype=np.intp) if pos is None else pos
    return _BuildStructure(packed, base, tuple(columns))


def _dict_translation(domain: Any, pdict: Any,
                      sink: "dict[str, int] | None") -> Any:
    """Probe-dictionary → build-domain codes, cached per array pair."""
    key = ("xlat", id(domain), id(pdict))
    cached = _cache_get(key, (domain, pdict), sink)
    if cached is not _MISSING:
        return cached
    pmap = _domain_codes(domain, pdict)
    return _cache_put(key, (domain, pdict), pmap, int(pmap.nbytes), sink)


def _probe_with_structure(structure: _BuildStructure, batch: Batch,
                          idx: list[int], null_matches: bool,
                          sink: "dict[str, int] | None"
                          ) -> "tuple[Any, Any] | None":
    n = batch.length
    gathered = []
    for i, (kind, _domain, exact) in zip(idx, structure.columns):
        vector = batch.vectors[i]
        enc = _resolve(vector)
        if enc is None:
            return None
        if enc.kind == "s" or kind == "s":
            if enc.kind != kind:
                return None
        elif enc.kind == "f" and enc.has_nan:
            return None  # Python matches NaN keys by identity; numpy never
        elif enc.kind != kind and not (enc.exact and exact):
            return None
        vals, mask = _gather(enc, vector, n, None)
        if mask is not None and null_matches:
            return None  # NULL probe keys would have to match NULL build keys
        gathered.append((enc, vals, mask))
    masks = [m for _enc, _vals, m in gathered if m is not None]
    if masks:
        dropped = masks[0].copy()
        for m in masks[1:]:
            dropped |= m
        probe_idx = np.flatnonzero(~dropped)
    else:
        probe_idx = None
    m_arrays = []
    radixes = []
    for j, ((enc, vals, _mask), (kind, domain, _exact)) in enumerate(
            zip(gathered, structure.columns)):
        if probe_idx is not None:
            vals = vals[probe_idx]
        radixes.append(2 * len(domain) + 1)
        if enc.kind == "s":
            pdict = enc.dictionary
            if pdict is domain:
                m = 2 * vals.astype(np.int64, copy=False) + 1
            else:
                m = _dict_translation(domain, pdict, sink)[vals]
        elif enc.kind != kind:
            # int/float cross-match: both sides proved exact in float64
            m = _domain_codes(domain.astype(np.float64),
                              vals.astype(np.float64))
        elif structure.luts[j] is not None:
            m = _lut_codes(structure.luts[j], domain, vals)
        else:
            m = _domain_codes(domain, vals)
        m_arrays.append(m)
    ukeys = structure.ukeys
    if len(m_arrays) == 1:
        # The domain covers every build key, so the domain code IS the
        # bucket index: no packed-key lookup at all.
        m = m_arrays[0]
        found = (m & 1).astype(bool)
        bucket = m >> 1
    else:
        probe_packed = _pack(m_arrays, radixes)
        bucket = np.searchsorted(ukeys, probe_packed)
        if len(ukeys):
            clipped = np.minimum(bucket, len(ukeys) - 1)
            found = (bucket < len(ukeys)) & (ukeys[clipped] == probe_packed)
        else:
            found = np.zeros(len(probe_packed), dtype=bool)
    bucket = np.where(found, bucket, 0)
    counts = np.where(found, structure.counts[bucket], 0) if len(ukeys) \
        else np.zeros(len(bucket), dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_SEL, _EMPTY_SEL
    if probe_idx is None:
        probe_idx = np.arange(len(counts), dtype=np.intp)
    left_sel = np.repeat(probe_idx, counts)
    offsets = np.cumsum(counts) - counts
    run = np.repeat(structure.starts[bucket] - offsets, counts)
    right_sel = structure.positions[np.arange(total, dtype=np.intp) + run]
    return left_sel, right_sel


def _table_structure(table: dict[Any, list[int]], n_keys: int,
                     sink: "dict[str, int] | None") -> _BuildStructure | None:
    key = ("table", id(table))
    cached = _cache_get(key, (table,), sink)
    if cached is not _MISSING:
        return cached
    structure = _structure_from_table(table, n_keys)
    nbytes = structure.nbytes if structure is not None else 64
    return _cache_put(key, (table,), structure, nbytes, sink)


def kernel_probe(batch: Batch, idx: list[int], table: Any, null_matches: bool,
                 sink: "dict[str, int] | None" = None
                 ) -> "tuple[Any, Any] | None":
    """Sort-based probe of a hash join (single- or multi-key), or ``None``.

    Emits ``(left_sel, right_sel)`` in exactly the sequential probe's order:
    probe positions ascending, bucket positions ascending within each.
    """
    if not kernels_enabled() or not idx or type(table) is not dict:
        return None
    if not table:
        return [], []
    structure = _table_structure(table, len(idx), sink)
    if structure is None:
        return None
    return _probe_with_structure(structure, batch, idx, null_matches, sink)


class _KernelBuild:
    """Lazy build side of a join whose right input is a base-table scan.

    Quacks like the positional hash index (``get``/``keys`` materialize
    the relation's cached ``key_index`` on demand), but the kernel probe
    path never touches that dict: :meth:`structure` lowers the key
    columns' immutable encodings directly to sorted packed codes, cached
    per encoding tuple in the bounded kernel cache.
    """

    __slots__ = ("relation", "idx", "skip_nulls", "_table")

    def __init__(self, relation: Relation, idx: list[int],
                 skip_nulls: bool) -> None:
        self.relation = relation
        self.idx = tuple(idx)
        self.skip_nulls = skip_nulls
        self._table: "dict[Any, list[int]] | None" = None

    def table(self) -> dict[Any, list[int]]:
        if self._table is None:
            self._table = self.relation.key_index(
                list(self.idx), skip_nulls=self.skip_nulls)
        return self._table

    def get(self, key: Any, default: Any = None) -> Any:
        return self.table().get(key, default)

    def keys(self) -> Any:
        return self.table().keys()

    def structure(self, sink: "dict[str, int] | None" = None
                  ) -> _BuildStructure | None:
        store = self.relation.column_store()
        encodings = []
        for i in self.idx:
            enc = store_encoding(store, i)
            if enc is None:
                return None
            encodings.append(enc)
        key = ("build", tuple(id(enc) for enc in encodings), self.skip_nulls)
        cached = _cache_get(key, tuple(encodings), sink)
        if cached is not _MISSING:
            return cached
        structure = _structure_from_encodings(
            encodings, len(self.relation), self.skip_nulls)
        nbytes = structure.nbytes if structure is not None else 64
        return _cache_put(key, tuple(encodings), structure, nbytes, sink)


# ---------------------------------------------------------------------------
# DISTINCT kernel
# ---------------------------------------------------------------------------

def _distinct_codes(vector: Vector, n: int) -> "tuple[Any, int] | None":
    """Non-negative per-row codes whose equality matches value equality."""
    enc = _resolve(vector)
    if enc is not None:
        vals, mask = _gather(enc, vector, n, None)
        kind, has_nan, dictionary = enc.kind, enc.has_nan, enc.dictionary
    else:
        ad_hoc = _encode_list(_exact(vector, n))
        if ad_hoc is None:
            return None
        vals, mask = ad_hoc.values, ad_hoc.mask
        kind, has_nan = ad_hoc.kind, ad_hoc.has_nan
        dictionary = ad_hoc.dictionary
    if has_nan:
        return None  # Python dedups NaN by identity; np.unique collapses
    if kind == "s":
        cardinality = len(dictionary)
        codes = vals.astype(np.int64, copy=False)
    else:
        _domain, inverse = np.unique(vals, return_inverse=True)
        cardinality = int(inverse.max()) + 1 if inverse.size else 1
        codes = inverse.astype(np.int64, copy=False)
    if mask is not None:
        # NULL is its own distinct value: give it a dedicated code (this
        # also replaces the -1 dictionary codes at masked positions).
        codes = np.where(mask, cardinality, codes)
        cardinality += 1
    return codes, max(cardinality, 1)


def kernel_distinct(batch: Batch) -> "Any | None":
    """First-occurrence positions of the distinct rows, or ``None``.

    Packs per-column codes (dictionary codes for strings, dense unique
    ranks otherwise, one extra code for NULL) into one int64 per row and
    takes ``np.unique(..., return_index=True)`` — the sorted first-occurrence
    indices are exactly the Python set-scan's emission order.
    """
    if not kernels_enabled() or batch.length == 0 or not batch.vectors:
        return None
    n = batch.length
    packed = None
    for vector in batch.vectors:
        coded = _distinct_codes(vector, n)
        if coded is None:
            return None
        codes, cardinality = coded
        if packed is None:
            packed = codes
            limit = cardinality
        else:
            if limit > _SUM_BOUND // cardinality:
                return None  # packed key would overflow int64
            packed = packed * cardinality + codes
            limit *= cardinality
    _unique, first_idx = np.unique(packed, return_index=True)
    first_idx.sort()
    return first_idx


# ---------------------------------------------------------------------------
# Aggregation kernel
# ---------------------------------------------------------------------------

def _group_ids(key_arrays: list[Any], n: int) -> "tuple[Any, Any] | None":
    """``(gid, reps)``: group id per row (first-occurrence order) + reps."""
    if not key_arrays:
        return np.zeros(n, dtype=np.intp), np.zeros(1, dtype=np.intp)
    if len(key_arrays) == 1:
        combined = key_arrays[0]
    else:
        combined = None
        for values in key_arrays:
            _, inverse = np.unique(values, return_inverse=True)
            cardinality = int(inverse.max()) + 1 if inverse.size else 1
            if combined is None:
                combined = inverse.astype(np.int64)
            else:
                if int(combined.max()) + 1 > _SUM_BOUND // cardinality:
                    return None
                combined = combined * cardinality + inverse
    _, first_idx, inverse = np.unique(combined, return_index=True,
                                      return_inverse=True)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(order), dtype=np.intp)
    rank[order] = np.arange(len(order), dtype=np.intp)
    return rank[inverse], first_idx[order]


def _sort_segments(vgid: Any) -> tuple[Any, Any, Any]:
    """``(order, sorted_gid, starts)``: rows stably sorted by group id."""
    order = np.argsort(vgid, kind="stable")
    sorted_gid = vgid[order]
    starts = np.flatnonzero(np.r_[True, sorted_gid[1:] != sorted_gid[:-1]]) \
        if sorted_gid.size else np.empty(0, dtype=np.intp)
    return order, sorted_gid, starts


def _present(acc: Any, counts: Any) -> list[Any]:
    """``acc`` as Python scalars, with ``None`` where a group saw no value."""
    if counts.all():
        return acc.tolist()
    return [value if c else None
            for value, c in zip(acc.tolist(), counts.tolist())]


def kernel_aggregate(plan: AggregateP, batch: Batch
                     ) -> "Batch | None":
    """Lower a whole group-by to bincount/scatter accumulation, or ``None``.

    Engages when every group key is a NULL-free int/float/str column pick
    and every aggregate is COUNT/SUM/MIN/MAX/AVG over an int/float column
    (COUNT accepts any encodable column).  DISTINCT aggregates lower too:
    MIN/MAX ignore the flag (dedup cannot change an extremum), COUNT
    DISTINCT and integer SUM/AVG DISTINCT reduce over unique
    ``(group, value-code)`` pairs — integer sums are order-free, so
    skipping Python's first-occurrence ordering is exact (float DISTINCT
    sums are order-sensitive and decline).  First-occurrence group order,
    in-order float accumulation, and int64 overflow guards keep the result
    bit-identical to the Python fold.
    """
    if not kernels_enabled() or batch.length == 0:
        return None
    n = batch.length
    columns = plan.input.columns

    key_arrays: list[Any] = []
    key_encodings: list[ColumnEncoding] = []
    keys_are_whole_columns = True
    for expr in plan.group_exprs:
        pos = _column_position(expr, columns)
        if pos is None:
            return None
        vector = batch.vectors[pos]
        encoding = _resolve(vector)
        if encoding is None or (encoding.kind == "f" and encoding.has_nan):
            return None
        values, mask = _gather(encoding, vector, n, None)
        if mask is not None and mask.any():
            return None  # NULL group keys group by identity semantics
        if values is not encoding.values:
            # A filtered/selected batch: the grouping depends on the
            # selection, so it cannot be cached on the encoding.
            keys_are_whole_columns = False
        key_arrays.append(values)
        key_encodings.append(encoding)

    specs: list[tuple[str, Any, Any]] = []
    for call, _name in plan.aggregates:
        name = call.name
        if name == "count" and call.args and isinstance(call.args[0], e.Star) \
                and not call.distinct:
            specs.append(("count*", None, None))
            continue
        if not call.args or name not in ("count", "sum", "min", "max", "avg"):
            return None
        pos = _column_position(call.args[0], columns)
        if pos is None:
            return None
        vector = batch.vectors[pos]
        encoding = _resolve(vector)
        if encoding is None:
            return None
        if name != "count":
            if encoding.kind == "s":
                return None
            if encoding.kind == "f" and encoding.has_nan:
                return None
        # DISTINCT folds dedup by value equality, which the kernels model
        # with value codes; min/max are dedup-invariant and keep the plain
        # path.
        if call.distinct and name in ("count", "sum", "avg"):
            if name == "count":
                if encoding.kind == "f" and encoding.has_nan:
                    return None
                name = "countd"
            elif encoding.kind != "i":
                return None  # float DISTINCT sums are order-sensitive
            else:
                name = "sumd" if name == "sum" else "avgd"
        values, mask = _gather(encoding, vector, n, None)
        if name in ("sum", "avg", "sumd", "avgd") and encoding.kind == "i":
            bound = int(np.abs(values).max()) if values.size else 0
            if bound * n >= _SUM_BOUND:
                return None
        specs.append((name, values, mask))

    # Grouping = two O(n log n) sorts (group ids + the segment view for
    # MIN/MAX).  When every key is a whole unfiltered column, both depend
    # only on immutable encoded data, so they are cached on the first
    # key's encoding — a scan→aggregate over an unchanged relation (the
    # process backend's partial-aggregation subplans) pays them once.
    host = key_encodings[0] if keys_are_whole_columns and key_encodings \
        else None
    gid = reps_arr = whole_segments = None
    if host is not None and host.grouping is not None:
        token, cached_n, gid, reps_arr, whole_segments = host.grouping
        if cached_n != n or len(token) != len(key_encodings) or not all(
                a is b for a, b in zip(token, key_encodings)):
            gid = reps_arr = whole_segments = None
    if gid is None:
        grouped = _group_ids(key_arrays, n)
        if grouped is None:
            return None
        gid, reps_arr = grouped
        if host is not None:
            whole_segments = _sort_segments(gid)
            host.grouping = (tuple(key_encodings), n, gid, reps_arr,
                             whole_segments)
    n_groups = len(reps_arr)
    counts_all = np.bincount(gid, minlength=n_groups)

    # Shared segment view for the MIN/MAX reductions: rows stably sorted
    # by group id, with one segment start per non-empty group.  Keyed by
    # the gid array's identity so the unmasked specs all reuse one sort.
    segments: dict[int, tuple[Any, Any, Any]] = {}
    if whole_segments is not None:
        segments[id(gid)] = whole_segments

    def _segmented(vgid: Any) -> tuple[Any, Any, Any]:
        cached = segments.get(id(vgid))
        if cached is None:
            cached = _sort_segments(vgid)
            segments[id(vgid)] = cached
        return cached

    agg_lists: list[list[Any]] = []
    for name, values, mask in specs:
        if name == "count*":
            agg_lists.append(counts_all.tolist())
            continue
        if mask is not None:
            keep = ~mask
            vgid = gid[keep]
            vvals = values[keep]
        else:
            vgid = gid
            vvals = values
        if name in ("countd", "sumd", "avgd"):
            lowered = _distinct_fold(name, vgid, vvals, n_groups)
            if lowered is None:
                return None
            agg_lists.append(lowered)
            continue
        counts = np.bincount(vgid, minlength=n_groups)
        if name == "count":
            agg_lists.append(counts.tolist())
            continue
        if name in ("sum", "avg"):
            acc = np.zeros(n_groups, dtype=vvals.dtype)
            np.add.at(acc, vgid, vvals)  # in index order: Python's fold order
            if name == "sum":
                agg_lists.append(_present(acc, counts))
            else:
                agg_lists.append([total / int(c) if c else None
                                  for total, c in zip(acc.tolist(),
                                                      counts.tolist())])
            continue
        # MIN/MAX are order-insensitive and exact, so a sort-based
        # segmented reduction replaces ``ufunc.at`` (an unbuffered
        # per-element loop, the hot spot of partial aggregation) while
        # staying bit-identical to the Python fold.
        if vvals.dtype == np.int64:
            fill = np.iinfo(np.int64).max if name == "min" \
                else np.iinfo(np.int64).min
            acc = np.full(n_groups, fill, dtype=np.int64)
        else:
            acc = np.full(n_groups, np.inf if name == "min" else -np.inf,
                          dtype=np.float64)
        order, sorted_gid, starts = _segmented(vgid)
        if starts.size:
            sorted_vals = vvals[order]
            reducer = np.minimum if name == "min" else np.maximum
            acc[sorted_gid[starts]] = reducer.reduceat(sorted_vals, starts)
        agg_lists.append(_present(acc, counts))

    reps = reps_arr.tolist()
    vectors = _take(batch.vectors, reps)
    vectors.extend(Vector(values) for values in agg_lists)
    return Batch(plan.columns, vectors, n_groups)


def _distinct_fold(name: str, vgid: Any, vvals: Any,
                   n_groups: int) -> "list[Any] | None":
    """COUNT/SUM/AVG DISTINCT over unique ``(group, value)`` pairs."""
    if not vvals.size:
        zeros = [0] * n_groups
        return zeros if name == "countd" else [None] * n_groups
    domain, codes = np.unique(vvals, return_inverse=True)
    cardinality = len(domain)
    if n_groups > _SUM_BOUND // max(cardinality, 1):
        return None
    packed = vgid.astype(np.int64) * cardinality + codes
    upacked = np.unique(packed)
    ugid = upacked // cardinality
    ucode = upacked % cardinality
    dcounts = np.bincount(ugid, minlength=n_groups)
    if name == "countd":
        return dcounts.tolist()
    acc = np.zeros(n_groups, dtype=np.int64)
    np.add.at(acc, ugid, domain[ucode])
    if name == "sumd":
        return _present(acc, dcounts)
    return [total / int(c) if c else None
            for total, c in zip(acc.tolist(), dcounts.tolist())]


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class KernelExecutor(VectorizedExecutor):
    """A vectorized executor whose hot loops run as numpy kernels.

    Every override tries the kernel and falls back to the inherited Python
    loop when the kernel declines — the class is safe to use even when
    numpy is missing (every kernel declines), so ``make_executor`` is the
    only construction point that needs to know.  ``counters`` (optional)
    receives kernel-cache hit/miss/eviction bumps, letting each backend
    report its own traffic through ``execution_counts()``.
    """

    def __init__(self, db: Database,
                 counters: "dict[str, int] | None" = None) -> None:
        super().__init__(db)
        self.kernel_counters = counters

    def _compile_conjunct(self, conjunct: e.Expr, batch: Batch) -> Any:
        fast = kernel_filter(conjunct, batch)
        if fast is not None:
            return fast
        return super()._compile_conjunct(conjunct, batch)

    def _hash_table(self, right_plan: Plan, right: Batch, right_idx: list[int],
                    null_matches: bool) -> Any:
        if kernels_enabled() and right_idx and type(right_plan) is ScanP:
            relation = self.db.relation(right_plan.relation)
            return _KernelBuild(relation, right_idx, not null_matches)
        return super()._hash_table(right_plan, right, right_idx, null_matches)

    def _probe_batch(self, batch: Batch, idx: list[int], table: Any,
                     null_matches: bool) -> "tuple[Any, Any]":
        if type(table) is _KernelBuild:
            structure = table.structure(self.kernel_counters)
            if structure is not None:
                pair = _probe_with_structure(structure, batch, idx,
                                             null_matches,
                                             self.kernel_counters)
                if pair is not None:
                    return pair
            table = table.table()
        pair = kernel_probe(batch, idx, table, null_matches,
                            self.kernel_counters)
        if pair is not None:
            return pair
        return super()._probe_batch(batch, idx, table, null_matches)

    def _distinct_positions(self, batch: Batch) -> Any:
        sel = kernel_distinct(batch)
        if sel is not None:
            return sel
        return super()._distinct_positions(batch)

    def _aggregate(self, plan: AggregateP) -> Batch:
        batch = self.batch(plan.input)
        lowered = kernel_aggregate(plan, batch)
        if lowered is not None:
            return lowered
        return super()._aggregate(plan)


def make_executor(db: Database,
                  counters: "dict[str, int] | None" = None
                  ) -> VectorizedExecutor:
    """The fastest exact executor available: kernels when on, else Python."""
    if kernels_enabled():
        return KernelExecutor(db, counters)
    return VectorizedExecutor(db)
