"""Compiled columnar kernels: numpy lowering of the hot vectorized loops.

The vectorized executor's inner loops — selection predicates, hash-join
probes, aggregation folds — are Python-level ``for`` loops over column
arrays.  Following the exemplar strategy of lowering one logical algebra to
a faster execution target rather than re-interpreting it, this module
compiles exactly those three loop families to numpy columnar operations
when numpy is importable, and **only** when the lowering is provably
bit-identical to the Python semantics:

* a column participates only if its values are homogeneous ``int`` /
  ``float`` / ``str`` (``bool`` is excluded — the reference semantics
  treat bool/int mixes as a type error that the kernel could not raise);
* int/float cross-comparisons engage only when every int involved is
  exactly representable as a float64 (``|v| <= 2**53``), because Python
  compares int-vs-float exactly while numpy converts;
* NaN disables join/group/min-max kernels (Python dict keys match NaN by
  object identity; numpy never does);
* integer SUM engages only when the accumulator provably fits int64.

Anything outside these windows falls back to the unmodified Python loop,
so every backend stays bag-identical whether or not numpy is present —
``tests/test_fuzz_differential.py`` pins this property, and one CI leg
runs the tier-1 suite with numpy absent.

Encodings are cached on the owning :class:`~repro.data.relation.ColumnStore`
(``kernel_cache``), tagged with the column length (arrays are append-only,
so a length match proves freshness).  Stores decoded from shared-memory
column pages expose raw int/float page buffers (``ColumnStore.pages``);
those become zero-copy ``np.frombuffer`` views, which is what lets worker
processes of the ``"process"`` backend scan shared segments without
deserializing per query.

Set ``REPRO_KERNELS=0`` to force the pure-Python loops even with numpy
installed (the differential suites use this to cross-check both paths).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Callable

from repro.data.database import Database
from repro.engine.plan import AggregateP
from repro.engine.vectorized import (
    Batch,
    Vector,
    VectorizedExecutor,
    _column_position,
    _take,
)
from repro.expr import ast as e

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as np
except Exception:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: ints beyond this magnitude are not exactly representable as float64;
#: int/float cross-comparisons must then stay in Python (which compares
#: exactly) instead of numpy (which converts).
_EXACT_FLOAT_BOUND = 2**53
#: integer-SUM accumulators must provably stay inside int64.
_SUM_BOUND = 2**62


def kernels_enabled() -> bool:
    """Whether the numpy kernels are active (numpy present and not opted out)."""
    if np is None:
        return False
    flag = os.environ.get("REPRO_KERNELS", "").strip().lower()
    return flag not in ("0", "off", "false", "no")


# ---------------------------------------------------------------------------
# Column encodings
# ---------------------------------------------------------------------------

class ColumnEncoding:
    """One column lowered to numpy: values, NULL mask, and safety flags.

    ``kind`` is ``"i"`` (int64), ``"f"`` (float64) or ``"s"`` (``<U``);
    ``mask`` marks NULL positions (``None`` when the column has no NULLs);
    ``exact`` means the column can cross-compare with the other numeric
    family through float64 without losing precision; ``has_nan`` flags
    float columns containing NaN.
    """

    __slots__ = ("values", "mask", "kind", "exact", "has_nan", "grouping")

    def __init__(self, values: Any, mask: Any, kind: str,
                 exact: bool, has_nan: bool) -> None:
        self.values = values
        self.mask = mask
        self.kind = kind
        self.exact = exact
        self.has_nan = has_nan
        #: Cached group-by structure for aggregations keyed on this whole
        #: column: ``(token, n, gid, reps, order, sorted_gid, starts)``.
        #: Encodings live in the column store's ``kernel_cache``, so over an
        #: immutable (e.g. shared-memory attached) relation the two O(n log n)
        #: sorts behind a group-by are paid once, not per query.
        self.grouping: tuple | None = None


def _finish_numeric(values: Any, mask: Any, kind: str) -> ColumnEncoding:
    valid = values if mask is None else values[~mask]
    if kind == "i":
        exact = bool((np.abs(valid) <= _EXACT_FLOAT_BOUND).all()) \
            if valid.size else True
        return ColumnEncoding(values, mask, "i", exact, False)
    has_nan = bool(np.isnan(valid).any()) if valid.size else False
    return ColumnEncoding(values, mask, "f", True, has_nan)


def _encode_list(values: list[Any]) -> ColumnEncoding | None:
    """Scan one Python column and lower it, or ``None`` when ineligible."""
    kind = ""
    has_null = False
    for v in values:
        if v is None:
            has_null = True
            continue
        t = type(v)
        if t is int:
            k = "i"
        elif t is float:
            k = "f"
        elif t is str:
            k = "s"
        else:
            return None
        if not kind:
            kind = k
        elif kind != k:
            return None
    if not kind:
        return None  # empty or all-NULL: nothing to accelerate
    n = len(values)
    mask = None
    filled = values
    if has_null:
        mask = np.fromiter((v is None for v in values), np.bool_, count=n)
        placeholder: Any = "" if kind == "s" else 0
        filled = [placeholder if v is None else v for v in values]
    if kind == "i":
        try:
            arr = np.asarray(filled, dtype=np.int64)
        except OverflowError:
            return None
        return _finish_numeric(arr, mask, "i")
    if kind == "f":
        return _finish_numeric(np.asarray(filled, dtype=np.float64), mask, "f")
    return ColumnEncoding(np.asarray(filled), mask, "s", True, False)


def _encode_page(page: tuple[str, Any, Any]) -> ColumnEncoding:
    """Zero-copy encoding over a decoded shared-memory column page."""
    kind, mask_buf, payload = page
    values = np.frombuffer(payload, dtype=np.int64 if kind == "q"
                           else np.float64)
    mask = np.frombuffer(mask_buf, dtype=np.bool_) if len(mask_buf) else None
    return _finish_numeric(values, mask, "i" if kind == "q" else "f")


def store_encoding(store: Any, index: int) -> ColumnEncoding | None:
    """The cached encoding of ``store.arrays[index]`` (or ``None``).

    Tagged with the column length: append-only arrays mean a length match
    proves the entry is current, so no invalidation hook is needed.
    """
    column = store.arrays[index]
    n = len(column)
    entry = store.kernel_cache.get(index)
    if entry is not None and entry[0] == n:
        return entry[1]
    page = store.pages.get(index)
    if page is not None and len(page[2]) == 8 * n:
        encoding: ColumnEncoding | None = _encode_page(page)
    else:
        encoding = _encode_list(column)
    store.kernel_cache[index] = (n, encoding)
    return encoding


def _resolve(vector: Vector) -> ColumnEncoding | None:
    """The encoding behind a vector's base array, resolved via ``Vector.nd``."""
    ref = vector.nd
    if type(ref) is tuple:
        return store_encoding(ref[0], ref[1])
    return None


def _gather(encoding: ColumnEncoding, vector: Vector, length: int,
            np_sel: Any) -> tuple[Any, Any]:
    """``(values, mask)`` at batch positions, restricted to ``np_sel``."""
    values, mask = encoding.values, encoding.mask
    if vector.sel is not None:
        base = np.asarray(vector.sel, dtype=np.intp)
        if np_sel is not None:
            base = base[np_sel]
        return values[base], None if mask is None else mask[base]
    if np_sel is not None:
        return values[np_sel], None if mask is None else mask[np_sel]
    if len(values) != length:  # length-limited batch (as-of window)
        return values[:length], None if mask is None else mask[:length]
    return values, mask


# ---------------------------------------------------------------------------
# Selection kernels
# ---------------------------------------------------------------------------

_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _const_compatible(encoding: ColumnEncoding, const: Any) -> bool:
    """Whether comparing ``encoding`` against ``const`` in numpy is exact."""
    t = type(const)
    if encoding.kind == "i":
        if t is int:
            return True
        return t is float and encoding.exact
    if encoding.kind == "f":
        if t is float:
            return True
        return t is int and abs(const) <= _EXACT_FLOAT_BOUND
    return t is str  # kind "s"


def _columns_compatible(a: ColumnEncoding, b: ColumnEncoding) -> bool:
    if a.kind == b.kind:
        return True
    numeric = {"i", "f"}
    return a.kind in numeric and b.kind in numeric and a.exact and b.exact


def kernel_filter(conjunct: e.Expr, batch: Batch
                  ) -> Callable[[Batch, "list[int] | None"], list[int]] | None:
    """Compile one conjunct to a numpy selection, or ``None`` to fall back.

    Mirrors :func:`repro.engine.vectorized.vector_filter` exactly where it
    engages: NULL operands never match, and any operand mix the Python loop
    would reject as a type error simply declines to compile (the fallback
    raises identically).
    """
    if not kernels_enabled():
        return None
    if not isinstance(conjunct, e.Comparison) or conjunct.op not in _OPS:
        return None
    left, op, right = conjunct.left, conjunct.op, conjunct.right
    lpos = _column_position(left, batch.columns)
    rpos = _column_position(right, batch.columns)
    if lpos is not None and isinstance(right, e.Const):
        return _const_kernel(batch, lpos, op, right.value)
    if rpos is not None and isinstance(left, e.Const):
        flipped = conjunct.flipped()
        return _const_kernel(batch, rpos, flipped.op, left.value)
    if lpos is not None and rpos is not None:
        return _column_kernel(batch, lpos, op, rpos)
    return None


def _positions(cmp: Any, np_sel: Any) -> list[int]:
    if np_sel is None:
        return np.flatnonzero(cmp).tolist()
    return np_sel[cmp].tolist()


def _const_kernel(batch: Batch, pos: int, op: str, const: Any
                  ) -> Callable[[Batch, "list[int] | None"], list[int]] | None:
    if const is None:
        return None  # the Python fast path already drops every row
    vector = batch.vectors[pos]
    encoding = _resolve(vector)
    if encoding is None or not _const_compatible(encoding, const):
        return None
    compare = _OPS[op]

    def run(b: Batch, sel: "list[int] | None") -> list[int]:
        np_sel = None if sel is None else np.asarray(sel, dtype=np.intp)
        values, mask = _gather(encoding, vector, b.length, np_sel)
        cmp = compare(values, const)
        if mask is not None:
            cmp &= ~mask
        return _positions(cmp, np_sel)

    return run


def _column_kernel(batch: Batch, lpos: int, op: str, rpos: int
                   ) -> Callable[[Batch, "list[int] | None"], list[int]] | None:
    lvec, rvec = batch.vectors[lpos], batch.vectors[rpos]
    lenc, renc = _resolve(lvec), _resolve(rvec)
    if lenc is None or renc is None or not _columns_compatible(lenc, renc):
        return None
    compare = _OPS[op]

    def run(b: Batch, sel: "list[int] | None") -> list[int]:
        np_sel = None if sel is None else np.asarray(sel, dtype=np.intp)
        lvals, lmask = _gather(lenc, lvec, b.length, np_sel)
        rvals, rmask = _gather(renc, rvec, b.length, np_sel)
        cmp = compare(lvals, rvals)
        if lmask is not None:
            cmp &= ~lmask
        if rmask is not None:
            cmp &= ~rmask
        return _positions(cmp, np_sel)

    return run


# ---------------------------------------------------------------------------
# Hash-join probe kernel
# ---------------------------------------------------------------------------

#: Sorted build-side arrays per hash table, keyed by table identity.  The
#: strong reference to the table keeps ``id()`` valid for the entry's
#: lifetime; relations cache their key indexes per version, so warm joins
#: hit this cache instead of re-sorting.
_TABLE_CACHE: "OrderedDict[int, tuple[Any, tuple | None]]" = OrderedDict()
_TABLE_CACHE_LIMIT = 32
_TABLE_LOCK = threading.Lock()


def _table_arrays(table: dict[Any, list[int]]) -> tuple | None:
    """``(keys, positions, kind, exact, has_nan)`` sorted arrays, or ``None``.

    Keys must be homogeneous int/float/str; buckets hold ascending row
    positions, and the stable argsort keeps them adjacent in bucket order,
    so a ``searchsorted`` range scan reproduces the sequential probe's
    emission order exactly.
    """
    with _TABLE_LOCK:
        entry = _TABLE_CACHE.get(id(table))
        if entry is not None and entry[0] is table:
            _TABLE_CACHE.move_to_end(id(table))
            return entry[1]
    arrays = _build_table_arrays(table)
    with _TABLE_LOCK:
        _TABLE_CACHE[id(table)] = (table, arrays)
        _TABLE_CACHE.move_to_end(id(table))
        while len(_TABLE_CACHE) > _TABLE_CACHE_LIMIT:
            _TABLE_CACHE.popitem(last=False)
    return arrays


def _build_table_arrays(table: dict[Any, list[int]]) -> tuple | None:
    kind = ""
    has_nan = False
    for key in table:
        t = type(key)
        if t is int:
            k = "i"
        elif t is float:
            k = "f"
            if key != key:
                has_nan = True
        elif t is str:
            k = "s"
        else:
            return None
        if not kind:
            kind = k
        elif kind != k:
            return None
    counts = np.fromiter((len(b) for b in table.values()), np.intp,
                         count=len(table))
    total = int(counts.sum())
    positions = np.fromiter((p for b in table.values() for p in b), np.intp,
                            count=total)
    if kind == "i":
        try:
            keys = np.asarray(list(table.keys()), dtype=np.int64)
        except OverflowError:
            return None
    elif kind == "f":
        keys = np.asarray(list(table.keys()), dtype=np.float64)
    else:
        keys = np.asarray(list(table.keys()))
    repeated = np.repeat(keys, counts)
    order = np.argsort(repeated, kind="stable")
    sorted_keys = repeated[order]
    sorted_positions = positions[order]
    if kind == "i":
        exact = bool((np.abs(sorted_keys) <= _EXACT_FLOAT_BOUND).all()) \
            if total else True
    else:
        exact = True
    return sorted_keys, sorted_positions, kind, exact, has_nan


def _probe_compatible(enc: ColumnEncoding, kind: str, exact: bool,
                      has_nan: bool) -> bool:
    if enc.kind == "s" or kind == "s":
        return enc.kind == kind
    if (enc.kind == "f" and enc.has_nan) or has_nan:
        return False  # Python matches NaN keys by identity; numpy never does
    if enc.kind == kind:
        return True
    return enc.exact and exact  # int/float cross-match through float64


def kernel_probe(batch: Batch, idx: list[int], table: Any,
                 null_matches: bool) -> "tuple[list[int], list[int]] | None":
    """Sort-based probe of a single-column hash join, or ``None``.

    Emits ``(left_sel, right_sel)`` in exactly the sequential probe's order:
    probe positions ascending, bucket positions ascending within each.
    """
    if not kernels_enabled() or len(idx) != 1 or type(table) is not dict:
        return None
    vector = batch.vectors[idx[0]]
    encoding = _resolve(vector)
    if encoding is None:
        return None
    if encoding.mask is not None and null_matches:
        return None  # NULL probe keys would have to match NULL build keys
    if not table:
        return [], []
    build = _table_arrays(table)
    if build is None:
        return None
    sorted_keys, sorted_positions, kind, exact, has_nan = build
    if not _probe_compatible(encoding, kind, exact, has_nan):
        return None
    values, mask = _gather(encoding, vector, batch.length, None)
    if mask is not None:
        probe_idx = np.flatnonzero(~mask)
        probe_vals = values[probe_idx]
    else:
        probe_idx = None
        probe_vals = values
    lo = np.searchsorted(sorted_keys, probe_vals, side="left")
    hi = np.searchsorted(sorted_keys, probe_vals, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return [], []
    if probe_idx is None:
        probe_idx = np.arange(len(probe_vals), dtype=np.intp)
    left_sel = np.repeat(probe_idx, counts)
    offsets = np.cumsum(counts) - counts
    starts = np.repeat(lo - offsets, counts)
    right_sel = sorted_positions[np.arange(total, dtype=np.intp) + starts]
    return left_sel.tolist(), right_sel.tolist()


# ---------------------------------------------------------------------------
# Aggregation kernel
# ---------------------------------------------------------------------------

def _group_ids(key_arrays: list[Any], n: int) -> "tuple[Any, Any] | None":
    """``(gid, reps)``: group id per row (first-occurrence order) + reps."""
    if not key_arrays:
        return np.zeros(n, dtype=np.intp), np.zeros(1, dtype=np.intp)
    if len(key_arrays) == 1:
        combined = key_arrays[0]
    else:
        combined = None
        for values in key_arrays:
            _, inverse = np.unique(values, return_inverse=True)
            cardinality = int(inverse.max()) + 1 if inverse.size else 1
            if combined is None:
                combined = inverse.astype(np.int64)
            else:
                if int(combined.max()) + 1 > _SUM_BOUND // cardinality:
                    return None
                combined = combined * cardinality + inverse
    _, first_idx, inverse = np.unique(combined, return_index=True,
                                      return_inverse=True)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(order), dtype=np.intp)
    rank[order] = np.arange(len(order), dtype=np.intp)
    return rank[inverse], first_idx[order]


def _sort_segments(vgid: Any) -> tuple[Any, Any, Any]:
    """``(order, sorted_gid, starts)``: rows stably sorted by group id."""
    order = np.argsort(vgid, kind="stable")
    sorted_gid = vgid[order]
    starts = np.flatnonzero(np.r_[True, sorted_gid[1:] != sorted_gid[:-1]]) \
        if sorted_gid.size else np.empty(0, dtype=np.intp)
    return order, sorted_gid, starts


def _present(acc: Any, counts: Any) -> list[Any]:
    """``acc`` as Python scalars, with ``None`` where a group saw no value."""
    if counts.all():
        return acc.tolist()
    return [value if c else None
            for value, c in zip(acc.tolist(), counts.tolist())]


def kernel_aggregate(plan: AggregateP, batch: Batch
                     ) -> "Batch | None":
    """Lower a whole group-by to bincount/scatter accumulation, or ``None``.

    Engages when every group key is a NULL-free int/float/str column pick
    and every aggregate is a non-DISTINCT COUNT/SUM/MIN/MAX/AVG over an
    int/float column (COUNT accepts any encodable column).  First-occurrence
    group order, in-order float accumulation, and int64 overflow guards keep
    the result bit-identical to the Python fold.
    """
    if not kernels_enabled() or batch.length == 0:
        return None
    n = batch.length
    columns = plan.input.columns

    key_arrays: list[Any] = []
    key_encodings: list[ColumnEncoding] = []
    keys_are_whole_columns = True
    for expr in plan.group_exprs:
        pos = _column_position(expr, columns)
        if pos is None:
            return None
        vector = batch.vectors[pos]
        encoding = _resolve(vector)
        if encoding is None or (encoding.kind == "f" and encoding.has_nan):
            return None
        values, mask = _gather(encoding, vector, n, None)
        if mask is not None and mask.any():
            return None  # NULL group keys group by identity semantics
        if values is not encoding.values:
            # A filtered/selected batch: the grouping depends on the
            # selection, so it cannot be cached on the encoding.
            keys_are_whole_columns = False
        key_arrays.append(values)
        key_encodings.append(encoding)

    specs: list[tuple[str, Any, Any]] = []
    for call, _name in plan.aggregates:
        name = call.name
        if name == "count" and call.args and isinstance(call.args[0], e.Star) \
                and not call.distinct:
            specs.append(("count*", None, None))
            continue
        if call.distinct or not call.args \
                or name not in ("count", "sum", "min", "max", "avg"):
            return None
        pos = _column_position(call.args[0], columns)
        if pos is None:
            return None
        vector = batch.vectors[pos]
        encoding = _resolve(vector)
        if encoding is None:
            return None
        if name != "count":
            if encoding.kind == "s":
                return None
            if encoding.kind == "f" and encoding.has_nan:
                return None
        values, mask = _gather(encoding, vector, n, None)
        if name in ("sum", "avg") and encoding.kind == "i":
            bound = int(np.abs(values).max()) if values.size else 0
            if bound * n >= _SUM_BOUND:
                return None
        specs.append((name, values, mask))

    # Grouping = two O(n log n) sorts (group ids + the segment view for
    # MIN/MAX).  When every key is a whole unfiltered column, both depend
    # only on immutable encoded data, so they are cached on the first
    # key's encoding — a scan→aggregate over an unchanged relation (the
    # process backend's partial-aggregation subplans) pays them once.
    host = key_encodings[0] if keys_are_whole_columns and key_encodings \
        else None
    gid = reps_arr = whole_segments = None
    if host is not None and host.grouping is not None:
        token, cached_n, gid, reps_arr, whole_segments = host.grouping
        if cached_n != n or len(token) != len(key_encodings) or not all(
                a is b for a, b in zip(token, key_encodings)):
            gid = reps_arr = whole_segments = None
    if gid is None:
        grouped = _group_ids(key_arrays, n)
        if grouped is None:
            return None
        gid, reps_arr = grouped
        if host is not None:
            whole_segments = _sort_segments(gid)
            host.grouping = (tuple(key_encodings), n, gid, reps_arr,
                             whole_segments)
    n_groups = len(reps_arr)
    counts_all = np.bincount(gid, minlength=n_groups)

    # Shared segment view for the MIN/MAX reductions: rows stably sorted
    # by group id, with one segment start per non-empty group.  Keyed by
    # the gid array's identity so the unmasked specs all reuse one sort.
    segments: dict[int, tuple[Any, Any, Any]] = {}
    if whole_segments is not None:
        segments[id(gid)] = whole_segments

    def _segmented(vgid: Any) -> tuple[Any, Any, Any]:
        cached = segments.get(id(vgid))
        if cached is None:
            cached = _sort_segments(vgid)
            segments[id(vgid)] = cached
        return cached

    agg_lists: list[list[Any]] = []
    for name, values, mask in specs:
        if name == "count*":
            agg_lists.append(counts_all.tolist())
            continue
        if mask is not None:
            keep = ~mask
            vgid = gid[keep]
            vvals = values[keep]
        else:
            vgid = gid
            vvals = values
        counts = np.bincount(vgid, minlength=n_groups)
        if name == "count":
            agg_lists.append(counts.tolist())
            continue
        if name in ("sum", "avg"):
            acc = np.zeros(n_groups, dtype=vvals.dtype)
            np.add.at(acc, vgid, vvals)  # in index order: Python's fold order
            if name == "sum":
                agg_lists.append(_present(acc, counts))
            else:
                agg_lists.append([total / int(c) if c else None
                                  for total, c in zip(acc.tolist(),
                                                      counts.tolist())])
            continue
        # MIN/MAX are order-insensitive and exact, so a sort-based
        # segmented reduction replaces ``ufunc.at`` (an unbuffered
        # per-element loop, the hot spot of partial aggregation) while
        # staying bit-identical to the Python fold.
        if vvals.dtype == np.int64:
            fill = np.iinfo(np.int64).max if name == "min" \
                else np.iinfo(np.int64).min
            acc = np.full(n_groups, fill, dtype=np.int64)
        else:
            acc = np.full(n_groups, np.inf if name == "min" else -np.inf,
                          dtype=np.float64)
        order, sorted_gid, starts = _segmented(vgid)
        if starts.size:
            sorted_vals = vvals[order]
            reducer = np.minimum if name == "min" else np.maximum
            acc[sorted_gid[starts]] = reducer.reduceat(sorted_vals, starts)
        agg_lists.append(_present(acc, counts))

    reps = reps_arr.tolist()
    vectors = _take(batch.vectors, reps)
    vectors.extend(Vector(values) for values in agg_lists)
    return Batch(plan.columns, vectors, n_groups)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class KernelExecutor(VectorizedExecutor):
    """A vectorized executor whose hot loops run as numpy kernels.

    Every override tries the kernel and falls back to the inherited Python
    loop when the kernel declines — the class is safe to use even when
    numpy is missing (every kernel declines), so ``make_executor`` is the
    only construction point that needs to know.
    """

    def _compile_conjunct(self, conjunct: e.Expr, batch: Batch) -> Any:
        fast = kernel_filter(conjunct, batch)
        if fast is not None:
            return fast
        return super()._compile_conjunct(conjunct, batch)

    def _probe_batch(self, batch: Batch, idx: list[int], table: Any,
                     null_matches: bool) -> tuple[list[int], list[int]]:
        pair = kernel_probe(batch, idx, table, null_matches)
        if pair is not None:
            return pair
        return super()._probe_batch(batch, idx, table, null_matches)

    def _aggregate(self, plan: AggregateP) -> Batch:
        batch = self.batch(plan.input)
        lowered = kernel_aggregate(plan, batch)
        if lowered is not None:
            return lowered
        return super()._aggregate(plan)


def make_executor(db: Database) -> VectorizedExecutor:
    """The fastest exact executor available: kernels when on, else Python."""
    return KernelExecutor(db) if kernels_enabled() else VectorizedExecutor(db)
