"""The logical plan IR shared by all five query-language frontends.

Every frontend (SQL, RA, TRC, DRC, Datalog) compiles — via
:mod:`repro.engine.lower` — into the small operator algebra defined here;
:mod:`repro.engine.optimize` rewrites plans and :mod:`repro.engine.execute`
runs them with hash-based physical operators.  This is the raco-style
logical→physical split: the per-language evaluators remain the semantic
oracles, the plan IR is the single hot path.

Plans are immutable, hashable trees.  Hashability is load-bearing: the
executor memoizes results *by plan value*, which is what makes common
subexpression elimination (and the dependent-join compilation of correlated
subqueries, which duplicates the outer plan structurally) cheap at runtime.

Every node exposes ``columns``, its ordered output column names.  Scalar and
boolean expressions attached to nodes reuse :mod:`repro.expr.ast`; column
references are resolved against ``columns`` with the same qualified /
suffix-matching rules as :func:`repro.ra.ast.resolve_attribute`, but case-
insensitively (SQL identifiers and calculus attributes both compare that
way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.expr.ast import BoolConst, Expr, FuncCall


class PlanError(Exception):
    """Raised for malformed plans or unresolvable column references."""


class DeltaUnavailable(PlanError):
    """A delta scan's window is no longer covered by the relation's log.

    Raised at execution time when a :class:`DeltaScanP` anchors below the
    relation's bounded delta-log floor; the view-maintenance layer catches it
    and rebuilds the view from scratch instead.
    """


class Plan:
    """Base class of logical plan nodes."""

    columns: tuple[str, ...]

    def children(self) -> tuple["Plan", ...]:
        return ()

    def walk(self) -> Iterator["Plan"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def operator_count(self) -> int:
        return sum(1 for _ in self.walk())


@dataclass(frozen=True)
class ScanP(Plan):
    """Read one base relation, exposing its rows under ``columns``."""

    relation: str
    columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))


#: Window modes understood by :class:`DeltaScanP`.
DELTA_SCAN_MODES = ("delta", "asof")


@dataclass(frozen=True)
class DeltaScanP(Plan):
    """Read one *window* of a base relation relative to a version anchor.

    The storage layer only ever appends, so both windows are slices of the
    bag:

    * ``mode="delta"`` — the rows appended after the relation's version was
      ``since`` (the Δ side of an insert-delta plan);
    * ``mode="asof"`` — the rows as of version ``since`` (the "old state"
      side, a prefix of the bag).

    ``since=None`` marks a *template*: :func:`repro.engine.delta.anchor`
    substitutes the per-relation version anchors a materialized view tracks
    before the plan is executed.  Executing an unanchored template is a
    :class:`PlanError`; executing an anchor the relation's bounded delta log
    no longer covers raises :class:`DeltaUnavailable` (the view rebuilds).
    """

    relation: str
    columns: tuple[str, ...] = ()
    since: int | None = None
    mode: str = "delta"

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        if self.mode not in DELTA_SCAN_MODES:
            raise PlanError(f"unknown delta-scan mode {self.mode!r}")


@dataclass(frozen=True)
class FilterP(Plan):
    """Keep rows whose predicate evaluates to TRUE (3-valued logic)."""

    input: Plan
    condition: Expr = field(default_factory=lambda: BoolConst(True))

    @property
    def columns(self) -> tuple[str, ...]:
        return self.input.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)


@dataclass(frozen=True)
class ProjectP(Plan):
    """Evaluate one expression per output column (projection + rename)."""

    input: Plan
    exprs: tuple[Expr, ...] = ()
    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "exprs", tuple(self.exprs))
        object.__setattr__(self, "names", tuple(self.names))
        if len(self.exprs) != len(self.names):
            raise PlanError("projection exprs and names must have the same length")
        if not self.exprs:
            raise PlanError("projection needs at least one column")

    @property
    def columns(self) -> tuple[str, ...]:
        return self.names

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)


@dataclass(frozen=True)
class DistinctP(Plan):
    """Hash-based duplicate elimination."""

    input: Plan

    @property
    def columns(self) -> tuple[str, ...]:
        return self.input.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)


#: Join kinds understood by the executor.
JOIN_KINDS = ("inner", "cross", "semi", "anti")


@dataclass(frozen=True)
class JoinP(Plan):
    """A join; with equi-keys it executes as a hash join.

    ``kind``:

    * ``inner`` / ``cross`` — output is ``left.columns + right.columns``;
    * ``semi`` — left rows with at least one match on the right;
    * ``anti`` — left rows with no match on the right.

    ``left_keys`` / ``right_keys`` name equi-join columns (hashed).  The
    optional ``residual`` condition is evaluated over the concatenated row.
    ``null_matches`` selects the key-comparison semantics: ``False`` means
    SQL equality (NULL never matches, used for keys extracted from
    predicates); ``True`` means plain Python equality (used for natural
    joins, calculus variable joins, and dependent joins, mirroring the
    reference evaluators).
    """

    left: Plan
    right: Plan
    kind: str = "inner"
    left_keys: tuple[str, ...] = ()
    right_keys: tuple[str, ...] = ()
    residual: Expr | None = None
    null_matches: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "left_keys", tuple(self.left_keys))
        object.__setattr__(self, "right_keys", tuple(self.right_keys))
        if self.kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {self.kind!r}")
        if len(self.left_keys) != len(self.right_keys):
            raise PlanError("left and right join keys must have the same length")

    @property
    def columns(self) -> tuple[str, ...]:
        if self.kind in ("semi", "anti"):
            return self.left.columns
        return self.left.columns + self.right.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class SetOpP(Plan):
    """Union / intersection / difference, positionally, with bag or set semantics.

    ``distinct=False`` gives the SQL ``ALL`` variants (bag union,
    multiplicity-respecting intersect/except); ``distinct=True`` the set
    variants.  Output columns are the left input's.
    """

    op: str
    left: Plan
    right: Plan
    distinct: bool = True

    def __post_init__(self) -> None:
        if self.op not in ("union", "intersect", "except"):
            raise PlanError(f"unknown set operation {self.op!r}")
        if len(self.left.columns) != len(self.right.columns):
            raise PlanError(
                f"{self.op}: operands have different arities "
                f"({len(self.left.columns)} vs {len(self.right.columns)})"
            )

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class AggregateP(Plan):
    """Group by ``group_exprs`` and compute ``aggregates`` per group.

    The output row is the group's *first input row* (representative values
    for every input column) followed by one value per aggregate; projections
    above pick out the columns a query actually asked for.  With no grouping
    expressions and empty input, one all-NULL representative row is emitted
    (``COUNT`` → 0, other aggregates → NULL), matching SQL.
    """

    input: Plan
    group_exprs: tuple[Expr, ...] = ()
    aggregates: tuple[tuple[FuncCall, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_exprs", tuple(self.group_exprs))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))

    @property
    def columns(self) -> tuple[str, ...]:
        return self.input.columns + tuple(name for _call, name in self.aggregates)

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)


@dataclass(frozen=True)
class DivideP(Plan):
    """Relational division: left ÷ right (set semantics)."""

    left: Plan
    right: Plan

    def __post_init__(self) -> None:
        right_names = {c.lower() for c in self.right.columns}
        kept = tuple(c for c in self.left.columns if c.lower() not in right_names)
        if not kept:
            raise PlanError("division result would have an empty schema")
        missing = right_names - {c.lower() for c in self.left.columns}
        if missing:
            raise PlanError(f"division: divisor columns {sorted(missing)} not in dividend")

    @property
    def columns(self) -> tuple[str, ...]:
        right_names = {c.lower() for c in self.right.columns}
        return tuple(c for c in self.left.columns if c.lower() not in right_names)

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class SortLimitP(Plan):
    """ORDER BY (over the input's own columns) and/or LIMIT."""

    input: Plan
    keys: tuple[tuple[Expr, bool], ...] = ()  # (expression, ascending)
    limit: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(tuple(k) for k in self.keys))

    @property
    def columns(self) -> tuple[str, ...]:
        return self.input.columns

    def children(self) -> tuple[Plan, ...]:
        return (self.input,)


# ---------------------------------------------------------------------------
# Column resolution
# ---------------------------------------------------------------------------

def _install_cached_hashes() -> None:
    """Memoize each plan node's hash on first use.

    Plans are immutable trees and the executors memoize *by plan value*, so
    every operator lookup re-hashes its whole subtree — O(size) per node,
    O(size²) per execution for deep plans.  Delta plans are re-anchored (new
    objects) on every view refresh, so none of that hashing amortizes.
    Caching the hash on the instance makes memo lookups O(1) after the first
    touch; equality is untouched (still field-based).
    """
    for cls in (ScanP, DeltaScanP, FilterP, ProjectP, DistinctP, JoinP,
                SetOpP, AggregateP, DivideP, SortLimitP):
        generated = cls.__hash__

        def cached(self, _generated=generated):  # type: ignore[no-untyped-def]
            try:
                return object.__getattribute__(self, "_cached_hash")
            except AttributeError:
                value = _generated(self)
                object.__setattr__(self, "_cached_hash", value)
                return value

        cls.__hash__ = cached  # type: ignore[method-assign]


_install_cached_hashes()


def resolve_column(columns: Sequence[str], name: str, qualifier: str | None = None,
                   *, strict: bool = False) -> int:
    """Resolve a possibly-qualified column reference to a position.

    Resolution order mirrors :func:`repro.ra.ast.resolve_attribute` (so RA
    conditions behave identically on the engine and on the reference
    interpreter), case-insensitively:

    1. a column spelled (or suffixed) ``qualifier.name``;
    2. a column spelled exactly ``name``;
    3. a unique column suffixed ``.name``.

    With ``strict=True`` a qualified reference never falls back to rules 2–3:
    the optimizer uses strict mode to decide which side of a join a predicate
    belongs to (where the lenient fallback would mis-place it), while the
    executor compiles with the lenient, reference-compatible rules.
    """
    lowered = [c.lower() for c in columns]
    if qualifier:
        qualified = f"{qualifier}.{name}".lower()
        for i, c in enumerate(lowered):
            if c == qualified:
                return i
        suffix_hits = [i for i, c in enumerate(lowered) if c.endswith(qualified)]
        if len(suffix_hits) == 1:
            return suffix_hits[0]
        if strict:
            raise PlanError(
                f"column {qualifier}.{name} not found in {tuple(columns)}"
            )
    target = name.lower()
    for i, c in enumerate(lowered):
        if c == target:
            return i
    suffix = f".{target}"
    suffix_hits = [i for i, c in enumerate(lowered) if c.endswith(suffix)]
    if len(suffix_hits) == 1:
        return suffix_hits[0]
    if len(suffix_hits) > 1:
        raise PlanError(f"ambiguous column reference {name!r} in {tuple(columns)}")
    raise PlanError(
        f"column {qualifier + '.' if qualifier else ''}{name} not found in {tuple(columns)}"
    )


def has_column(columns: Sequence[str], name: str, qualifier: str | None = None,
               *, strict: bool = False) -> bool:
    """True iff :func:`resolve_column` would succeed."""
    try:
        resolve_column(columns, name, qualifier, strict=strict)
        return True
    except PlanError:
        return False


def explain(plan: Plan, *, indent: int = 0) -> str:
    """A compact, indented rendering of a plan tree (for debugging/benchmarks)."""
    pad = "  " * indent
    label = type(plan).__name__.removesuffix("P")
    details = ""
    if isinstance(plan, ScanP):
        details = f" {plan.relation}"
    elif isinstance(plan, DeltaScanP):
        anchor = "?" if plan.since is None else str(plan.since)
        details = f" {plan.relation} [{plan.mode} @ {anchor}]"
    elif isinstance(plan, JoinP):
        keys = ", ".join(f"{l}={r}" for l, r in zip(plan.left_keys, plan.right_keys))
        details = f" [{plan.kind}{': ' + keys if keys else ''}]"
    elif isinstance(plan, SetOpP):
        details = f" [{plan.op}{'' if plan.distinct else ' all'}]"
    elif isinstance(plan, ProjectP):
        details = f" -> ({', '.join(plan.names)})"
    lines = [f"{pad}{label}{details}"]
    for child in plan.children():
        lines.append(explain(child, indent=indent + 1))
    return "\n".join(lines)
