"""Multi-process scatter-gather over shared-memory column pages
(the ``"process"`` backend).

The sharded backend (:mod:`repro.engine.sharded`) already proves which
plans decompose into independent per-shard subplans plus a gather step —
but its shards execute on *threads*, so CPU-bound row work serializes on
the GIL.  This backend reuses the same compilation (it subclasses
:class:`~repro.engine.sharded.ShardedBackend`, inheriting the distribution
analysis, plan cache, finisher absorption, and gather-side combine) and
moves the per-shard execution into **worker processes**:

* **transport**: each shard's relations are serialized once into
  ``multiprocessing.shared_memory`` column pages
  (:meth:`~repro.data.relation.ColumnStore.encode_pages` — a compact
  per-column encoding for int/float/str with exact ``None``/``bool``/mixed
  round-trip; string and low-cardinality mixed columns ship as a sorted
  value dictionary plus an int32/int64 code array, so the transport moves
  codes, not strings, and the workers' kernels compute on the codes
  directly) through the database's
  :class:`~repro.data.sharded.SharedPagePublisher`.  Segments are
  versioned by the relation version, so an unchanged shard is **never
  re-serialized**: steady-state reads publish nothing and ship only a
  pickled subplan and a manifest of segment names per query.  Broadcast
  relations are published once and attached by every worker;
* **workers** attach each manifest segment read-only, rebuild the relation
  around the decoded store (zero-copy page views for int/float columns),
  cache the attachment by segment name — names are never reused, so a
  version bump naturally invalidates — and execute the scatter subplan
  with the kernel-accelerated executor
  (:func:`repro.engine.kernels.make_executor`).  Only the gathered result
  rows cross the pipe back;
* **gather** runs in the parent via :meth:`ShardedPlan.finish` — partial
  aggregates combine, absorbed finishers replay — identically to the
  threaded backend, so ``tests/test_fuzz_differential.py`` pins the whole
  stack bag-equal to ``"vectorized"``;
* **resilience**: a crashed worker breaks the pool; the backend shuts the
  broken pool down, re-executes the query in-process (always correct),
  and restarts the pool lazily on the next query.
  :func:`~repro.data.sharded.reap_stale_segments` runs at every pool
  startup so segments leaked by a previous crashed publisher are removed.

``"single"`` (routed point queries) and ``"fallback"`` plans run in the
parent process — the row counts involved never repay process IPC.

Environment knobs: ``REPRO_PROCESS_WORKERS`` pins the pool width (default:
CPU count, clamped to [1, 16]); ``REPRO_PROCESS_START_METHOD`` overrides
the ``multiprocessing`` start method (default: ``fork`` where available —
workers then inherit the parent's modules without re-import);
``REPRO_KERNELS`` (see :mod:`repro.engine.kernels`) controls the compiled
kernels in both parent and workers.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.sharded import (
    DEFAULT_N_SHARDS,
    PageSegment,
    attach_segment,
    detach_segment,
    reap_stale_segments,
)
from repro.engine.execute import Row
from repro.engine.plan import Plan
from repro.engine.sharded import ShardedBackend

__all__ = [
    "PROCESS_BACKEND",
    "ProcessBackend",
    "default_process_workers",
]


def default_process_workers() -> int:
    """Pool width: ``REPRO_PROCESS_WORKERS`` or CPU count, clamped [1, 16]."""
    env = os.environ.get("REPRO_PROCESS_WORKERS", "").strip()
    if env:
        try:
            return max(1, min(16, int(env)))
        except ValueError:
            pass
    return max(1, min(16, os.cpu_count() or 1))


def _default_start_method() -> str | None:
    """``fork`` where supported (fast, inherits modules), else the default."""
    env = os.environ.get("REPRO_PROCESS_START_METHOD", "").strip()
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Attached segments this worker keeps mapped, keyed by segment name.
#: Segment names embed a publisher-side sequence number and are never
#: reused, so a republished (version-bumped) relation arrives under a new
#: name and the stale entry simply ages out of the LRU.
_ATTACH_LIMIT = 64
_attached: "OrderedDict[str, tuple[Relation, Any]]" = OrderedDict()


def _attached_relation(segment: PageSegment) -> Relation:
    cached = _attached.get(segment.name)
    if cached is not None:
        _attached.move_to_end(segment.name)
        return cached[0]
    relation, shm = attach_segment(segment)
    _attached[segment.name] = (relation, shm)
    while len(_attached) > _ATTACH_LIMIT:
        _, (old_relation, old_shm) = _attached.popitem(last=False)
        del old_relation  # release page views before unmapping
        detach_segment(old_shm)
    return relation


def _run_subplans(plan_blob: bytes,
                  manifests: "list[list[PageSegment]]") -> list[list[Row]]:
    """Execute the scatter subplan against each shard manifest in turn.

    One task carries *several* shard manifests: the parent chunks the
    shards over at most ``workers`` tasks, so a query costs
    ``min(n_shards, workers)`` pool round-trips instead of one per shard
    (the dominant overhead when the subplan itself is kernel-fast).

    The executor (and its per-relation caches) is rebuilt per shard; the
    expensive state — the attached column stores — persists in the
    segment cache above, so repeated queries over an unchanged shard skip
    both deserialization and attachment.
    """
    from repro.engine.kernels import make_executor

    plan: Plan = pickle.loads(plan_blob)
    parts: list[list[Row]] = []
    for manifest in manifests:
        db = Database()
        for segment in manifest:
            db.add_relation(_attached_relation(segment))
        parts.append(make_executor(db).batch(plan).rows())
    return parts


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

class ProcessBackend(ShardedBackend):
    """:class:`ExecutorBackend` running shard subplans in worker processes.

    ``get_backend("process")`` returns a process-wide singleton whose
    worker pool is shared across executions and shut down at interpreter
    exit (:mod:`repro.engine.lifecycle`); construct instances directly to
    pin the shard count, worker count, or start method.  ``close()``
    terminates the pool; the next execution recreates it.
    """

    name = "process"

    def __init__(self, n_shards: int = DEFAULT_N_SHARDS,
                 shard_keys: "dict[str, Any] | None" = None,
                 workers: int | None = None,
                 start_method: str | None = None) -> None:
        super().__init__(n_shards, shard_keys)
        self.workers = workers if workers is not None \
            else default_process_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._start_method = start_method if start_method is not None \
            else _default_start_method()
        self._exec_pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self.counters["pool_recovery"] = 0

    # -- pool lifecycle ----------------------------------------------------

    def pool(self) -> ProcessPoolExecutor:
        pool = self._exec_pool
        if pool is None:
            with self._pool_lock:
                pool = self._exec_pool
                if pool is None:
                    # Audit /dev/shm for segments leaked by dead publishers
                    # before adding our own workers to the mix.
                    reap_stale_segments()
                    context = multiprocessing.get_context(self._start_method) \
                        if self._start_method else multiprocessing.get_context()
                    pool = ProcessPoolExecutor(
                        max_workers=self.workers, mp_context=context)
                    self._exec_pool = pool
            from repro.engine import lifecycle

            lifecycle.register(self)
        return pool

    def close(self) -> None:
        """Shut the worker pool down and unlink published page segments.

        Both are recreated lazily by the next execution.  Covers the
        sharded views this backend built itself for plain databases —
        user-owned :class:`~repro.data.sharded.ShardedDatabase` instances
        are closed by their owner (or their publisher's exit hook).
        """
        with self._pool_lock:
            pool, self._exec_pool = self._exec_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._lock:
            views = [cached[1] for cached in self._auto.values()]
        for view in views:
            view.close()

    def _discard_pool(self) -> None:
        """Drop a broken pool without waiting on its dead workers."""
        with self._pool_lock:
            pool, self._exec_pool = self._exec_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- execution ---------------------------------------------------------

    def execute(self, plan: Plan, db: Database) -> list[Row]:
        sharded = self.sharded_view(db)
        compiled = self.plan_for(plan, sharded)
        self._bump({"scatter": "scatter", "single": "single_shard",
                    "fallback": "fallback"}[compiled.mode])
        if compiled.mode != "scatter":
            # Routed point queries and fallbacks: a handful of rows (or a
            # plan that cannot scatter) never repays process IPC.
            return compiled.execute(sharded, None, self.counters)
        assert compiled.scatter is not None
        try:
            plan_blob = pickle.dumps(compiled.scatter,
                                     protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # A plan that cannot cross the process boundary still has exact
            # in-process semantics.
            return compiled.execute(sharded, None, self.counters)
        manifests = self._publish(compiled, sharded)
        # Chunk the shards over at most ``workers`` tasks (round-robin so
        # every chunk stays balanced): the per-task pool round-trip is the
        # dominant overhead once the subplans are kernel-fast, so a
        # 1-worker pool pays one round-trip for the whole scatter, not one
        # per shard.
        n_tasks = max(1, min(self.workers, len(manifests)))
        chunks = [manifests[i::n_tasks] for i in range(n_tasks)]
        try:
            pool = self.pool()
            futures = [pool.submit(_run_subplans, plan_blob, chunk)
                       for chunk in chunks]
            grouped = [future.result() for future in futures]
        except (BrokenProcessPool, OSError, RuntimeError):
            # A worker died (or the pool could not start): recover by
            # discarding the pool and re-executing in-process — same plan,
            # same semantics, no parallelism.  The next query restarts the
            # pool (reaping any segments the dead workers pinned).
            self._discard_pool()
            self._bump("pool_recovery")
            return compiled.execute(sharded, None, self.counters)
        # Undo the round-robin chunking so parts line up with shard order
        # (combine functions are order-insensitive, but a deterministic
        # gather keeps row order reproducible run to run).
        parts: list[list[Row]] = [[] for _ in manifests]
        for i, group in enumerate(grouped):
            for j, part in enumerate(group):
                parts[i + j * n_tasks] = part
        return compiled.finish(sharded, parts, self.counters)

    def _publish(self, compiled: Any, sharded: Any
                 ) -> "list[list[PageSegment]]":
        """Per-shard segment manifests for a scatter plan's relations.

        Publication is version-keyed inside the publisher: unchanged
        relations reuse their live segment, so this is a dictionary probe
        per relation on the steady-state path.  Broadcast relations use a
        shard-independent slot and appear in every manifest.
        """
        publisher = sharded.page_publisher()
        broadcast = [publisher.publish(f"@/{name}",
                                       sharded.broadcast_relation(name))
                     for name in sorted(compiled.broadcast)]
        manifests: list[list[PageSegment]] = []
        for i in range(sharded.n_shards):
            shard = sharded.shard(i)
            manifest = [publisher.publish(f"{i}/{name}", shard.relation(name))
                        for name in sorted(compiled.partitioned)]
            manifest.extend(broadcast)
            manifests.append(manifest)
        return manifests


#: The process-wide backend instance ``get_backend("process")`` serves.
PROCESS_BACKEND = ProcessBackend()
