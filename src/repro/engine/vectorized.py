"""Columnar, batch-at-a-time plan execution (the ``"vectorized"`` backend).

Where :class:`repro.engine.execute.Executor` streams Python row tuples
through each operator, this backend moves whole columns:

* **scans** read the per-attribute arrays that
  :meth:`repro.data.relation.Relation.column_store` maintains — no per-query
  transposition and no row-tuple allocation;
* **filters** compile simple comparisons into tight per-column selection
  loops that produce an index vector instead of calling a closure chain per
  row; remaining conjuncts fall back to the row-compiled predicates (shared
  with the row backend, so three-valued logic and type-error semantics agree
  by construction);
* **hash joins** build and probe on raw column values (no key-tuple
  allocation for single-column keys) and emit *selection vectors* — output
  columns stay virtual ``(base array, index vector)`` pairs until something
  actually reads them (late materialization), so an n-way join composes one
  index vector per side instead of copying every column at every step;
* **aggregation** groups on column arrays and folds each aggregate over the
  grouped index lists.

Set operations, division, and sorting materialize rows and reuse the row
backend's algorithms verbatim — they are not on the hot path, and sharing
the code is what keeps the two backends bag-equal (pinned over the whole
canonical catalog by ``tests/test_vectorized.py``).

The backend satisfies the :class:`repro.engine.execute.ExecutorBackend`
protocol; select it with ``execute_plan(plan, db, backend="vectorized")`` or
``QueryVisualizationPipeline(backend="vectorized")``.
"""

from __future__ import annotations

import operator
from collections import Counter
from typing import Any, Callable, Sequence

from repro.data.database import Database
from repro.expr import ast as e
from repro.expr.eval import ExprError
from repro.sql.evaluate import _dedupe
from repro.engine.execute import (
    Row,
    _split_name,
    compiled_expr,
    compiled_predicate,
    delta_scan_rows,
)
from repro.engine.lower import _PositionCol
from repro.engine.plan import (
    AggregateP,
    DeltaScanP,
    DistinctP,
    DivideP,
    FilterP,
    JoinP,
    Plan,
    PlanError,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
    resolve_column,
)

try:  # only needed to compose numpy selections the kernel layer emits
    import numpy as _np
except Exception:  # pragma: no cover - the numpy-absent leg
    _np = None  # type: ignore[assignment]

_COMPARATORS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


# ---------------------------------------------------------------------------
# Batches: columns with late materialization
# ---------------------------------------------------------------------------

class Vector:
    """One column of a batch: a base array plus an optional selection vector.

    ``sel is None`` means the column *is* ``data``; otherwise position ``i``
    of the column is ``data[sel[i]]``.  Selections compose without touching
    the base arrays, which is what keeps multi-join pipelines cheap.  A
    selection is normally a Python list of ints; the kernel layer's probe
    and DISTINCT kernels hand back numpy index arrays instead, which
    compose in C (:func:`_take`) and convert to Python ints only when a
    column is materialized.

    ``nd`` is the kernel layer's hook: scans set it to ``(store, index)``
    naming the backing :class:`~repro.data.relation.ColumnStore` column, and
    selection composition carries it along (the composed ``sel`` still
    indexes the same base array).  :mod:`repro.engine.kernels` resolves it
    lazily into a cached numpy encoding; everything else ignores it.
    """

    __slots__ = ("data", "sel", "nd")

    def __init__(self, data: list[Any], sel: "list[int] | Any" = None,
                 nd: Any = None) -> None:
        self.data = data
        self.sel = sel
        self.nd = nd

    def materialize(self) -> list[Any]:
        if self.sel is None:
            return self.data
        data = self.data
        sel = self.sel
        if type(sel) is not list:  # numpy index array from a kernel
            sel = sel.tolist()
        return [data[i] for i in sel]


class Batch:
    """An ordered bag of rows stored column-wise."""

    __slots__ = ("columns", "vectors", "length")

    def __init__(self, columns: tuple[str, ...], vectors: list[Vector],
                 length: int) -> None:
        self.columns = columns
        self.vectors = vectors
        self.length = length

    @classmethod
    def from_rows(cls, columns: tuple[str, ...], rows: Sequence[Row]) -> "Batch":
        if rows:
            arrays = [list(column) for column in zip(*rows)]
        else:
            arrays = [[] for _ in columns]
        return cls(columns, [Vector(a) for a in arrays], len(rows))

    def rows(self) -> list[Row]:
        """Materialize the row view (the backend's final output)."""
        if not self.vectors:
            return [()] * self.length
        columns = [v.materialize() for v in self.vectors]
        if columns and len(columns[0]) != self.length:
            # Length-limited batch (an as-of window shares the relation's
            # full arrays): truncate to the logical length.
            return list(zip(*(column[:self.length] for column in columns)))
        return list(zip(*columns))

    def take(self, sel: list[int]) -> "Batch":
        """The sub-batch at positions ``sel`` (late: composes selections)."""
        return Batch(self.columns, _take(self.vectors, sel), len(sel))


def _take(vectors: list[Vector], sel: "list[int] | Any") -> list[Vector]:
    """Compose ``sel`` onto each vector, once per *distinct* source selection.

    Columns that came from the same operator share one selection list, so an
    n-column side of a join costs one composition, not n.  When either side
    is a numpy index array (kernel probe/DISTINCT output) the composition
    is a fancy index instead of a Python loop.
    """
    composed: dict[int, Any] = {}
    out = []
    for v in vectors:
        if v.sel is None:
            out.append(Vector(v.data, sel, v.nd))
            continue
        new_sel = composed.get(id(v.sel))
        if new_sel is None:
            base = v.sel
            if type(base) is list and type(sel) is list:
                new_sel = [base[i] for i in sel]
            else:  # numpy is importable: kernel selections only exist then
                new_sel = _np.asarray(base, dtype=_np.intp)[sel]
            composed[id(v.sel)] = new_sel
        out.append(Vector(v.data, new_sel, v.nd))
    return out


# ---------------------------------------------------------------------------
# Vectorized filter compilation
# ---------------------------------------------------------------------------

def _column_position(expr: e.Expr, columns: tuple[str, ...]) -> int | None:
    if isinstance(expr, _PositionCol):
        return expr.position
    if isinstance(expr, e.Col):
        try:
            return resolve_column(columns, expr.name, expr.qualifier)
        except PlanError:
            return None
    return None


def vector_filter(conjunct: e.Expr, columns: tuple[str, ...]
                  ) -> Callable[[Batch, list[int] | None], list[int]] | None:
    """Compile one conjunct into a column-selection loop, or ``None``.

    Only simple comparisons (column vs. constant, column vs. column) get the
    fast path; everything else is handled by the caller's row fallback.  The
    loops replicate :func:`repro.expr.eval._compare` exactly: NULL operands
    never match, and str/non-str or bool/non-bool mixes raise
    :class:`ExprError` just like the reference interpreters.
    """
    if not isinstance(conjunct, e.Comparison) or conjunct.op not in _COMPARATORS:
        return None
    left, op, right = conjunct.left, conjunct.op, conjunct.right
    lpos = _column_position(left, columns)
    rpos = _column_position(right, columns)
    if lpos is not None and isinstance(right, e.Const):
        return _compare_const(lpos, op, right.value)
    if rpos is not None and isinstance(left, e.Const):
        flipped = conjunct.flipped()
        return _compare_const(rpos, flipped.op, left.value)
    if lpos is not None and rpos is not None:
        return _compare_columns(lpos, op, rpos)
    return None


def _compare_const(pos: int, op: str, const: Any
                   ) -> Callable[[Batch, list[int] | None], list[int]]:
    if const is None:
        # NULL never compares TRUE: the conjunct drops every row.
        return lambda batch, sel: []
    cmp = _COMPARATORS[op]
    const_is_str = isinstance(const, str)
    const_is_bool = isinstance(const, bool)

    def run(batch: Batch, sel: list[int] | None) -> list[int]:
        column = batch.vectors[pos].materialize()
        out: list[int] = []
        append = out.append
        indices = range(batch.length) if sel is None else sel
        for i in indices:
            v = column[i]
            if v is None:
                continue
            if isinstance(v, str) != const_is_str or isinstance(v, bool) != const_is_bool:
                raise ExprError(f"cannot compare {v!r} with {const!r}")
            if cmp(v, const):
                append(i)
        return out

    return run


def _compare_columns(lpos: int, op: str, rpos: int
                     ) -> Callable[[Batch, list[int] | None], list[int]]:
    cmp = _COMPARATORS[op]

    def run(batch: Batch, sel: list[int] | None) -> list[int]:
        lcol = batch.vectors[lpos].materialize()
        rcol = batch.vectors[rpos].materialize()
        out: list[int] = []
        append = out.append
        indices = range(batch.length) if sel is None else sel
        for i in indices:
            a = lcol[i]
            b = rcol[i]
            if a is None or b is None:
                continue
            if isinstance(a, str) != isinstance(b, str) \
                    or isinstance(a, bool) != isinstance(b, bool):
                raise ExprError(f"cannot compare {a!r} with {b!r}")
            if cmp(a, b):
                append(i)
        return out

    return run


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class VectorizedExecutor:
    """Evaluates plans column-at-a-time, memoizing batches per plan value."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._memo: dict[Plan, Batch] = {}

    def batch(self, plan: Plan) -> Batch:
        cached = self._memo.get(plan)
        if cached is None:
            cached = self._compute(plan)
            self._memo[plan] = cached
        return cached

    # -- operators -------------------------------------------------------

    def _compute(self, plan: Plan) -> Batch:
        if isinstance(plan, ScanP):
            return self._scan(plan)
        if isinstance(plan, DeltaScanP):
            return self._delta_scan(plan)
        if isinstance(plan, FilterP):
            return self._filter(plan)
        if isinstance(plan, ProjectP):
            return self._project(plan)
        if isinstance(plan, DistinctP):
            return self._distinct(plan)
        if isinstance(plan, JoinP):
            return self._join(plan)
        if isinstance(plan, SetOpP):
            return self._setop(plan)
        if isinstance(plan, AggregateP):
            return self._aggregate(plan)
        if isinstance(plan, DivideP):
            return self._divide(plan)
        if isinstance(plan, SortLimitP):
            return self._sort_limit(plan)
        raise PlanError(f"cannot execute {type(plan).__name__}")

    def _scan(self, plan: ScanP) -> Batch:
        relation = self.db.relation(plan.relation)
        if len(plan.columns) != relation.schema.arity:
            raise PlanError(
                f"scan of {plan.relation} expects arity {len(plan.columns)}, "
                f"relation has {relation.schema.arity}"
            )
        store = relation.column_store()
        return Batch(plan.columns,
                     [Vector(a, None, (store, i))
                      for i, a in enumerate(store.arrays)],
                     len(relation))

    def _delta_scan(self, plan: DeltaScanP) -> Batch:
        """Columnar delta/asof windows.

        The ``asof`` window is a *prefix* of the bag (storage only appends),
        so it shares the maintained column store's arrays **without copying**
        and truncates the batch's logical length — refresh cost must not
        scale with base-table size.  Consumers respect ``Batch.length``; the
        hash-join build side short-circuits further via the capped
        :class:`_PrefixTable` over the relation's cached key index.  The
        ``delta`` window is small by construction and transposes.
        """
        if plan.mode == "asof" and plan.since is not None:
            relation = self.db.relation(plan.relation)
            count = relation.delta_count_since(plan.since)
            if count is not None and len(plan.columns) == relation.schema.arity:
                store = relation.column_store()
                keep = len(relation) - count
                return Batch(plan.columns,
                             [Vector(a, None, (store, i))
                              for i, a in enumerate(store.arrays)], keep)
        return Batch.from_rows(plan.columns, delta_scan_rows(self.db, plan))

    def _filter(self, plan: FilterP) -> Batch:
        """Narrow the batch conjunct by conjunct, in the conjunction's order.

        Each conjunct either compiles to a column-selection loop
        (:func:`vector_filter`) or falls back to the row-compiled predicate
        over the still-selected rows.  Keeping the original order means a
        conjunct that raises (type mismatch, division by zero) raises here
        exactly when the row backend would have reached it.
        """
        batch = self.batch(plan.input)
        sel: list[int] | None = None
        materialized: list[list[Any]] | None = None
        for conjunct in e.conjuncts(plan.condition):
            fast = self._compile_conjunct(conjunct, batch)
            if fast is not None:
                sel = fast(batch, sel)
                continue
            predicate = compiled_predicate(conjunct, batch.columns)
            if materialized is None:
                materialized = [v.materialize() for v in batch.vectors]
            indices = range(batch.length) if sel is None else sel
            sel = [i for i in indices
                   if predicate(tuple(column[i] for column in materialized))]
        if sel is None:
            return batch
        return batch.take(sel)

    def _compile_conjunct(self, conjunct: e.Expr, batch: Batch
                          ) -> Callable[[Batch, list[int] | None],
                                        list[int]] | None:
        """Compile one filter conjunct — the kernel backend's override seam."""
        return vector_filter(conjunct, batch.columns)

    def _project(self, plan: ProjectP) -> Batch:
        batch = self.batch(plan.input)
        vectors: list[Vector] = []
        rows: list[Row] | None = None
        for expr in plan.exprs:
            pos = _column_position(expr, plan.input.columns)
            if pos is not None:
                vectors.append(batch.vectors[pos])
                continue
            if rows is None:
                rows = batch.rows()
            fn = compiled_expr(expr, plan.input.columns)
            vectors.append(Vector([fn(row) for row in rows]))
        return Batch(plan.names, vectors, batch.length)

    def _distinct(self, plan: DistinctP) -> Batch:
        batch = self.batch(plan.input)
        return batch.take(self._distinct_positions(batch))

    def _distinct_positions(self, batch: Batch) -> list[int]:
        """First-occurrence positions of distinct rows — the kernel seam."""
        seen: set[Row] = set()
        add = seen.add
        sel: list[int] = []
        append = sel.append
        for i, row in enumerate(batch.rows()):
            if row not in seen:
                add(row)
                append(i)
        return sel

    # -- joins -------------------------------------------------------------

    def _join(self, plan: JoinP) -> Batch:
        left = self.batch(plan.left)
        if plan.kind in ("inner", "cross") and not plan.left_keys \
                and plan.residual is None:
            right = self.batch(plan.right)
            nl, nr = left.length, right.length
            left_sel = [i for i in range(nl) for _ in range(nr)]
            right_sel = list(range(nr)) * nl
            return Batch(plan.columns,
                         _take(left.vectors, left_sel) + _take(right.vectors, right_sel),
                         nl * nr)

        left_cols = plan.left.columns
        right_cols = plan.right.columns
        left_idx = [resolve_column(left_cols, *_split_name(k)) for k in plan.left_keys]
        right_idx = [resolve_column(right_cols, *_split_name(k)) for k in plan.right_keys]
        residual = None
        if plan.residual is not None:
            residual = compiled_predicate(plan.residual, left_cols + right_cols)
        right = self.batch(plan.right)

        if plan.kind in ("semi", "anti"):
            return self._semi_anti(plan, left, right, left_idx, right_idx, residual)

        table = self._hash_table(plan.right, right, right_idx, plan.null_matches)
        left_sel, right_sel = self._probe_batch(left, left_idx, table,
                                                plan.null_matches)
        if residual is not None:
            lmat = [v.materialize() for v in left.vectors]
            rmat = [v.materialize() for v in right.vectors]
            keep = []
            for k in range(len(left_sel)):
                i, j = left_sel[k], right_sel[k]
                row = tuple(c[i] for c in lmat) + tuple(c[j] for c in rmat)
                if residual(row):
                    keep.append(k)
            left_sel = [left_sel[k] for k in keep]
            right_sel = [right_sel[k] for k in keep]
        return Batch(plan.columns,
                     _take(left.vectors, left_sel) + _take(right.vectors, right_sel),
                     len(left_sel))

    def _hash_table(self, right_plan: Plan, right: Batch, right_idx: list[int],
                    null_matches: bool) -> "dict[Any, list[int]] | _PrefixTable":
        """The build side of a hash join, reusing the storage layer's cached
        positional key indexes when the build input is a base-table scan.

        An ``asof`` delta window is a positional *prefix* of its base
        relation, so it reuses the same cached index with matches capped at
        the prefix length (:class:`_PrefixTable`) instead of rebuilding a
        hash table over the old state on every view refresh — this is what
        keeps incremental join maintenance independent of base-table size.
        """
        if isinstance(right_plan, ScanP) and right_idx:
            relation = self.db.relation(right_plan.relation)
            return relation.key_index(right_idx, skip_nulls=not null_matches)
        if isinstance(right_plan, DeltaScanP) and right_plan.mode == "asof" \
                and right_plan.since is not None and right_idx:
            relation = self.db.relation(right_plan.relation)
            count = relation.delta_count_since(right_plan.since)
            if count is not None:
                table = relation.key_index(right_idx,
                                           skip_nulls=not null_matches)
                if count == 0:
                    return table
                return _PrefixTable(table, len(relation) - count)
        return _build_hash_table(right, right_idx, null_matches)

    def _probe_batch(self, batch: Batch, idx: list[int],
                     table: dict[Any, list[int]],
                     null_matches: bool) -> tuple[list[int], list[int]]:
        """Probe phase of the hash join — the parallel backend's partition seam."""
        return _probe(batch, idx, table, null_matches)

    def _semi_anti(self, plan: JoinP, left: Batch, right: Batch,
                   left_idx: list[int], right_idx: list[int],
                   residual: Callable[[Row], bool] | None) -> Batch:
        want_match = plan.kind == "semi"
        null_matches = plan.null_matches
        lkeys = _key_columns(left, left_idx)
        sel: list[int] = []
        if residual is None:
            if right_idx:
                keys: Any = self._hash_table(
                    plan.right, right, right_idx, null_matches).keys()
            else:
                keys = _semi_key_set(right, right_idx, null_matches)
            for i, key in enumerate(_iter_key_list(lkeys, left.length)):
                if not null_matches and _has_null(key, left_idx):
                    matched = False
                else:
                    matched = key in keys
                if matched == want_match:
                    sel.append(i)
            return Batch(plan.columns, _take(left.vectors, sel), len(sel))
        table = self._hash_table(plan.right, right, right_idx, null_matches)
        lmat = [v.materialize() for v in left.vectors]
        rmat = [v.materialize() for v in right.vectors]
        for i, key in enumerate(_iter_key_list(lkeys, left.length)):
            if not null_matches and _has_null(key, left_idx):
                matched = False
            else:
                lrow = tuple(c[i] for c in lmat)
                matched = any(
                    residual(lrow + tuple(c[j] for c in rmat))
                    for j in table.get(key, ())
                )
            if matched == want_match:
                sel.append(i)
        return Batch(plan.columns, _take(left.vectors, sel), len(sel))

    # -- set operations, aggregation, the rest -----------------------------

    def _setop(self, plan: SetOpP) -> Batch:
        left = self.batch(plan.left)
        right = self.batch(plan.right)
        if plan.op == "union" and not plan.distinct:
            # Bag union is pure columnar concatenation — but each side must
            # be cut to its *logical* length first: a length-limited batch
            # (an as-of window) shares the relation's full arrays, and
            # concatenating those raw would splice out-of-window rows in.
            vectors = [Vector(_exact(l, left.length) + _exact(r, right.length))
                       for l, r in zip(left.vectors, right.vectors)]
            return Batch(plan.columns, vectors, left.length + right.length)
        lrows = left.rows()
        rrows = right.rows()
        if plan.op == "union":
            return Batch.from_rows(plan.columns, _dedupe(lrows + rrows))
        if plan.op == "intersect":
            if plan.distinct:
                rset = set(rrows)
                return Batch.from_rows(plan.columns,
                                       _dedupe([row for row in lrows if row in rset]))
            counts = Counter(rrows)
            out = []
            for row in lrows:
                if counts.get(row, 0) > 0:
                    counts[row] -= 1
                    out.append(row)
            return Batch.from_rows(plan.columns, out)
        # except
        if plan.distinct:
            rset = set(rrows)
            return Batch.from_rows(plan.columns,
                                   _dedupe([row for row in lrows if row not in rset]))
        counts = Counter(rrows)
        out = []
        for row in lrows:
            if counts.get(row, 0) > 0:
                counts[row] -= 1
            else:
                out.append(row)
        return Batch.from_rows(plan.columns, out)

    def _aggregate(self, plan: AggregateP) -> Batch:
        batch = self.batch(plan.input)
        columns = plan.input.columns
        n = batch.length
        rows: list[Row] | None = None

        def value_array(expr: e.Expr) -> list[Any]:
            nonlocal rows
            pos = _column_position(expr, columns)
            if pos is not None:
                array = batch.vectors[pos].materialize()
                return array if len(array) == n else array[:n]
            if rows is None:
                rows = batch.rows()
            fn = compiled_expr(expr, columns)
            return [fn(row) for row in rows]

        key_arrays = [value_array(x) for x in plan.group_exprs]
        reps, members = self._group_members(key_arrays, n)

        agg_arrays: list[list[Any]] = []
        for call, _name in plan.aggregates:
            agg_arrays.append(self._fold_aggregate(call, members, value_array))

        if not plan.group_exprs and not members:
            # SQL: an ungrouped aggregate over empty input yields one row
            # (all-NULL representatives; COUNT folds to 0 above).
            vectors = [Vector([None]) for _ in columns]
            vectors.extend(Vector(arr if arr else [self._empty_fold(call)])
                           for (call, _n), arr in zip(plan.aggregates, agg_arrays))
            return Batch(plan.columns, vectors, 1)

        vectors = _take(batch.vectors, reps)
        vectors.extend(Vector(arr) for arr in agg_arrays)
        return Batch(plan.columns, vectors, len(reps))

    def _group_members(self, key_arrays: list[list[Any]], n: int
                       ) -> tuple[list[int], list[list[int]]]:
        """Group row indices by key — the parallel backend's partition seam.

        Returns ``(reps, members)``: the first-occurrence index of each
        group (in first-occurrence order) and the member indices per group.
        """
        groups: dict[tuple, int] = {}
        reps: list[int] = []
        members: list[list[int]] = []
        if key_arrays:
            for i, key in enumerate(zip(*key_arrays)):
                g = groups.get(key)
                if g is None:
                    groups[key] = g = len(reps)
                    reps.append(i)
                    members.append([])
                members[g].append(i)
        elif n:
            reps.append(0)
            members.append(list(range(n)))
        return reps, members

    def _fold_aggregate(self, call: e.FuncCall, members: list[list[int]],
                        value_array: Callable[[e.Expr], list[Any]]) -> list[Any]:
        name = call.name
        if name == "count" and call.args and isinstance(call.args[0], e.Star):
            return [len(group) for group in members]
        if not call.args:
            raise PlanError(f"aggregate {name.upper()} needs an argument")
        arg = value_array(call.args[0])
        distinct = call.distinct
        out = []
        for group in members:
            values = [v for v in (arg[i] for i in group) if v is not None]
            if distinct:
                values = list(dict.fromkeys(values))
            out.append(_fold(name, values))
        return out

    def _empty_fold(self, call: e.FuncCall) -> Any:
        return 0 if call.name == "count" else None

    def _divide(self, plan: DivideP) -> Batch:
        left_cols = plan.left.columns
        right_names = {c.lower() for c in plan.right.columns}
        quotient_idx = [i for i, c in enumerate(left_cols)
                        if c.lower() not in right_names]
        divisor_pos = {c.lower(): i for i, c in enumerate(left_cols)}
        divisor_idx = [divisor_pos[c.lower()] for c in plan.right.columns]
        divisor_rows = set(_dedupe(self.batch(plan.right).rows()))
        groups: dict[tuple, set[tuple]] = {}
        order: list[tuple] = []
        for row in _dedupe(self.batch(plan.left).rows()):
            key = tuple(row[i] for i in quotient_idx)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = set()
                order.append(key)
            bucket.add(tuple(row[i] for i in divisor_idx))
        kept = [key for key in order if divisor_rows <= groups[key]]
        return Batch.from_rows(plan.columns, kept)

    def _sort_limit(self, plan: SortLimitP) -> Batch:
        batch = self.batch(plan.input)
        sel = list(range(batch.length))
        if plan.keys:
            from repro.sql.evaluate import _sort_key

            rows = batch.rows()
            fns = [(compiled_expr(expr, plan.input.columns), ascending)
                   for expr, ascending in plan.keys]

            def key(i: int) -> tuple:
                row = rows[i]
                return tuple(_sort_key(fn(row), ascending) for fn, ascending in fns)

            sel.sort(key=key)
        if plan.limit is not None:
            sel = sel[:plan.limit]
        return batch.take(sel)


def _fold(name: str, values: list[Any]) -> Any:
    if name == "count":
        return len(values)
    if not values:
        return None
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    raise PlanError(f"unknown aggregate {name!r}")


# ---------------------------------------------------------------------------
# Hash-join plumbing
# ---------------------------------------------------------------------------

class _PrefixTable:
    """A positional hash index restricted to row positions ``< keep``.

    Wraps a relation's full cached :meth:`~repro.data.relation.Relation.key_index`
    to serve an ``asof`` window: buckets hold ascending positions (bag
    order), so the restriction is one :func:`bisect.bisect_left` per probed
    bucket.  Probe sides in delta plans are tiny, so per-probe slicing costs
    nothing compared to rebuilding an old-state hash table per refresh.
    """

    __slots__ = ("table", "keep")

    def __init__(self, table: dict[Any, list[int]], keep: int) -> None:
        self.table = table
        self.keep = keep

    def get(self, key: Any, default: Any = None) -> "list[int] | None":
        from bisect import bisect_left

        bucket = self.table.get(key)
        if not bucket:
            return default
        if bucket[-1] < self.keep:
            return bucket
        cut = bisect_left(bucket, self.keep)
        return bucket[:cut] if cut else default

    def keys(self):
        """Keys with at least one in-window position (for semi/anti probes)."""
        keep = self.keep
        return [key for key, bucket in self.table.items()
                if bucket and bucket[0] < keep]

def _exact(vector: Vector, length: int) -> list[Any]:
    """Materialize a vector cut to the batch's logical length.

    Length-limited batches (as-of windows) share over-long base arrays;
    cutting keeps out-of-window rows invisible to array-level consumers.
    """
    data = vector.materialize()
    return data if len(data) == length else data[:length]


def _key_columns(batch: Batch, idx: list[int]) -> list[list[Any]]:
    return [_exact(batch.vectors[i], batch.length) for i in idx]


def _iter_keys(batch: Batch, idx: list[int]):
    """Key per row: the raw value for single-column keys, a tuple otherwise.

    NULL keys are *not* filtered here — callers decide per ``null_matches``.
    Note ``None in key`` below is the C-speed containment test; the key
    values are plain scalars, so ``==`` against None is always False for
    non-NULLs and the test is exact.
    """
    return _iter_key_list(_key_columns(batch, idx), batch.length)


def _iter_key_list(key_columns: list[list[Any]], length: int):
    if len(key_columns) == 1:
        return key_columns[0]
    if not key_columns:
        return [()] * length
    return zip(*key_columns)


def _has_null(key: Any, idx: list[int]) -> bool:
    if len(idx) == 1:
        return key is None
    return None in key


def _semi_key_set(batch: Batch, idx: list[int], null_matches: bool) -> set:
    keys = set()
    for key in _iter_keys(batch, idx):
        if not null_matches and _has_null(key, idx):
            continue
        keys.add(key)
    return keys


def _needs_null_check(key_columns: list[list[Any]], null_matches: bool) -> bool:
    """Whether the per-row NULL guard is needed at all.

    ``None in column`` is a single C-speed containment scan; NULL-free key
    columns (the overwhelmingly common case) then run the guard-free loops.
    """
    return not null_matches and any(None in column for column in key_columns)


def _build_hash_table(batch: Batch, idx: list[int],
                      null_matches: bool) -> dict[Any, list[int]]:
    table: dict[Any, list[int]] = {}
    get = table.get
    key_columns = _key_columns(batch, idx)
    keys = _iter_key_list(key_columns, batch.length)
    if _needs_null_check(key_columns, null_matches):
        single = len(idx) == 1
        for j, key in enumerate(keys):
            if (key is None) if single else (None in key):
                continue
            bucket = get(key)
            if bucket is None:
                table[key] = [j]
            else:
                bucket.append(j)
        return table
    for j, key in enumerate(keys):
        bucket = get(key)
        if bucket is None:
            table[key] = [j]
        else:
            bucket.append(j)
    return table


def _probe(batch: Batch, idx: list[int], table: dict[Any, list[int]],
           null_matches: bool) -> tuple[list[int], list[int]]:
    left_sel: list[int] = []
    right_sel: list[int] = []
    lappend = left_sel.append
    lextend = left_sel.extend
    rappend = right_sel.append
    rextend = right_sel.extend
    get = table.get
    key_columns = _key_columns(batch, idx)
    keys = _iter_key_list(key_columns, batch.length)
    if _needs_null_check(key_columns, null_matches):
        single = len(idx) == 1
        for i, key in enumerate(keys):
            if (key is None) if single else (None in key):
                continue
            matches = get(key)
            if matches:
                if len(matches) == 1:
                    lappend(i)
                    rappend(matches[0])
                else:
                    lextend([i] * len(matches))
                    rextend(matches)
        return left_sel, right_sel
    for i, key in enumerate(keys):
        matches = get(key)
        if matches:
            if len(matches) == 1:
                lappend(i)
                rappend(matches[0])
            else:
                lextend([i] * len(matches))
                rextend(matches)
    return left_sel, right_sel


# ---------------------------------------------------------------------------
# The backend object
# ---------------------------------------------------------------------------

class VectorizedBackend:
    """:class:`ExecutorBackend` implementation running plans column-wise."""

    name = "vectorized"

    def execute(self, plan: Plan, db: Database) -> list[Row]:
        return VectorizedExecutor(db).batch(plan).rows()
